#!/usr/bin/env python
"""Cluster-head stability under mobility (the Section 5 experiment).

Moves a deployment with the random-direction model at pedestrian and
vehicular speeds, re-evaluates clusters every 2 seconds, and compares
head retention between the basic algorithm and the Section 4.3
improvement rules (incumbent tie-break + cluster fusion).  Also compares
the density metric against the degree / lowest-ID / max-min baselines on
the same traces.

Run:  python examples/mobility_stability.py [nodes] [duration_s]
"""

import sys

from repro.experiments import run_comparison, run_mobility_experiment
from repro.experiments.common import get_preset


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 60.0
    preset = get_preset("quick", mobility_nodes=nodes,
                        mobility_duration=duration)

    print(run_mobility_experiment(preset, radius=0.05, rng=11, runs=2))
    print()
    print(run_comparison(preset, regime="pedestrian", radius=0.05, rng=12))


if __name__ == "__main__":
    main()
