#!/usr/bin/env python
"""The adversarial grid: why the DAG layer exists (Figures 2 and 3).

On a grid whose identifiers increase left-to-right and bottom-to-top,
every interior node has the same density; the identifier tie-break then
funnels the whole network into a single cluster whose joining tree spans
the network (Figure 2) -- stabilization time proportional to the diameter.
Drawing locally unique DAG names decouples the tie-breaks and yields many
compact clusters (Figure 3) with constant-depth trees.

Run:  python examples/grid_pathology.py [nodes] [radius]
"""

import sys

from repro.experiments import run_figure2, run_figure3
from repro.metrics import cluster_stats


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    radius = float(sys.argv[2]) if len(sys.argv) > 2 else 0.09

    without = run_figure2(nodes=nodes, radius=radius)
    with_dag = run_figure3(nodes=nodes, radius=radius, rng=1)

    for result in (without, with_dag):
        stats = cluster_stats(result.clustering)
        print(result.name)
        print(result.rendering)
        print(f"  clusters:          {stats.cluster_count:.0f}")
        print(f"  head eccentricity: {stats.mean_head_eccentricity:.1f}")
        print(f"  tree length:       {stats.mean_tree_length:.1f}")
        print()

    n_without = without.clustering.cluster_count
    n_with = with_dag.clustering.cluster_count
    print(f"Without the DAG the grid collapses into {n_without} cluster(s); "
          f"with it, {n_with} clusters form -- the joining trees (and hence "
          "stabilization time) shrink from diameter-scale to constant.")


if __name__ == "__main__":
    main()
