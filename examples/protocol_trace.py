#!/usr/bin/env python
"""Step-by-step protocol trace: watch Table 2's schedule happen.

Runs the full stack on a small line topology and prints, after every
step, what one node has learned: its cached neighbors, its density, its
parent and its head -- making the paper's "step 1: neighbors, step 2:
density, step 3: father, then the head flows down the tree" schedule
visible frame by frame.

Run:  python examples/protocol_trace.py
"""

from repro import StepSimulator, standard_stack
from repro.graph import line_topology


def describe(simulator, node):
    runtime = simulator.runtime(node)
    neighbors = sorted(runtime.known_neighbors())
    density = runtime.shared.get("density")
    density = f"{float(density):.2f}" if density is not None else "?"
    parent = runtime.shared.get("parent")
    head = runtime.shared.get("head")
    return (f"step {simulator.now}: neighbors={neighbors} "
            f"density={density} parent={parent} head={head}")


def main():
    # A 7-node line: node 3 sits in the middle; densities are 1 everywhere
    # (no triangles), so identifiers decide and node 0 wins its area.
    topology = line_topology(7)
    simulator = StepSimulator(topology, standard_stack(use_dag=False), rng=0)

    watched = 3
    print(f"Watching node {watched} of a 7-node line topology 0-1-2-3-4-5-6")
    print(describe(simulator, watched))
    for _ in range(8):
        simulator.step()
        print(describe(simulator, watched))

    heads = simulator.shared_map("head")
    print("\nFinal heads:", {n: heads[n] for n in sorted(heads)})
    print("Information traveled one hop per step, exactly Table 2's "
          "schedule: neighbors at step 1, density at step 2, father at "
          "step 3, then the head identity flowed down the joining tree.")


if __name__ == "__main__":
    main()
