#!/usr/bin/env python
"""Quickstart: cluster the paper's own example, then a random deployment.

Walks through the core API in four steps:

1. build the Figure 1 topology and recompute Table 1's densities;
2. cluster it with the centralized oracle (heads: h and j, as the paper);
3. run the *distributed* protocol stack over an ideal radio and watch it
   converge to the same clustering;
4. cluster a 500-node random deployment and print its structure.

Run:  python examples/quickstart.py
"""

from repro import (
    StepSimulator,
    all_densities,
    compute_clustering,
    extract_clustering,
    figure1_topology,
    poisson_topology,
    standard_stack,
)
from repro.viz import cluster_legend, render_clustering


def main():
    # -- 1. the paper's example ------------------------------------------
    topology = figure1_topology()
    densities = all_densities(topology.graph)
    print("Densities (Table 1):")
    for node in sorted(topology.graph.nodes):
        print(f"  {node}: {densities[node]:.2f}")

    # -- 2. centralized clustering ---------------------------------------
    clustering = compute_clustering(topology.graph, tie_ids=topology.ids)
    print("\nCluster-heads:", sorted(clustering.heads))
    for node in sorted(topology.graph.nodes):
        print(f"  F({node}) = {clustering.parent(node)},"
              f"  H({node}) = {clustering.head(node)}")

    # -- 3. the same clustering, computed by the distributed protocol ----
    simulator = StepSimulator(topology, standard_stack(use_dag=False), rng=7)
    simulator.run(10)
    distributed = extract_clustering(simulator)
    assert distributed.parents == clustering.parents
    print("\nDistributed stack converged to the same clustering "
          f"after {simulator.now} steps.")

    # -- 4. a larger random deployment ------------------------------------
    deployment = poisson_topology(intensity=500, radius=0.1, rng=42)
    clustering = compute_clustering(deployment.graph, tie_ids=deployment.ids)
    print(f"\nRandom deployment: {len(deployment.graph)} nodes, "
          f"{clustering.cluster_count} clusters")
    print(render_clustering(deployment, clustering, width=60, height=24))
    print(cluster_legend(clustering, limit=6))


if __name__ == "__main__":
    main()
