#!/usr/bin/env python
"""Self-stabilization live: corrupt a running network and watch it heal.

Boots the full stack (hello + DAG naming + density clustering) on a random
deployment over a *lossy* radio channel, waits for legitimacy, then
injects increasingly nasty transient faults and measures recovery:

* garbage shared variables on 20% of nodes;
* duplicated DAG names everywhere (maximal naming conflict);
* total corruption: every node's state and caches wiped to garbage.

Run:  python examples/fault_recovery.py
"""

from repro import (
    BernoulliLossChannel,
    StepSimulator,
    make_stack_predicate,
    standard_stack,
    uniform_topology,
)
from repro.stabilization import (
    duplicate_dag_ids,
    garbage_shared,
    random_subset,
    recovery_time,
    steps_to_legitimacy,
    total_corruption,
)
from repro.util.rng import as_rng


def main():
    rng = as_rng(2024)
    topology = uniform_topology(80, 0.18, rng=rng)
    stack = standard_stack(topology=topology)
    simulator = StepSimulator(topology, stack,
                              channel=BernoulliLossChannel(0.1),
                              rng=rng, cache_timeout=8)
    predicate = make_stack_predicate()

    boot = steps_to_legitimacy(simulator, predicate, max_steps=500)
    print(f"{len(topology.graph)} nodes over a 10%-loss channel")
    print(f"cold boot:                 {boot}")

    twenty_percent = random_subset(topology.graph.nodes, 0.2, rng)
    report = recovery_time(simulator, garbage_shared, predicate,
                           max_steps=500, nodes=twenty_percent)
    print(f"garbage state on 20%:      {report}")

    report = recovery_time(simulator, duplicate_dag_ids, predicate,
                           max_steps=500)
    print(f"all DAG names duplicated:  {report}")

    report = recovery_time(simulator, total_corruption, predicate,
                           max_steps=800)
    print(f"total corruption:          {report}")

    print("\nEvery fault healed without any external intervention -- the "
          "definition of self-stabilization.")


if __name__ == "__main__":
    main()
