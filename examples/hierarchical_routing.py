#!/usr/bin/env python
"""Hierarchical routing on top of the density clustering.

Builds a multi-level cluster hierarchy over a random deployment (the
paper's announced future work) and shows the scalability argument of its
introduction in action: per-node routing state collapses from O(n) to
cluster-sized tables, paid for with a small path stretch.

Run:  python examples/hierarchical_routing.py [nodes] [radius]
"""

import sys

import numpy as np

from repro import uniform_topology
from repro.graph.paths import connected_components
from repro.hierarchy import build_hierarchy, hierarchical_route, \
    route_stretch


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    radius = float(sys.argv[2]) if len(sys.argv) > 2 else 0.11

    topology = uniform_topology(nodes, radius, rng=11)
    largest = max(connected_components(topology.graph), key=len)
    if len(largest) < nodes:
        from repro.graph import Topology
        topology = Topology(
            topology.graph.induced_subgraph(largest),
            positions={n: topology.positions[n] for n in largest},
            ids={n: topology.ids[n] for n in largest},
            radius=radius)
        print(f"(restricted to the largest component: {len(largest)} nodes)")

    hierarchy = build_hierarchy(topology, rng=12)
    print(f"{len(topology.graph)} nodes clustered into "
          f"{hierarchy.depth} levels:")
    for level in hierarchy.levels:
        print(f"  level {level.index}: {len(level.topology.graph)} nodes "
              f"-> {level.clustering.cluster_count} clusters")

    sample = sorted(topology.graph.nodes)[0]
    print(f"\nhierarchical address of node {sample}: "
          f"{hierarchy.address(sample)}")

    rng = np.random.default_rng(13)
    node_list = list(topology.graph.nodes)
    stretches = []
    for _ in range(50):
        a, b = rng.choice(len(node_list), size=2, replace=False)
        hops, flat, stretch = route_stretch(hierarchy, node_list[int(a)],
                                            node_list[int(b)])
        stretches.append(stretch)
    state = [hierarchy.routing_state(n) for n in node_list]

    flat_state = len(node_list) - 1
    mean_state = sum(state) / len(state)
    print(f"\nrouting state per node: flat {flat_state} entries, "
          f"hierarchical {mean_state:.1f} entries "
          f"({flat_state / mean_state:.1f}x smaller)")
    print(f"path stretch over 50 random pairs: "
          f"mean {np.mean(stretches):.2f}, max {max(stretches):.2f}")

    a, b = node_list[0], node_list[-1]
    route = hierarchical_route(hierarchy, a, b)
    print(f"\nexample route {a} -> {b} ({len(route) - 1} hops): {route}")


if __name__ == "__main__":
    main()
