#!/usr/bin/env python
"""Energy-aware head rotation vs the paper's incumbent rule.

The paper's improvement rules keep cluster-heads in place as long as
possible -- great for stability, terrible for their batteries.  This
example (the paper's announced energy future work) drains batteries by
role over clustering windows and compares:

* ``static``       -- the incumbent order: heads serve until deposed;
* ``energy-aware`` -- a coarse residual-energy bucket prepended to the
                      paper's key, rotating headship to fresher nodes.

Run:  python examples/energy_lifetime.py [nodes] [windows]
"""

import sys

from repro import uniform_topology
from repro.energy import simulate_lifetime
from repro.experiments.energy_lifetime import run_energy_lifetime


def survival_bar(fraction, width=40):
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    windows = int(sys.argv[2]) if len(sys.argv) > 2 else 100

    print(run_energy_lifetime(nodes=nodes, windows=windows, runs=2,
                              rng=2024))

    print("\nSurvival curves on one deployment (fraction alive):")
    topology = uniform_topology(nodes, 0.15, rng=7)
    for policy in ("static", "energy-aware"):
        result = simulate_lifetime(topology, policy, windows)
        print(f"\n  {policy} (first death: window {result.first_death}, "
              f"{result.head_changes} head changes)")
        for window in range(0, windows, max(1, windows // 8)):
            fraction = result.survival[window]
            print(f"    w{window:4d} |{survival_bar(fraction)}| "
                  f"{100 * fraction:.0f}%")

    print("\nThe incumbent rule drains the same heads until they die; "
          "rotation spreads the load and postpones the first death, at "
          "the cost of more re-elections -- stability and lifetime pull "
          "in opposite directions.")


if __name__ == "__main__":
    main()
