"""Setup shim.

Kept alongside pyproject.toml so editable installs work in offline
environments whose setuptools lacks PEP 660 support (pip then falls back to
the legacy ``setup.py develop`` path, which needs no ``wheel`` package).
"""

from setuptools import setup

setup()
