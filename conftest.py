"""Repo-level pytest configuration.

Registers the execution-backend options shared by the benchmark suite
(and any test that exercises the parallel experiment engine):

* ``--jobs N`` selects how many worker processes the engine fans
  Monte-Carlo runs out over;
* ``--backend serial|pool|distributed`` routes every engine submission
  through the named executor for the whole session (``distributed``
  starts a TCP coordinator plus ``--workers`` loopback workers).

Results are identical for every combination, so CI can run the benchmark
smoke job with ``--jobs auto`` -- or the whole suite against the
distributed backend -- without changing any asserted number.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", action="store", default="1",
        help="worker processes for experiment runs "
             "(default 1; 0 or 'auto' = all cores)")
    parser.addoption(
        "--backend", action="store", default=None,
        choices=("serial", "pool", "distributed"),
        help="experiment engine backend for the whole session "
             "(default: serial for --jobs 1, pool otherwise)")
    parser.addoption(
        "--workers", action="store", default="2",
        help="loopback worker processes for --backend distributed "
             "(default 2)")


@pytest.fixture(scope="session", autouse=True)
def _experiment_backend(request):
    """Install the ``--backend`` executor as the engine-wide default."""
    backend = request.config.getoption("--backend")
    if backend is None:
        yield None
        return
    from repro.experiments.engine import (
        make_executor,
        resolve_jobs,
        use_executor,
    )
    executor = make_executor(
        backend,
        jobs=resolve_jobs(request.config.getoption("--jobs")),
        workers=int(request.config.getoption("--workers")))
    with executor, use_executor(executor):
        yield executor
