"""Repo-level pytest configuration.

Registers the ``--jobs`` option shared by the benchmark suite (and any
test that wants to exercise the parallel experiment engine): it selects
how many worker processes the engine fans Monte-Carlo runs out over.
Results are identical for every value, so CI can run the benchmark smoke
job with ``--jobs auto`` without changing any asserted number.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", action="store", default="1",
        help="worker processes for experiment runs "
             "(default 1; 0 or 'auto' = all cores)")
