"""Bench: Table 4 -- cluster features on random geometric graphs."""

from repro.experiments.common import get_preset
from repro.experiments.table4 import run_table4


def test_bench_table4(benchmark, show, jobs):
    preset = get_preset("quick", runs=5)
    table = benchmark.pedantic(lambda: run_table4(preset, rng=2024, jobs=jobs),
                               rounds=1, iterations=1)
    show(table)
    clusters = table.column("#clusters")
    # Shape: cluster count decreases with R; DAG on/off indistinguishable.
    with_dag = clusters[0::2]
    without = clusters[1::2]
    assert with_dag[0] > with_dag[-1]
    for w, n in zip(with_dag, without):
        assert abs(w - n) <= 0.35 * max(w, n)
