"""Bench: Table 3 -- steps to build the DAG (lambda=1000, six radii)."""

from repro.experiments.common import get_preset
from repro.experiments.table3 import run_table3


def test_bench_table3(benchmark, show, jobs):
    preset = get_preset("quick", runs=5)
    table = benchmark.pedantic(lambda: run_table3(preset, rng=2024, jobs=jobs),
                               rounds=1, iterations=1)
    show(table)
    # The paper's regime: about two steps, independent of R.
    for column in ("grid", "random"):
        for value in table.column(column):
            assert 1.0 <= value <= 4.0
