"""Bench: stabilization-time scaling and fault recovery (Thm 1, Lemma 2).

The empirical counterpart of the analysis: without the DAG the
adversarial grid stabilizes in time growing with the diameter; with the
DAG the time flattens.  Recovery benches exercise the self-stabilization
property per fault class.
"""

from repro.experiments.common import get_preset
from repro.experiments.stabilization_time import (
    run_recovery_experiment,
    run_scaling_experiment,
)


def test_bench_stabilization_scaling(benchmark, show, jobs):
    table = benchmark.pedantic(
        lambda: run_scaling_experiment(sides=(4, 6, 8, 10, 12), runs=2,
                                       rng=2024, jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    no_dag = table.column("steps (no DAG)")
    with_dag = table.column("steps (with DAG)")
    # Growth without the DAG across a tripled side...
    assert no_dag[-1] > no_dag[0]
    # ...and a clear advantage for the DAG on the largest grid.
    assert with_dag[-1] < no_dag[-1]


def test_bench_fault_recovery(benchmark, show, jobs):
    preset = get_preset("quick", runs=3)
    table = benchmark.pedantic(
        lambda: run_recovery_experiment(preset, side=8, rng=2024,
                                        jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    assert all(flag == "yes" for flag in table.column("all converged"))
