"""Bench: million-node streaming construction and 100k clustering windows.

The streaming path (``chunk_pairs`` -> ``Graph.from_pair_chunks``) is the
only construction that reaches 10^6 nodes in bounded memory; these
benches record its throughput as ``nodes_per_sec_built`` and one
100k-node election window as ``windows_per_sec_100k``, the two keys the
CI regression gate requires (``benchmarks/regression_gate.py``).

Scales are chosen so the whole file stays under a minute on a laptop:
the 10^6 build runs a single round (its ~20 s *is* the measurement; the
gate normalizes by the calibration bench), the 100k window a few.
"""

import numpy as np
import pytest

from repro.clustering.density import all_densities
from repro.clustering.incremental import IncrementalElection
from repro.graph.geometry import unit_disk_graph

# (nodes, radius): ~8 mean degree, sparse enough that the 10^6 build's
# candidate stream -- not the edge list -- is the memory story.
SCALES = {100_000: 0.005, 1_000_000: 0.0018}
ROUNDS = {100_000: 2, 1_000_000: 1}


def positions_for(count):
    rng = np.random.default_rng(count)
    return rng.uniform(0.0, 1.0, size=(count, 2))


@pytest.mark.parametrize("count", sorted(SCALES))
def test_bench_streaming_build(benchmark, count):
    positions = positions_for(count)
    radius = SCALES[count]
    graph, _ = benchmark.pedantic(
        lambda: unit_disk_graph(positions, radius),
        rounds=ROUNDS[count], iterations=1)
    benchmark.extra_info["edges"] = graph.edge_count()
    benchmark.extra_info["nodes_per_sec_built"] = (
        count / benchmark.stats.stats.mean)
    assert len(graph) == count
    if count >= 200_000:  # STREAM_NODE_THRESHOLD
        assert graph._adj_map is None  # streamed builds stay CSR-only


def test_bench_clustering_window_100k(benchmark):
    count = 100_000
    graph, _ = unit_disk_graph(positions_for(count), SCALES[count])
    densities = all_densities(graph, exact=True)
    tie_ids = {node: node for node in graph}

    def window():
        engine = IncrementalElection(order="basic")
        return engine.update(graph, densities, tie_ids=tie_ids)

    clustering = benchmark.pedantic(window, rounds=3, iterations=1,
                                    warmup_rounds=1)
    benchmark.extra_info["heads"] = len(clustering.heads)
    benchmark.extra_info["windows_per_sec_100k"] = (
        1.0 / benchmark.stats.stats.mean)
    assert len(clustering.heads) > 0
    assert set(clustering.parents) == set(graph.nodes)
