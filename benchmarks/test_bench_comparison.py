"""Bench: density vs degree vs lowest-ID vs max-min stability.

Backs the Section 3 "Features" claim (from [16]) that the density metric
is more stable under mobility than the degree and max-min metrics.
"""

from repro.experiments.common import get_preset
from repro.experiments.comparison import run_comparison


def test_bench_metric_comparison(benchmark, show, jobs):
    preset = get_preset("quick", mobility_nodes=300,
                        mobility_duration=60.0)
    table = benchmark.pedantic(
        lambda: run_comparison(preset, regime="pedestrian", radius=0.1,
                               rng=2024, runs=2, jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    retention = dict(zip(table.column("metric"),
                         table.column("% heads retained / window")))
    # The directly comparable claim: density heads outlive degree heads.
    # (Max-min heads are anchored to immutable identifiers, which makes
    # raw head retention incomparable; see the membership column and
    # EXPERIMENTS.md for the discussion.)
    assert retention["density"] >= retention["degree"] - 2.0
