"""Bench: the Section 5 mobility experiment -- head re-election stability.

Paper reference: ~82% (improved) vs ~78% (basic) at pedestrian speeds,
~31% vs ~25% at vehicular speeds, per 2-second window.  The square is
interpreted as 1 km x 1 km (see DESIGN.md); the quick preset uses 400
nodes instead of ~1000 and 2 traces instead of 1000 runs.
"""

from repro.experiments.common import get_preset
from repro.experiments.mobility import run_mobility_experiment


def test_bench_mobility(benchmark, show, jobs):
    preset = get_preset("quick", mobility_nodes=400,
                        mobility_duration=120.0)
    table = benchmark.pedantic(
        lambda: run_mobility_experiment(preset, radius=0.1, rng=2024,
                                        runs=2, jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    rows = {row[0]: row for row in table.rows}
    # Shape assertions: improvements help at both speed regimes, and
    # pedestrians keep their heads far more often than vehicles.
    assert rows["pedestrian"][1] >= rows["pedestrian"][3] - 1.0
    assert rows["vehicular"][1] >= rows["vehicular"][3] - 1.0
    assert rows["pedestrian"][1] > rows["vehicular"][1] + 10.0
