"""Bench: Definition-1 densities at 1k/5k/10k nodes.

Times the CSR-vectorized ``all_densities`` (cold snapshot, cold triangle
counts -- the mobility-workload shape where every round rebuilds the
graph) at three scales, the warm-snapshot re-read (the lifetime-workload
shape where windows repeat on an unchanged graph), and the pre-PR
per-edge reference at 5000 nodes so BENCH_ci.json records the
CSR-vs-dict-loop density ratio directly.
"""

import pytest

from repro.clustering.density import all_densities, all_densities_reference
from repro.graph.generators import uniform_topology

SCALES = {1000: 0.08, 5000: 0.08, 10000: 0.05}


@pytest.fixture(scope="module")
def topologies():
    return {count: uniform_topology(count, radius, rng=2024)
            for count, radius in SCALES.items()}


@pytest.mark.parametrize("count", sorted(SCALES))
def test_bench_all_densities_cold(benchmark, topologies, count):
    graph = topologies[count].graph

    def run():
        graph._csr = None  # drop the snapshot: cold rebuild + recount
        return all_densities(graph, exact=True)

    densities = benchmark.pedantic(run, rounds=3, iterations=1,
                                   warmup_rounds=1)
    assert len(densities) == count


@pytest.mark.parametrize("count", sorted(SCALES))
def test_bench_all_densities_warm_snapshot(benchmark, topologies, count):
    graph = topologies[count].graph
    all_densities(graph, exact=True)  # prime snapshot + triangle memo
    densities = benchmark(lambda: all_densities(graph, exact=True))
    assert len(densities) == count


def test_bench_all_densities_dict_loop_5000_reference(benchmark, topologies):
    """The pre-PR per-edge triangle scan (speedup baseline)."""
    graph = topologies[5000].graph
    reference = benchmark.pedantic(
        lambda: all_densities_reference(graph, exact=True),
        rounds=1, iterations=1)
    assert reference == all_densities(graph, exact=True)
