"""Bench: CSR traversal kernel at 1k/5k/10k nodes.

Times the array-frontier BFS, the batched label-constrained head
eccentricity sweep (every cluster in one pass) and the vectorized
connected components, plus the pre-kernel dict-loop references at 5000
nodes, so ``BENCH_ci.json`` records the batched-vs-loop ratios directly:
the acceptance bar is batched head eccentricity at least 5x faster than
the per-cluster induced-subgraph BFS it replaced.
"""

import pytest

from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.graph.generators import uniform_topology
from repro.graph.paths import (
    bfs_distances,
    bfs_distances_reference,
    connected_components,
    connected_components_reference,
)

SCALES = {1000: 0.08, 5000: 0.08, 10000: 0.05}


@pytest.fixture(scope="module")
def topologies():
    topos = {count: uniform_topology(count, radius, rng=2024)
             for count, radius in SCALES.items()}
    for topo in topos.values():
        topo.graph.to_csr()  # prime the snapshot: the benches time traversal
    return topos


@pytest.fixture(scope="module")
def clusterings(topologies):
    return {count: lowest_id_clustering(topo.graph)
            for count, topo in topologies.items()}


@pytest.mark.parametrize("count", sorted(SCALES))
def test_bench_bfs_distances(benchmark, topologies, count):
    graph = topologies[count].graph
    source = graph.nodes[0]
    distances = benchmark(lambda: bfs_distances(graph, source))
    assert distances[source] == 0


@pytest.mark.parametrize("count", sorted(SCALES))
def test_bench_batched_head_eccentricity(benchmark, topologies, clusterings,
                                         count):
    clustering = clusterings[count]

    def run():
        clustering._sweep_cache = None  # cold: one full batched sweep
        return clustering.average_head_eccentricity()

    value = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert value >= 0.0


@pytest.mark.parametrize("count", sorted(SCALES))
def test_bench_connected_components(benchmark, topologies, count):
    graph = topologies[count].graph
    components = benchmark(lambda: connected_components(graph))
    assert sum(map(len, components)) == count


def test_bench_bfs_dict_loop_5000_reference(benchmark, topologies):
    """The pre-kernel deque BFS (speedup baseline)."""
    graph = topologies[5000].graph
    source = graph.nodes[0]
    reference = benchmark.pedantic(
        lambda: bfs_distances_reference(graph, source),
        rounds=1, iterations=1)
    assert reference == bfs_distances(graph, source)


def test_bench_head_eccentricity_subgraph_5000_reference(benchmark,
                                                         topologies,
                                                         clusterings):
    """The pre-kernel per-cluster induced-subgraph BFS (speedup baseline)."""
    clustering = clusterings[5000]

    def run():
        heads = clustering.heads
        return sum(clustering.head_eccentricity_reference(head)
                   for head in heads) / len(heads)

    reference = benchmark.pedantic(run, rounds=1, iterations=1)
    clustering._sweep_cache = None
    assert reference == clustering.average_head_eccentricity()


def test_bench_components_dict_loop_5000_reference(benchmark, topologies):
    """The pre-kernel per-component BFS sweep (speedup baseline)."""
    graph = topologies[5000].graph
    reference = benchmark.pedantic(
        lambda: connected_components_reference(graph),
        rounds=1, iterations=1)
    assert (sorted(map(sorted, reference))
            == sorted(map(sorted, connected_components(graph))))
