"""Bench: 100k-node builds for the non-UDG generator suite.

The regression gate requires ``nodes_per_sec_built`` for the two
families with genuinely different construction stories: Erdős–Rényi
(geometric skipping over the linear pair enumeration, no candidate
materialization) and Barabási–Albert (the sequential preferential-
attachment loop, the slowest generator by construction).  Both force
the chunked ``from_pair_chunks`` path via ``max_pairs`` so the bench
exercises the same streaming build the million-node UDG scale uses.
"""

import pytest

from repro.graph.models import erdos_renyi_topology, scale_free_topology

COUNT = 100_000
DEGREE = 8
# Forces from_pair_chunks below STREAM_NODE_THRESHOLD: the bench and
# the 10^6-scale path share one construction code path.
MAX_PAIRS = 200_000

BUILDERS = {
    "erdos_renyi": lambda: erdos_renyi_topology(
        COUNT, degree=DEGREE, rng=17, max_pairs=MAX_PAIRS),
    "scale_free": lambda: scale_free_topology(
        COUNT, degree=DEGREE, rng=17, max_pairs=MAX_PAIRS),
}

ROUNDS = {"erdos_renyi": 3, "scale_free": 1}


@pytest.mark.parametrize("model", sorted(BUILDERS))
def test_bench_model_build_100k(benchmark, model):
    topology = benchmark.pedantic(BUILDERS[model],
                                  rounds=ROUNDS[model], iterations=1)
    graph = topology.graph
    benchmark.extra_info["edges"] = graph.edge_count()
    benchmark.extra_info["nodes_per_sec_built"] = (
        COUNT / benchmark.stats.stats.mean)
    assert len(graph) == COUNT
    assert graph._adj_map is None  # chunked builds stay CSR-only
    mean_degree = 2.0 * graph.edge_count() / COUNT
    assert DEGREE * 0.5 <= mean_degree <= DEGREE * 1.5
