"""CI benchmark gate: completeness, speedup floors, and regressions.

Usage::

    python benchmarks/regression_gate.py BENCH_baseline.json BENCH_ci.json \
        [--threshold 0.25]

Four checks, all loud:

1. **Completeness** -- the fresh artifact must contain every required
   hot-path bench (an empty or silently truncated artifact fails).
2. **Speedup floors** -- structural ratios inside the fresh artifact
   (e.g. the 5000-node mobility delta path vs the rebuild reference)
   must hold regardless of machine speed.
3. **Regression gate** -- every required bench is compared against the
   committed baseline, *normalized by the calibration bench* recorded in
   both artifacts so a slower CI machine does not read as a code
   regression.  Any hot path more than ``--threshold`` (default 25%)
   slower than baseline fails the gate.
4. **Serving keys** -- every workload bench must carry the
   ``requests_per_sec`` and ``p99_latency_hops`` ``extra_info`` keys;
   throughput is gated calibration-normalized, p99 latency raw.  A
   missing key fails as loudly as a regressed one.
5. **Scale keys** -- the streaming-construction and 100k-window benches
   must carry ``nodes_per_sec_built`` / ``windows_per_sec_100k``, gated
   calibration-normalized like the serving throughput.

A sorted delta table is printed on every run so the bench trajectory is
visible in the CI log even when everything passes.
"""

import argparse
import json
import sys

CALIBRATION = "test_bench_machine_calibration"

# Hot paths every artifact must contain; these also feed the gate.
REQUIRED = [
    "test_bench_bulk_construction[5000]",
    "test_bench_all_densities_cold[5000]",
    "test_bench_dict_loop_construction_5000_reference",
    "test_bench_all_densities_dict_loop_5000_reference",
    "test_bench_bfs_distances[5000]",
    "test_bench_batched_head_eccentricity[5000]",
    "test_bench_connected_components[5000]",
    "test_bench_bfs_dict_loop_5000_reference",
    "test_bench_head_eccentricity_subgraph_5000_reference",
    "test_bench_components_dict_loop_5000_reference",
    "test_bench_mobility_windows_delta[1000]",
    "test_bench_mobility_windows_delta[5000]",
    "test_bench_mobility_windows_rebuild[1000]",
    "test_bench_mobility_windows_rebuild[5000]",
    "test_bench_sparse_movers_delta[1000]",
    "test_bench_sparse_movers_delta[5000]",
    "test_bench_sparse_movers_rebuild[1000]",
    "test_bench_sparse_movers_rebuild[5000]",
    "test_bench_baseline_windows_delta[1000-degree]",
    "test_bench_baseline_windows_delta[1000-lowest-id]",
    "test_bench_baseline_windows_delta[1000-max-min]",
    "test_bench_baseline_windows_delta[5000-degree]",
    "test_bench_baseline_windows_delta[5000-lowest-id]",
    "test_bench_baseline_windows_delta[5000-max-min]",
    "test_bench_baseline_windows_rebuild[1000-degree]",
    "test_bench_baseline_windows_rebuild[1000-lowest-id]",
    "test_bench_baseline_windows_rebuild[1000-max-min]",
    "test_bench_baseline_windows_rebuild[5000-degree]",
    "test_bench_baseline_windows_rebuild[5000-lowest-id]",
    "test_bench_baseline_windows_rebuild[5000-max-min]",
    "test_bench_workload_serve[1000-uniform]",
    "test_bench_workload_serve[1000-zipf]",
    "test_bench_workload_serve[5000-uniform]",
    "test_bench_workload_serve[5000-zipf]",
    "test_bench_workload_serve_floor[batch]",
    "test_bench_workload_serve_floor[request]",
    "test_bench_streaming_build[100000]",
    "test_bench_streaming_build[1000000]",
    "test_bench_model_build_100k[erdos_renyi]",
    "test_bench_model_build_100k[scale_free]",
    "test_bench_clustering_window_100k",
    "test_bench_route_batch_1m",
    "test_bench_route_stretch_1m",
    CALIBRATION,
]

# Serving benches must also carry these ``extra_info`` keys; both are
# gated against baseline.  ``requests_per_sec`` is throughput, so it is
# calibration-normalized before comparison; ``p99_latency_hops`` is a
# deterministic function of the seeded workload, so it is compared raw
# (any drift is a routing/serving change, never machine noise).
WORKLOAD_BENCHES = [name for name in REQUIRED
                    if name.startswith("test_bench_workload_serve")]
WORKLOAD_KEYS = ("requests_per_sec", "p99_latency_hops")

# The batched serving path must beat the per-request reference loop it
# replaced by this factor on the 5000-node Zipf floor pair (both
# benches serve the identical 20k-request stream through a fresh
# router to identical collector states; the ratio is pure batching).
BATCHED_SERVE_FLOOR = 3.0

# Scale benches must carry a throughput ``extra_info`` key; like the
# serving throughput it is calibration-normalized before the gate.
# The baseline-engine benches report ``windows_per_sec`` the same way.
SCALE_BENCHES = {
    "test_bench_streaming_build[100000]": "nodes_per_sec_built",
    "test_bench_streaming_build[1000000]": "nodes_per_sec_built",
    "test_bench_model_build_100k[erdos_renyi]": "nodes_per_sec_built",
    "test_bench_model_build_100k[scale_free]": "nodes_per_sec_built",
    "test_bench_clustering_window_100k": "windows_per_sec_100k",
    "test_bench_route_batch_1m": "route_hops_per_sec_1m",
    "test_bench_route_stretch_1m": "stretch_samples_per_sec_1m",
}
SCALE_BENCHES.update(
    {name: "windows_per_sec" for name in REQUIRED
     if name.startswith("test_bench_baseline_windows_")})

# (slow bench, fast bench, floor, description): slow/fast must stay >= floor.
SPEEDUP_FLOORS = [
    ("test_bench_mobility_windows_rebuild[5000]",
     "test_bench_mobility_windows_delta[5000]",
     3.0, "5000-node mobility window delta speedup"),
    ("test_bench_baseline_windows_rebuild[5000-lowest-id]",
     "test_bench_baseline_windows_delta[5000-lowest-id]",
     3.0, "5000-node lowest-ID engine per-window speedup"),
    ("test_bench_baseline_windows_rebuild[5000-degree]",
     "test_bench_baseline_windows_delta[5000-degree]",
     3.0, "5000-node degree engine per-window speedup"),
    ("test_bench_workload_serve_floor[request]",
     "test_bench_workload_serve_floor[batch]",
     BATCHED_SERVE_FLOOR, "5000-node Zipf batched serving speedup"),
]


def load_means(path):
    """``benchmark-json`` artifact -> ``{bench name: mean seconds}``."""
    with open(path) as handle:
        payload = json.load(handle)
    return {bench["name"]: bench["stats"]["mean"]
            for bench in payload.get("benchmarks", [])}


def load_extra(path):
    """``benchmark-json`` artifact -> ``{bench name: extra_info dict}``."""
    with open(path) as handle:
        payload = json.load(handle)
    return {bench["name"]: bench.get("extra_info", {})
            for bench in payload.get("benchmarks", [])}


def calibration_scale(baseline, current):
    """Current/baseline machine-speed ratio, 1.0 when uncalibratable."""
    if CALIBRATION in baseline and CALIBRATION in current:
        return current[CALIBRATION] / baseline[CALIBRATION]
    return 1.0


def check_completeness(means):
    """Error strings for an empty or hot-path-incomplete artifact."""
    if not means:
        return ["artifact contains no benchmarks"]
    missing = [name for name in REQUIRED if name not in means]
    if missing:
        return [f"artifact is missing hot paths: {missing}"]
    return []


def check_floors(means):
    errors = []
    for slow, fast, floor, description in SPEEDUP_FLOORS:
        if slow not in means or fast not in means:
            continue  # completeness already reported it
        ratio = means[slow] / means[fast]
        print(f"{description}: {ratio:.2f}x (floor {floor:.1f}x)")
        if ratio < floor:
            errors.append(f"{description} regressed: "
                          f"{ratio:.2f}x < {floor:.1f}x floor")
    return errors


def check_workload(baseline_extra, current_extra, scale, threshold):
    """Gate the serving ``extra_info`` keys; error strings when absent
    or regressed beyond ``threshold``.

    ``scale`` is the calibration ratio (current/baseline machine time;
    > 1 = slower CI machine), applied to the throughput expectation
    only -- the p99 latency is hop counts, machine-independent.
    """
    errors = []
    for name in WORKLOAD_BENCHES:
        base = baseline_extra.get(name, {})
        now = current_extra.get(name, {})
        missing = [key for key in WORKLOAD_KEYS if key not in now]
        if missing:
            errors.append(f"{name} is missing extra_info keys {missing} "
                          "in the fresh artifact")
            continue
        stale = [key for key in WORKLOAD_KEYS if key not in base]
        if stale:
            errors.append(f"{name} is missing extra_info keys {stale} "
                          "in the baseline; regenerate BENCH_baseline.json")
            continue
        expected_rps = base["requests_per_sec"] / scale
        rps = now["requests_per_sec"]
        print(f"{name} requests/sec: {rps:,.0f} "
              f"(expected >= {expected_rps * (1 - threshold):,.0f})")
        if rps < expected_rps * (1.0 - threshold):
            errors.append(
                f"{name} throughput regressed: {rps:,.0f} requests/sec "
                f"< {1 - threshold:.0%} of the calibrated "
                f"{expected_rps:,.0f} baseline")
        base_p99, p99 = base["p99_latency_hops"], now["p99_latency_hops"]
        print(f"{name} p99 latency: {p99:g} hops (baseline {base_p99:g})")
        if p99 > base_p99 * (1.0 + threshold):
            errors.append(
                f"{name} p99 latency regressed: {p99:g} hops "
                f"> {1 + threshold:.0%} of the {base_p99:g}-hop baseline")
    return errors


def check_scale(baseline_extra, current_extra, scale, threshold):
    """Gate the scale throughput keys; error strings when absent or
    regressed beyond ``threshold`` (calibration-normalized)."""
    errors = []
    for name, key in SCALE_BENCHES.items():
        now = current_extra.get(name, {})
        if key not in now:
            errors.append(f"{name} is missing extra_info key {key!r} "
                          "in the fresh artifact")
            continue
        base = baseline_extra.get(name, {})
        if key not in base:
            errors.append(f"{name} is missing extra_info key {key!r} "
                          "in the baseline; regenerate BENCH_baseline.json")
            continue
        expected = base[key] / scale
        rate = now[key]
        print(f"{name} {key}: {rate:,.1f} "
              f"(expected >= {expected * (1 - threshold):,.1f})")
        if rate < expected * (1.0 - threshold):
            errors.append(
                f"{name} {key} regressed: {rate:,.1f} "
                f"< {1 - threshold:.0%} of the calibrated "
                f"{expected:,.1f} baseline")
    return errors


def compare(baseline, current, threshold):
    """Print the sorted delta table; return error strings over threshold.

    Deltas are computed on calibration-normalized means when both
    artifacts carry the calibration bench (positive = slower than
    baseline).
    """
    scale = calibration_scale(baseline, current)
    if CALIBRATION in baseline and CALIBRATION in current:
        print(f"calibration scale (current/baseline machine speed): "
              f"{scale:.3f}")
    else:
        print("calibration bench absent from one artifact; "
              "comparing raw means")
    stale = [name for name in REQUIRED if name not in baseline]
    if stale:
        # A truncated/stale baseline must not make the gate vacuous.
        return [f"baseline artifact is missing hot paths: {stale}; "
                "regenerate BENCH_baseline.json"]
    rows = []
    for name in REQUIRED:
        if name == CALIBRATION or name not in current:
            continue
        delta = current[name] / (baseline[name] * scale) - 1.0
        rows.append((delta, name))
    rows.sort(reverse=True)
    width = max((len(name) for _, name in rows), default=10)
    print(f"{'bench'.ljust(width)}  {'delta':>8}  {'base ms':>10}  "
          f"{'now ms':>10}")
    errors = []
    for delta, name in rows:
        flag = " <-- REGRESSION" if delta > threshold else ""
        print(f"{name.ljust(width)}  {delta:+7.1%}  "
              f"{baseline[name] * 1e3:10.2f}  {current[name] * 1e3:10.2f}"
              f"{flag}")
        if delta > threshold:
            errors.append(f"{name} regressed {delta:+.1%} "
                          f"(> {threshold:.0%} threshold)")
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("current", help="freshly produced benchmark json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated normalized slowdown "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args(argv)
    baseline = load_means(args.baseline)
    current = load_means(args.current)
    errors = check_completeness(current)
    if not errors:
        errors += check_floors(current)
        errors += compare(baseline, current, args.threshold)
        baseline_extra = load_extra(args.baseline)
        current_extra = load_extra(args.current)
        scale = calibration_scale(baseline, current)
        errors += check_workload(baseline_extra, current_extra, scale,
                                 args.threshold)
        errors += check_scale(baseline_extra, current_extra, scale,
                              args.threshold)
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"benchmark gate OK: {len(current)} benches, "
          f"{len(REQUIRED)} hot paths within {args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
