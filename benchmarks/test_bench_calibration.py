"""Machine-speed calibration anchor for the regression gate.

A fixed, dependency-free numpy workload whose runtime tracks the host's
single-core throughput.  ``benchmarks/regression_gate.py`` divides every
hot-path mean by this bench's mean before comparing against the
committed ``BENCH_baseline.json``, so the 25% regression threshold
measures the *code*, not whether CI landed on a slower machine than the
one that recorded the baseline.
"""

import numpy as np


def _calibration_workload():
    rng = np.random.default_rng(123456789)
    values = rng.uniform(0, 1, size=250_000)
    keys = rng.integers(0, 1_000, size=values.size)
    total = 0.0
    for _ in range(6):
        order = np.lexsort((values, keys))
        ranks = np.empty(values.size, dtype=np.int64)
        ranks[order] = np.arange(values.size)
        total += float(values[ranks % values.size].sum())
    return total


def test_bench_machine_calibration(benchmark):
    result = benchmark(_calibration_workload)
    assert result > 0
