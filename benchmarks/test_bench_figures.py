"""Bench: Figures 1-3 -- clustering renderings and their statistics."""

from repro.experiments.figures import run_figure1, run_figure2, run_figure3


def test_bench_figure1(benchmark, show):
    result = benchmark(run_figure1)
    show(result)
    assert result.clustering.heads == {"h", "j"}


def test_bench_figure2_grid_without_dag(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_figure2(nodes=1000, radius=0.05),
        rounds=1, iterations=1)
    show(result.name)
    show(result.legend)
    assert result.clustering.cluster_count <= 3


def test_bench_figure3_grid_with_dag(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_figure3(nodes=1000, radius=0.05, rng=2024),
        rounds=1, iterations=1)
    show(result.name)
    show(result.rendering)
    show(result.legend)
    assert result.clustering.cluster_count >= 20
