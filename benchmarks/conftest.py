"""Benchmark support: every bench prints the table it regenerates.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).  Heavy experiment benches use ``benchmark.pedantic`` with
a single round: the quantity of interest is the regenerated table, the
timing is informative only.
"""

import pytest


@pytest.fixture
def show():
    """Print an experiment table under the benchmark's own banner."""
    def _show(table_or_text):
        print()
        print(table_or_text)
    return _show
