"""Benchmark support: every bench prints the table it regenerates.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).  Heavy experiment benches use ``benchmark.pedantic`` with
a single round: the quantity of interest is the regenerated table, the
timing is informative only.

``--jobs N`` (registered in the repo-level conftest) fans each bench's
Monte-Carlo runs over N worker processes; the regenerated tables are
identical for every value, only the wall-clock changes.
"""

import pytest

from repro.experiments.engine import resolve_jobs


@pytest.fixture
def show():
    """Print an experiment table under the benchmark's own banner."""
    def _show(table_or_text):
        print()
        print(table_or_text)
    return _show


@pytest.fixture
def jobs(request):
    """Worker count for the experiment engine, from ``--jobs``."""
    return resolve_jobs(request.config.getoption("--jobs"))
