"""Benches for the future-work extensions: hierarchy and energy.

These back the claims recorded in EXPERIMENTS.md's extension section:
hierarchical routing trades bounded stretch for order-of-magnitude
routing-state savings, and energy-aware rotation extends the conservative
network lifetime over the paper's incumbent rule.
"""

from repro.experiments.energy_lifetime import run_energy_lifetime
from repro.experiments.scalability import run_scalability


def test_bench_scalability(benchmark, show, jobs):
    table = benchmark.pedantic(
        lambda: run_scalability(sizes=(200, 400, 800), pairs=30, rng=2024,
                                jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    savings = table.column("savings x")
    stretch = table.column("mean stretch")
    assert all(value > 2.0 for value in savings)
    assert all(value < 3.0 for value in stretch)
    # The savings factor grows with network size: that's "scalability".
    assert savings[-1] > savings[0]


def test_bench_energy_lifetime(benchmark, show, jobs):
    table = benchmark.pedantic(
        lambda: run_energy_lifetime(nodes=200, windows=120, runs=3,
                                    rng=2024, jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    rows = {row[0]: row for row in table.rows}
    # Rotation must extend time-to-first-death by a clear margin...
    assert rows["energy-aware"][1] >= 1.5 * rows["static"][1]
    # ...and it costs head changes (the stability/lifetime trade-off).
    assert rows["energy-aware"][4] > rows["static"][4]
