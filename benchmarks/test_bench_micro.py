"""Microbenchmarks: the library's hot paths at paper scale (1000 nodes).

These time individual substrate operations rather than regenerate paper
tables; they guard against performance regressions that would make the
``paper`` presets impractical.
"""

import pytest

from repro.clustering.density import all_densities
from repro.clustering.oracle import compute_clustering
from repro.graph.generators import uniform_topology
from repro.naming.renaming import PoliteRenaming
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator


@pytest.fixture(scope="module")
def topo1000():
    return uniform_topology(1000, 0.08, rng=2024)


def test_bench_unit_disk_construction(benchmark):
    benchmark(lambda: uniform_topology(1000, 0.08, rng=7))


def test_bench_all_densities(benchmark, topo1000):
    densities = benchmark(lambda: all_densities(topo1000.graph, exact=True))
    assert len(densities) == len(topo1000.graph)


def test_bench_oracle_basic(benchmark, topo1000):
    clustering = benchmark(
        lambda: compute_clustering(topo1000.graph, tie_ids=topo1000.ids))
    assert clustering.cluster_count > 1


def test_bench_oracle_fusion(benchmark, topo1000):
    clustering = benchmark(
        lambda: compute_clustering(topo1000.graph, tie_ids=topo1000.ids,
                                   fusion=True))
    assert clustering.cluster_count > 1


def test_bench_polite_renaming(benchmark, topo1000):
    import numpy as np

    def run():
        return PoliteRenaming().run(topo1000.graph,
                                    rng=np.random.default_rng(1),
                                    tie_ids=topo1000.ids)
    result = benchmark(run)
    assert result.stable


def test_bench_protocol_step(benchmark):
    topo = uniform_topology(300, 0.1, rng=5)
    sim = StepSimulator(topo, standard_stack(topology=topo), rng=6)
    sim.run(5)  # warm state
    benchmark(sim.step)
