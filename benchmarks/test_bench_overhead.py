"""Bench: control overhead -- the paper's motivating quantity.

Backs the claim that clustering maintenance traffic is what the density
metric is designed to limit: reports re-affiliation churn per metric
under mobility, the steady-state beacon cost per protocol configuration,
and the Section 3 intensity sweep (head count falls with lambda for
density, grows for degree).
"""

from repro.experiments.common import get_preset
from repro.experiments.intensity_sweep import run_intensity_sweep
from repro.experiments.overhead import run_beacon_cost, \
    run_reaffiliation_churn


def test_bench_reaffiliation_churn(benchmark, show, jobs):
    preset = get_preset("quick", mobility_nodes=300,
                        mobility_duration=60.0)
    table = benchmark.pedantic(
        lambda: run_reaffiliation_churn(preset, regime="pedestrian",
                                        radius=0.1, rng=2024, runs=2,
                                        jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    churn = dict(zip(table.column("metric"),
                     table.column("re-affiliations / window / 100 nodes")))
    assert all(0.0 <= value <= 100.0 for value in churn.values())


def test_bench_beacon_cost(benchmark, show, jobs):
    table = benchmark.pedantic(
        lambda: run_beacon_cost(nodes=150, steps=30, rng=2024, jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    costs = dict(zip(table.column("configuration"),
                     table.column("bytes / node / step")))
    assert costs["DAG, fusion"] > costs["DAG, basic"] > \
        costs["no DAG, basic"]


def test_bench_intensity_sweep(benchmark, show, jobs):
    table = benchmark.pedantic(
        lambda: run_intensity_sweep(intensities=(300, 600, 1000, 1500),
                                    radius=0.1, runs=4, rng=2024,
                                    jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    density_heads = table.column("density heads")
    degree_heads = table.column("degree heads")
    # Section 3's claim and its foil.
    assert density_heads[-1] < density_heads[0]
    assert degree_heads[-1] > degree_heads[0]
    # The stochastic analysis tracks the measurement.
    measured = table.column("interior density")
    predicted = table.column("predicted density")
    for m, p in zip(measured[2:], predicted[2:]):
        assert abs(m - p) / p < 0.12
