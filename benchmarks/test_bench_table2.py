"""Bench: Table 2 -- the learning schedule of the step model."""

from repro.experiments.common import get_preset
from repro.experiments.table2 import run_table2


def test_bench_table2(benchmark, show, jobs):
    preset = get_preset("quick", runs=5)
    table = benchmark.pedantic(
        lambda: run_table2(preset, radius=0.15, rng=2024, jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    steps = table.column("measured step")
    assert steps[0] == 1.0
    assert steps[1] == 2.0
    assert steps[2] == 3.0
