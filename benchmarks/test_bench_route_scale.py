"""Bench: million-node hierarchical routing and stretch sampling.

The scalability story ends at routing: a 10^6-node deployment must not
only *build* (``test_bench_scale``) but *serve*.  This file assembles a
single-level hierarchy over the same seeded 10^6-node unit-disk graph
the build bench uses (streaming construction, exact densities, the
incremental election, and the head overlay) and records two serving
keys the regression gate requires:

* ``route_hops_per_sec_1m`` -- route hops produced per second by
  :meth:`~repro.workload.serve.CachedRouter.route_batch` over a
  Zipf-skewed request chunk.  Sources are confined to a fixed set of
  hot clusters: the overlay BFS tree per *source* head is the dominant
  10^6-scale cost, so a serving deployment that terminates external
  traffic at a bounded gateway set is the realistic shape -- and the
  bench pins exactly that.
* ``stretch_samples_per_sec_1m`` -- flat-vs-hierarchical stretch
  samples per second through
  :meth:`~repro.workload.serve.CachedRouter.route_stretch`.  Each cold
  sample pays one full-graph BFS (the flat oracle); destinations cycle
  through a small hot set so the LRU flat cache amortizes them the way
  ``flat_every`` sampling does in the workload experiment.

Everything is a pure function of the module seeds, so the hop total is
asserted stable shape-wise (routes exist, hops positive) rather than
re-derived here.
"""

import numpy as np
import pytest

from repro.clustering.density import all_densities
from repro.clustering.incremental import IncrementalElection
from repro.graph.generators import Topology
from repro.graph.geometry import unit_disk_graph
from repro.hierarchy.hierarchy import Hierarchy, HierarchyLevel
from repro.hierarchy.overlay import overlay_topology
from repro.workload.generators import ZipfPopularity, poisson_requests
from repro.workload.serve import CachedRouter

COUNT = 1_000_000
RADIUS = 0.0018  # ~10 mean degree, same regime as test_bench_scale
ROUTE_REQUESTS = 20_000
HOT_CLUSTERS = 64  # distinct source heads = distinct overlay BFS trees
DEST_POOL = 8192
ZIPF_ALPHA = 1.0
STRETCH_SAMPLES = 24
STRETCH_DESTINATIONS = 6  # cold flat BFS count; the rest hit the LRU


@pytest.fixture(scope="module")
def deployment():
    """The seeded 10^6-node single-level hierarchy, built once.

    Built outside :func:`~repro.hierarchy.hierarchy.build_hierarchy`
    because at this scale the bench wants the streaming construction
    path and no DAG renaming round; routing only reads the level-0
    clustering and its overlay, both of which are exact here.
    """
    rng = np.random.default_rng(COUNT)
    positions = rng.uniform(0.0, 1.0, size=(COUNT, 2))
    graph, _ = unit_disk_graph(positions, RADIUS)
    densities = all_densities(graph, exact=True)
    clustering = IncrementalElection(order="basic").update(
        graph, densities, tie_ids={node: node for node in graph})
    topology = Topology(graph, positions=None,
                        ids={node: node for node in graph}, radius=RADIUS)
    overlay = overlay_topology(topology, clustering)
    hierarchy = Hierarchy([HierarchyLevel(index=0, topology=topology,
                                          clustering=clustering,
                                          overlay=overlay)])
    return hierarchy


def _hot_sources(clustering):
    """Members of the ``HOT_CLUSTERS`` largest clusters (deterministic:
    size-desc, head-id tiebreak)."""
    ranked = sorted(clustering.heads,
                    key=lambda head: (-len(clustering.members(head)), head))
    sources = []
    for head in ranked[:HOT_CLUSTERS]:
        sources.extend(clustering.members(head))
    return sorted(sources)


def test_bench_route_batch_1m(benchmark, deployment):
    clustering = deployment.physical.clustering
    sources = _hot_sources(clustering)
    nodes = sorted(deployment.physical.topology.graph.nodes)
    popularity = ZipfPopularity(nodes[:DEST_POOL], ZIPF_ALPHA)
    requests = list(poisson_requests(sources, ROUTE_REQUESTS,
                                     rng=np.random.default_rng(11),
                                     popularity=popularity))

    def run():
        router = CachedRouter(deployment)
        return router.route_batch(requests)

    served = benchmark.pedantic(run, rounds=1, iterations=1)
    routed = [event for event in served if event.route is not None]
    total_hops = sum(event.hops for event in routed)
    assert len(served) == ROUTE_REQUESTS
    assert routed and total_hops > 0
    benchmark.extra_info["requests_routed"] = len(routed)
    benchmark.extra_info["route_hops_per_sec_1m"] = (
        total_hops / benchmark.stats.stats.mean)


def test_bench_route_stretch_1m(benchmark, deployment):
    clustering = deployment.physical.clustering
    sources = _hot_sources(clustering)
    nodes = sorted(deployment.physical.topology.graph.nodes)
    destinations = nodes[:STRETCH_DESTINATIONS]
    pairs = [(sources[(37 * i) % len(sources)],
              destinations[i % STRETCH_DESTINATIONS])
             for i in range(STRETCH_SAMPLES)]

    def run():
        router = CachedRouter(deployment,
                              flat_cache=STRETCH_DESTINATIONS)
        return [router.route_stretch(source, destination)
                for source, destination in pairs]

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(samples) == STRETCH_SAMPLES
    benchmark.extra_info["stretch_samples_per_sec_1m"] = (
        STRETCH_SAMPLES / benchmark.stats.stats.mean)
