"""Bench: baseline clustering windows, incremental engines vs rebuilds.

Each baseline metric (lowest-ID, highest-degree, max-min d=2) replays
the same recorded sparse-mover trace (1% of nodes jitter per window,
the repo's churn-adjacent workload shape) two ways at 1000 and 5000
nodes:

* **rebuild** -- every window pays a full ``topology_at`` join plus a
  scratch clustering (the pre-engine pipeline).
* **delta** -- a ``DynamicTopology`` maintains the unit-disk graph
  incrementally (no density tracking: the baselines never read it) and
  the registered :class:`~repro.clustering.engine.ClusteringEngine`
  repairs its clustering from the edge delta.

Both report ``windows_per_sec`` in ``extra_info``; the CI gate
(``benchmarks/regression_gate.py``) requires the greedy engines' delta
path to stay >= 3x faster per window than the rebuild path at 5000
nodes.  (Under 100% movers the dirty set blows the scratch-fallback
budget and the engines intentionally rebuild -- that shape is covered
by ``test_bench_dynamic.py``.)  The delta bench asserts its final
window equals the scratch clustering of the final frame before
reporting, so the ratio is only recorded for bit-identical work.
"""

import numpy as np
import pytest

from repro.clustering.baselines.degree import degree_clustering
from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.clustering.baselines.maxmin import maxmin_clustering
from repro.clustering.engine import engine_for
from repro.graph.dynamic import DynamicTopology, WindowUpdate
from repro.mobility.trace import topology_at

SCALES = (1000, 5000)
RADIUS = 0.05
WINDOWS = 6

METRICS = {
    "lowest-id": (
        lambda: engine_for("lowest-id"),
        lambda topo: lowest_id_clustering(topo.graph, tie_ids=topo.ids),
    ),
    "degree": (
        lambda: engine_for("degree"),
        lambda topo: degree_clustering(topo.graph, tie_ids=topo.ids),
    ),
    "max-min": (
        lambda: engine_for("max-min", d=2),
        lambda topo: maxmin_clustering(topo.graph, d=2, tie_ids=topo.ids),
    ),
}


@pytest.fixture(scope="module")
def traces():
    """Recorded sparse-mover frames per scale (1% jitter per window)."""
    frames = {}
    for count in SCALES:
        rng = np.random.default_rng(2024)
        positions = rng.uniform(0, 1, size=(count, 2))
        frames[count] = [positions.copy()]
        movers = max(count // 100, 1)
        for _ in range(WINDOWS):
            chosen = rng.choice(count, size=movers, replace=False)
            positions[chosen] = np.clip(
                positions[chosen]
                + rng.uniform(-0.01, 0.01, size=(movers, 2)),
                0, 1)
            frames[count].append(positions.copy())
    return frames


def _windows_per_sec(benchmark):
    benchmark.extra_info["windows_per_sec"] = (
        WINDOWS / benchmark.stats.stats.mean)


@pytest.mark.parametrize("metric", sorted(METRICS))
@pytest.mark.parametrize("count", SCALES)
def test_bench_baseline_windows_rebuild(benchmark, traces, count, metric):
    """Scratch pipeline: full join + scratch clustering per window."""
    _factory, scratch = METRICS[metric]
    frames = traces[count]

    def run():
        clustering = None
        for positions in frames[1:]:
            clustering = scratch(topology_at(positions, RADIUS))
        return clustering

    clustering = benchmark.pedantic(run, rounds=1, iterations=1)
    _windows_per_sec(benchmark)
    assert clustering.heads


@pytest.mark.parametrize("metric", sorted(METRICS))
@pytest.mark.parametrize("count", SCALES)
def test_bench_baseline_windows_delta(benchmark, traces, count, metric):
    """Engine pipeline over the same windows (>= 3x at 5000 nodes for
    the greedy engines)."""
    factory, scratch = METRICS[metric]
    frames = traces[count]
    dynamic = DynamicTopology(frames[0], RADIUS, track_densities=False)
    engine = factory()
    engine.apply_delta(WindowUpdate(topology=dynamic.topology, delta=None,
                                    density_changed=None, densities=None))

    def run():
        clustering = None
        for positions in frames[1:]:
            clustering = engine.apply_delta(dynamic.move(positions))
        return clustering

    clustering = benchmark.pedantic(run, rounds=1, iterations=1)
    _windows_per_sec(benchmark)
    reference = scratch(topology_at(frames[-1], RADIUS))
    assert clustering.heads == reference.heads
    assert clustering.parents == reference.parents
