"""Bench: unit-disk graph construction at 1k/5k/10k nodes.

Times the bulk ``Graph.from_pair_array`` hot path end to end (geometry
pair scan included) at the three scales the CSR work targets, plus the
pre-PR per-edge ``add_edge`` loop at 5000 nodes so the benchmark artifact
records the bulk-vs-loop construction ratio directly.
"""

import numpy as np
import pytest

from repro.graph.generators import uniform_topology
from repro.graph.geometry import pairs_within_range
from repro.graph.graph import Graph

# (nodes, radius): paper-style densities, ~40-100 neighbors per node.
SCALES = {1000: 0.08, 5000: 0.08, 10000: 0.05}


def positions_for(count, radius):
    rng = np.random.default_rng(count)
    return rng.uniform(0.0, 1.0, size=(count, 2)), radius


@pytest.mark.parametrize("count", sorted(SCALES))
def test_bench_bulk_construction(benchmark, count):
    positions, radius = positions_for(count, SCALES[count])
    pairs = pairs_within_range(positions, radius)
    graph = benchmark.pedantic(
        lambda: Graph.from_pair_array(pairs, count),
        rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["edges"] = graph.edge_count()
    assert len(graph) == count


@pytest.mark.parametrize("count", sorted(SCALES))
def test_bench_topology_end_to_end(benchmark, count):
    radius = SCALES[count]
    topo = benchmark.pedantic(
        lambda: uniform_topology(count, radius, rng=2024),
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(topo.graph) == count


def test_bench_dict_loop_construction_5000_reference(benchmark):
    """The pre-PR path: one ``add_edge`` call per pair (speedup baseline)."""
    positions, radius = positions_for(5000, SCALES[5000])
    pairs = pairs_within_range(positions, radius)

    def build():
        graph = Graph(nodes=range(5000))
        for i, j in pairs.tolist():
            graph.add_edge(i, j)
        return graph

    reference = benchmark.pedantic(build, rounds=3, iterations=1,
                                   warmup_rounds=1)
    bulk = Graph.from_pair_array(pairs, 5000)
    assert reference._adj == bulk._adj
