"""Bench: Table 5 -- the adversarial grid with sequential identifiers."""

from repro.experiments.common import get_preset
from repro.experiments.table5 import run_table5


def test_bench_table5(benchmark, show, jobs):
    preset = get_preset("quick", runs=5)
    table = benchmark.pedantic(lambda: run_table5(preset, rng=2024, jobs=jobs),
                               rounds=1, iterations=1)
    show(table)
    rows = {(row[0], row[1]): row for row in table.rows}
    for radius in (0.05, 0.08, 0.1):
        no_dag = rows[(radius, "no")]
        with_dag = rows[(radius, "with")]
        # The paper's headline: near-total collapse without the DAG...
        assert no_dag[2] <= 5
        # ...many clusters with it, with far shallower joining trees.
        assert with_dag[2] >= 4 * no_dag[2]
        assert no_dag[4] > 2 * with_dag[4]
