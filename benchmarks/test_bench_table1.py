"""Bench: Table 1 -- densities on the Figure 1 example (exact match)."""

from repro.experiments.table1 import run_table1


def test_bench_table1(benchmark, show):
    table, exact = benchmark(run_table1)
    show(table)
    assert exact, "Table 1 must match the paper exactly"
