"""Ablation benches for the design choices DESIGN.md calls out.

* name-space size: |γ| = δ vs δ² (Section 4.1's trade-off: larger spaces
  converge in fewer rounds, smaller spaces give lower DAG heights);
* improvement rules in isolation: incumbent-only vs fusion-only vs both;
* channel models: convergence cost of loss and contention vs ideal.
"""

from repro.experiments.common import get_preset
from repro.experiments.mobility import run_mobility_trace
from repro.graph.generators import uniform_topology
from repro.metrics.tables import Table
from repro.naming.dag import dag_height
from repro.naming.namespace import NameSpace, recommended_size
from repro.naming.renaming import PoliteRenaming
from repro.protocols.stack import standard_stack
from repro.runtime.channel import BernoulliLossChannel, IdealChannel, \
    SlottedContentionChannel
from repro.runtime.simulator import StepSimulator
from repro.stabilization.monitor import steps_to_legitimacy
from repro.stabilization.predicates import make_stack_predicate
from repro.util.rng import spawn_rngs


def _namespace_ablation():
    table = Table(
        title="Ablation: name-space size (rounds to build vs DAG height)",
        headers=["|gamma|", "mean rounds", "mean DAG height"])
    runs = 6
    for exponent, label in ((1, "delta+2"), (2, "delta^2")):
        rounds_total = 0.0
        height_total = 0.0
        for run_rng in spawn_rngs(2024 + exponent, runs):
            topo = uniform_topology(400, 0.08, rng=run_rng)
            size = recommended_size(topo.graph.max_degree(),
                                    exponent=exponent)
            result = PoliteRenaming(namespace=NameSpace(size)).run(
                topo.graph, rng=run_rng, tie_ids=topo.ids)
            rounds_total += result.rounds
            height_total += dag_height(topo.graph, result.ids)
        table.add_row([label, rounds_total / runs, height_total / runs])
    return table


def test_bench_ablation_namespace(benchmark, show):
    table = benchmark.pedantic(_namespace_ablation, rounds=1, iterations=1)
    show(table)
    rounds = table.column("mean rounds")
    heights = table.column("mean DAG height")
    # delta^2 must not be slower than delta+2, and delta+2 must not be
    # taller than delta^2 -- the two sides of the paper's trade-off.
    assert rounds[1] <= rounds[0] + 0.5
    assert heights[0] <= heights[1] + 1.0


def _rules_ablation():
    preset = get_preset("quick", mobility_nodes=300,
                        mobility_duration=60.0)
    configurations = {
        "basic": {"order": "basic", "fusion": False},
        "incumbent only": {"order": "incumbent", "fusion": False},
        "fusion only": {"order": "basic", "fusion": True},
        "both (paper improved)": {"order": "incumbent", "fusion": True},
    }
    outcome = run_mobility_trace("vehicular", preset, radius=0.1, rng=2024,
                                 configurations=configurations)
    table = Table(
        title="Ablation: improvement rules in isolation (vehicular)",
        headers=["configuration", "% heads retained / window"])
    for name in configurations:
        table.add_row([name, outcome.retention_percent[name]])
    return table


def test_bench_ablation_improvement_rules(benchmark, show):
    table = benchmark.pedantic(_rules_ablation, rounds=1, iterations=1)
    show(table)
    retention = dict(zip(table.column("configuration"),
                         table.column("% heads retained / window")))
    assert retention["both (paper improved)"] >= retention["basic"] - 2.0


def _channel_ablation():
    table = Table(
        title="Ablation: channel model vs stabilization steps (40 nodes)",
        headers=["channel", "mean steps to legitimacy"])
    channels = {
        "ideal": lambda delta: IdealChannel(),
        "bernoulli 20% loss": lambda delta: BernoulliLossChannel(0.2),
        "slotted contention": lambda delta: SlottedContentionChannel(
            4 * max(delta, 2)),
    }
    runs = 3
    for name, factory in channels.items():
        total = 0.0
        for run_rng in spawn_rngs(hash(name) % 2**31, runs):
            topo = uniform_topology(40, 0.25, rng=run_rng)
            sim = StepSimulator(topo, standard_stack(topology=topo),
                                channel=factory(topo.graph.max_degree()),
                                rng=run_rng, cache_timeout=16)
            report = steps_to_legitimacy(sim, make_stack_predicate(), 800)
            total += report.steps if report.converged else 800.0
        table.add_row([name, total / runs])
    return table


def test_bench_ablation_channels(benchmark, show):
    table = benchmark.pedantic(_channel_ablation, rounds=1, iterations=1)
    show(table)
    steps = dict(zip(table.column("channel"),
                     table.column("mean steps to legitimacy")))
    assert steps["ideal"] <= steps["bernoulli 20% loss"]
