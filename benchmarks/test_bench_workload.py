"""Bench: traffic serving throughput through the cached hierarchical router.

Serves 10^5 Poisson-arrival requests per bench through
:func:`~repro.workload.serve.serve_workload` at 1000 and 5000 nodes,
under uniform and Zipf(0.8) destination popularity.  Each bench also
records two serving-quality keys in ``extra_info``:

* ``requests_per_sec`` -- served requests over the measured mean time
  (the throughput key the regression gate normalizes by the calibration
  bench);
* ``p99_latency_hops`` -- the p99 serving latency in hops (a pure
  function of the seeded deployment and workload, so the gate compares
  it raw: any drift is a routing change, not machine noise).

``flat_every=0`` disables stretch sampling so the measurement is the
serving path itself, not the flat-BFS oracle.

The parametrized benches serve in the default batched mode
(``route_batch`` groups each chunk by head pair and runs one dense
per-cluster sweep per group).  The ``*_floor_batch`` /
``*_reference`` pair serves one identical 20k-request Zipf stream at
5000 nodes through a fresh router in each mode -- the regime every
workload-experiment run is in (a new router per shape and per mobility
window) -- and the regression gate holds batched to >= 3x the
per-request loop on exactly that pair (``SPEEDUP_FLOORS``).  The 10^5
benches are deliberately not the floor pair: over a long enough stream
on a fixed graph both modes converge to warm-cache tuple assembly, so
the steady-state ratio understates what batching buys a fresh run.
"""

import numpy as np
import pytest

from repro.collectors import (
    CollectorProxy,
    HeadLoadCollector,
    LatencyCollector,
    LinkLoadCollector,
)
from repro.graph.generators import uniform_topology
from repro.hierarchy.hierarchy import build_hierarchy
from repro.workload.generators import ZipfPopularity, poisson_requests
from repro.workload.serve import serve_workload

SCALES = (1000, 5000)
RADIUS = 0.05
REQUESTS = 100_000
FLOOR_REQUESTS = 20_000  # one workload-experiment run's per-shape budget
ZIPF_ALPHA = 0.8


@pytest.fixture(scope="module")
def deployments():
    """One seeded hierarchy per scale (deployment build cost out of the
    measurement)."""
    built = {}
    for count in SCALES:
        rng = np.random.default_rng(2024)
        topology = uniform_topology(count, RADIUS, rng=rng)
        built[count] = build_hierarchy(topology, rng=rng)
    return built


def _serve(hierarchy, kind, mode="batch", count=REQUESTS):
    nodes = sorted(hierarchy.physical.topology.graph.nodes)
    proxy = CollectorProxy([
        LatencyCollector(),
        LinkLoadCollector(),
        HeadLoadCollector(hierarchy.physical.clustering.heads),
    ])
    popularity = (ZipfPopularity(nodes, ZIPF_ALPHA)
                  if kind == "zipf" else None)
    requests = poisson_requests(nodes, count,
                                rng=np.random.default_rng(7),
                                popularity=popularity)
    return serve_workload(hierarchy, requests, proxy, flat_every=0,
                          mode=mode)


@pytest.mark.parametrize("count,kind", [
    (1000, "uniform"),
    (1000, "zipf"),
    (5000, "uniform"),
    (5000, "zipf"),
])
def test_bench_workload_serve(benchmark, deployments, count, kind):
    hierarchy = deployments[count]
    proxy = benchmark.pedantic(lambda: _serve(hierarchy, kind),
                               rounds=1, iterations=1)
    latency = proxy["latency"].results()
    assert latency["requests"] == REQUESTS
    assert latency["served"] + latency["unroutable"] == REQUESTS
    benchmark.extra_info["requests_per_sec"] = (
        REQUESTS / benchmark.stats.stats.mean)
    benchmark.extra_info["p99_latency_hops"] = latency["p99"]


@pytest.mark.parametrize("mode", ["batch", "request"])
def test_bench_workload_serve_floor(benchmark, deployments, mode):
    """The speedup-floor pair: one identical 20k-request Zipf stream at
    5000 nodes, served batched and through the per-request reference
    loop (fresh router each, exactly like a workload-experiment run).
    The gate requires batch >= 3x request on this pair."""
    hierarchy = deployments[5000]
    proxy = benchmark.pedantic(
        lambda: _serve(hierarchy, "zipf", mode=mode, count=FLOOR_REQUESTS),
        rounds=1, iterations=1)
    latency = proxy["latency"].results()
    assert latency["requests"] == FLOOR_REQUESTS
    benchmark.extra_info["requests_per_sec"] = (
        FLOOR_REQUESTS / benchmark.stats.stats.mean)
    benchmark.extra_info["p99_latency_hops"] = latency["p99"]
