"""Bench: traffic serving throughput through the cached hierarchical router.

Serves 10^5 Poisson-arrival requests per bench through
:func:`~repro.workload.serve.serve_workload` at 1000 and 5000 nodes,
under uniform and Zipf(0.8) destination popularity.  Each bench also
records two serving-quality keys in ``extra_info``:

* ``requests_per_sec`` -- served requests over the measured mean time
  (the throughput key the regression gate normalizes by the calibration
  bench);
* ``p99_latency_hops`` -- the p99 serving latency in hops (a pure
  function of the seeded deployment and workload, so the gate compares
  it raw: any drift is a routing change, not machine noise).

``flat_every=0`` disables stretch sampling so the measurement is the
serving path itself, not the flat-BFS oracle.
"""

import numpy as np
import pytest

from repro.collectors import (
    CollectorProxy,
    HeadLoadCollector,
    LatencyCollector,
    LinkLoadCollector,
)
from repro.graph.generators import uniform_topology
from repro.hierarchy.hierarchy import build_hierarchy
from repro.workload.generators import ZipfPopularity, poisson_requests
from repro.workload.serve import serve_workload

SCALES = (1000, 5000)
RADIUS = 0.05
REQUESTS = 100_000
ZIPF_ALPHA = 0.8


@pytest.fixture(scope="module")
def deployments():
    """One seeded hierarchy per scale (deployment build cost out of the
    measurement)."""
    built = {}
    for count in SCALES:
        rng = np.random.default_rng(2024)
        topology = uniform_topology(count, RADIUS, rng=rng)
        built[count] = build_hierarchy(topology, rng=rng)
    return built


def _serve(hierarchy, kind):
    nodes = sorted(hierarchy.physical.topology.graph.nodes)
    proxy = CollectorProxy([
        LatencyCollector(),
        LinkLoadCollector(),
        HeadLoadCollector(hierarchy.physical.clustering.heads),
    ])
    popularity = (ZipfPopularity(nodes, ZIPF_ALPHA)
                  if kind == "zipf" else None)
    requests = poisson_requests(nodes, REQUESTS,
                                rng=np.random.default_rng(7),
                                popularity=popularity)
    return serve_workload(hierarchy, requests, proxy, flat_every=0)


@pytest.mark.parametrize("count,kind", [
    (1000, "uniform"),
    (1000, "zipf"),
    (5000, "uniform"),
    (5000, "zipf"),
])
def test_bench_workload_serve(benchmark, deployments, count, kind):
    hierarchy = deployments[count]
    proxy = benchmark.pedantic(lambda: _serve(hierarchy, kind),
                               rounds=1, iterations=1)
    latency = proxy["latency"].results()
    assert latency["requests"] == REQUESTS
    assert latency["served"] + latency["unroutable"] == REQUESTS
    benchmark.extra_info["requests_per_sec"] = (
        REQUESTS / benchmark.stats.stats.mean)
    benchmark.extra_info["p99_latency_hops"] = latency["p99"]
