"""Bench: recovery under node churn (the 'appear/disappear' premise)."""

from repro.experiments.churn import run_churn_experiment


def test_bench_churn(benchmark, show, jobs):
    table = benchmark.pedantic(
        lambda: run_churn_experiment(initial_count=60, epochs=12, runs=2,
                                     rng=2024, jobs=jobs),
        rounds=1, iterations=1)
    show(table)
    ready = table.column("ready fraction %")
    steps = table.column("mean recovery steps")
    # Zero churn: trivially ready; moderate churn: still heals within the
    # budget in (nearly) every epoch, in a handful of steps.
    assert ready[0] == 100.0
    assert all(value >= 80.0 for value in ready)
    assert steps[0] <= steps[-1]
