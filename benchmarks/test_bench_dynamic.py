"""Bench: delta-maintained mobility windows vs full per-window rebuilds.

Two workload shapes at 1000 and 5000 nodes:

* **100% movers** -- a recorded pedestrian trace (every node drifts every
  2-second window, ~5% of edges flip): the full window evaluation
  (topology + DAG repair + both election configurations) through the
  delta pipeline vs the scratch rebuild oracle.  The acceptance target
  rides the 5000-node pair: delta >= 3x faster per steady-state window.
* **1% movers** -- a sparse teleport workload (the churn-adjacent shape):
  topology + exact-density maintenance only, delta vs rebuild.

Every bench asserts the delta outputs equal the rebuild outputs before
reporting, so the ratio in ``BENCH_ci.json`` is only recorded for
bit-identical work.
"""

import numpy as np
import pytest

from repro.clustering.density import all_densities
from repro.experiments.mobility import (
    CONFIGURATIONS,
    SPEED_REGIMES,
    _DeltaTraceEvaluator,
    _RebuildTraceEvaluator,
    speed_range_in_sides,
)
from repro.graph.dynamic import DynamicTopology
from repro.metrics.stability import RetentionSeries
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.trace import topology_at
from repro.util.rng import as_rng

SCALES = (1000, 5000)
RADIUS = 0.05
WINDOWS = 6


@pytest.fixture(scope="module")
def traces():
    """Recorded pedestrian position frames per scale (model physics out
    of the measurement)."""
    frames = {}
    for count in SCALES:
        model = RandomDirectionModel(
            count, speed_range_in_sides(SPEED_REGIMES["pedestrian"]),
            rng=as_rng(2024))
        frames[count] = [model.positions.copy()]
        for _ in range(WINDOWS):
            model.advance(2.0)
            frames[count].append(model.positions.copy())
    return frames


def _evaluate(frames, evaluator):
    """Replay the run_mobility_trace window loop over recorded frames."""
    state = {name: {"previous": None, "series": RetentionSeries()}
             for name in CONFIGURATIONS}
    for positions in frames:
        for name, clustering in evaluator(positions, state):
            run_state = state[name]
            if run_state["previous"] is not None:
                run_state["series"].observe(run_state["previous"].heads,
                                            clustering.heads)
            run_state["previous"] = clustering
    return {name: run_state["series"].percent
            for name, run_state in state.items()}


def _steady_windows(frames, evaluator_cls, rng_seed=99):
    """Prime on the first frame, then evaluate the remaining windows."""
    evaluator = evaluator_cls(RADIUS, CONFIGURATIONS, as_rng(rng_seed))
    state = {name: {"previous": None, "series": RetentionSeries()}
             for name in CONFIGURATIONS}
    for name, clustering in evaluator(frames[0], state):
        state[name]["previous"] = clustering

    def run():
        return _evaluate(frames[1:], evaluator)

    return run


@pytest.mark.parametrize("count", SCALES)
def test_bench_mobility_windows_rebuild(benchmark, traces, count):
    """The scratch per-window pipeline (speedup baseline)."""
    run = _steady_windows(traces[count], _RebuildTraceEvaluator)
    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert set(outcome) == set(CONFIGURATIONS)


@pytest.mark.parametrize("count", SCALES)
def test_bench_mobility_windows_delta(benchmark, traces, count):
    """The delta pipeline over the same windows (>= 3x at 5000 nodes)."""
    run = _steady_windows(traces[count], _DeltaTraceEvaluator)
    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    # Steady-state continuation stays bit-identical to a rebuild replay
    # of the same remaining windows seeded with the same first window.
    reference = _steady_windows(traces[count], _RebuildTraceEvaluator)()
    assert outcome == reference


def _sparse_frames(count, movers, windows=WINDOWS, seed=7):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 1, size=(count, 2))
    frames = [positions.copy()]
    for _ in range(windows):
        chosen = rng.choice(count, size=movers, replace=False)
        positions[chosen] = np.clip(
            positions[chosen] + rng.uniform(-0.01, 0.01, size=(movers, 2)),
            0, 1)
        frames.append(positions.copy())
    return frames


@pytest.mark.parametrize("count", SCALES)
def test_bench_sparse_movers_rebuild(benchmark, count):
    """1% movers, scratch: full join + global density recount per window."""
    frames = _sparse_frames(count, movers=max(count // 100, 1))

    def run():
        totals = 0
        for positions in frames[1:]:
            topology = topology_at(positions, RADIUS)
            totals += len(all_densities(topology.graph, exact=True))
        return totals

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0


@pytest.mark.parametrize("count", SCALES)
def test_bench_sparse_movers_delta(benchmark, count):
    """1% movers, delta: per-window cost proportional to the movers."""
    frames = _sparse_frames(count, movers=max(count // 100, 1))
    dynamic = DynamicTopology(frames[0], RADIUS)

    def run():
        totals = 0
        for positions in frames[1:]:
            update = dynamic.move(positions)
            totals += len(update.topology.graph)
        return totals

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
    final = topology_at(frames[-1], RADIUS)
    assert dynamic.densities == all_densities(final.graph, exact=True)
