"""Stochastic analysis of density on random geometric graphs.

The companion paper [16] studies the density metric analytically on a
Poisson point process; Section 3 of the reproduced paper cites two of its
conclusions (bounded head count that *decreases* with intensity; better
stability than degree/max-min).  This module derives the closed-form
expectations the simulations can be checked against.

For a Poisson process of intensity ``λ`` and transmission range ``R``
(ignoring border effects):

* a node's degree is Poisson with mean ``μ = λπR²``;
* two independent uniform points of a disk of radius ``R`` are within
  distance ``R`` of each other with probability
  ``p = 1 − 3√3/(4π) ≈ 0.5865`` (the normalized lens area integral);
* the expected number of links among a node's neighbors, given degree
  ``k``, is ``C(k, 2)·p``, so the conditional density is
  ``1 + p(k − 1)/2`` and, taking the expectation over the degree,
  ``E[d] ≈ 1 + pμ/2``.

These are asymptotic interior-node values; the validation tests sample
interior nodes of large deployments and check agreement within a few
percent.
"""

import math

from repro.util.errors import ConfigurationError

# P(two uniform points of a disk of radius R are within R): 1 - 3√3/(4π).
LENS_PROBABILITY = 1.0 - 3.0 * math.sqrt(3.0) / (4.0 * math.pi)


def expected_degree(intensity, radius):
    """``μ = λπR²``: the mean interior-node degree."""
    _validate(intensity, radius)
    return intensity * math.pi * radius * radius


def expected_neighbor_links(intensity, radius):
    """Expected edges among one node's neighbors: ``p·μ²/2``.

    For Poisson degree ``N``, ``E[C(N, 2)] = μ²/2``.
    """
    mu = expected_degree(intensity, radius)
    return LENS_PROBABILITY * mu * mu / 2.0


def expected_density(intensity, radius):
    """``E[d] ≈ 1 + pμ/2`` -- the interior-node density expectation.

    Exact for the conditional expectation given degree ``k ≥ 1``
    (linearity over neighbor pairs); the unconditional value treats
    ``E[(N−1)/2 | N ≥ 1] ≈ (μ−1)/2 + small`` and keeps the dominant
    ``pμ/2`` term, which is the regime the paper's evaluation runs in
    (μ between 8 and 31).
    """
    mu = expected_degree(intensity, radius)
    return 1.0 + LENS_PROBABILITY * mu / 2.0


def expected_density_given_degree(degree):
    """``1 + p(k − 1)/2``: exact conditional expectation given degree."""
    if degree < 0:
        raise ConfigurationError(f"degree must be non-negative, got {degree}")
    if degree == 0:
        return 0.0
    return 1.0 + LENS_PROBABILITY * (degree - 1) / 2.0


def _validate(intensity, radius):
    if intensity <= 0:
        raise ConfigurationError(f"intensity must be positive, got {intensity}")
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
