"""Stochastic analysis of the density metric on random geometric graphs."""

from repro.analysis.rgg import (
    LENS_PROBABILITY,
    expected_degree,
    expected_density,
    expected_density_given_degree,
    expected_neighbor_links,
)

__all__ = [
    "LENS_PROBABILITY",
    "expected_degree",
    "expected_density",
    "expected_density_given_degree",
    "expected_neighbor_links",
]
