"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Components
never touch global RNG state, so two simulations with the same seed produce
identical traces regardless of what else ran in the process.
"""

import numpy as np


def as_rng(seed_or_rng=None):
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (OS entropy), an ``int`` seed, or an existing generator
    (returned unchanged, so callers can thread one generator through a whole
    experiment).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed_or_rng, count):
    """Derive ``count`` independent child generators from one root.

    Used by experiment runners to give each simulation run its own stream so
    that runs can be reordered without changing per-run results.
    """
    root = as_rng(seed_or_rng)
    seeds = root.integers(0, 2**63, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
