"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or parameter combination was supplied."""


class ConvergenceError(ReproError):
    """An iterative process failed to reach a fixpoint within its budget.

    Carries the number of iterations attempted so callers can report it.
    """

    def __init__(self, message, iterations=None):
        super().__init__(message)
        self.iterations = iterations


class TopologyError(ReproError):
    """A graph operation was applied to an unsuitable topology."""
