"""Shared utilities: deterministic RNG plumbing, error types, validation."""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    ConvergenceError,
    TopologyError,
)
from repro.util.rng import as_rng, spawn_rngs

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "TopologyError",
    "as_rng",
    "spawn_rngs",
]
