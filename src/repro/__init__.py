"""repro: self-stabilizing density-driven clustering for multihop wireless
networks.

A complete reproduction of N. Mitton, E. Fleury, I. Guérin Lassous and
S. Tixeuil, *Self-stabilization in self-organized Multihop Wireless
Networks* (INRIA RR-5426 / ICDCS 2005 workshops): the density clustering
heuristic, the constant-height DAG renaming, the stability improvement
rules, a synchronous radio runtime implementing the paper's step model,
a self-stabilization toolkit, the comparison baselines, and runners for
every table and figure of the evaluation.

Quick start::

    from repro import poisson_topology, compute_clustering

    topology = poisson_topology(intensity=500, radius=0.1, rng=42)
    clustering = compute_clustering(topology.graph, tie_ids=topology.ids)
    print(clustering.cluster_count, "clusters")

See README.md for the architecture overview and examples/ for runnable
scenarios.
"""

from repro.clustering import (
    Clustering,
    all_densities,
    compute_clustering,
    degree_clustering,
    density,
    lowest_id_clustering,
    maxmin_clustering,
)
from repro.energy import BatteryModel, energy_aware_clustering
from repro.graph import (
    Graph,
    Topology,
    TopologySpec,
    build_topology_spec,
    figure1_topology,
    grid_topology,
    load_graph,
    poisson_topology,
    registered_topologies,
    save_graph,
    square_grid_topology,
    uniform_topology,
)
from repro.hierarchy import build_hierarchy, hierarchical_route
from repro.naming import (
    NameSpace,
    PoliteRenaming,
    RandomizedRenaming,
    assign_dag_ids,
)
from repro.protocols import extract_clustering, standard_stack
from repro.runtime import (
    BernoulliLossChannel,
    IdealChannel,
    SlottedContentionChannel,
    StepSimulator,
)
from repro.stabilization import (
    make_stack_predicate,
    steps_to_legitimacy,
    verify_closure,
)

__version__ = "1.0.0"

__all__ = [
    "BatteryModel",
    "BernoulliLossChannel",
    "Clustering",
    "Graph",
    "IdealChannel",
    "NameSpace",
    "PoliteRenaming",
    "RandomizedRenaming",
    "SlottedContentionChannel",
    "StepSimulator",
    "Topology",
    "TopologySpec",
    "__version__",
    "all_densities",
    "assign_dag_ids",
    "build_hierarchy",
    "build_topology_spec",
    "compute_clustering",
    "degree_clustering",
    "density",
    "energy_aware_clustering",
    "extract_clustering",
    "figure1_topology",
    "hierarchical_route",
    "grid_topology",
    "load_graph",
    "lowest_id_clustering",
    "make_stack_predicate",
    "maxmin_clustering",
    "poisson_topology",
    "registered_topologies",
    "save_graph",
    "square_grid_topology",
    "standard_stack",
    "steps_to_legitimacy",
    "uniform_topology",
    "verify_closure",
]
