"""Mobility model interface.

Section 5's stability experiment moves nodes "randomly at a randomly
chosen speed" for 15 minutes and re-evaluates clusters every 2 seconds.
A mobility model owns the node positions and advances them by ``dt``
seconds; :func:`repro.mobility.trace.topology_at` turns positions back
into unit-disk topologies per evaluation window.

Distances are in *square sides* (the paper's 1x1 square).  The experiment
presets interpret the square as 1 km x 1 km, so a pedestrian 1.6 m/s is
0.0016 sides/s and the R = 0.05..0.1 ranges are 50..100 m.
"""

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


class MobilityModel:
    """Owns an ``(n, 2)`` position array inside a ``side x side`` square."""

    def __init__(self, count, side=1.0, rng=None):
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if side <= 0:
            raise ConfigurationError(f"side must be positive, got {side}")
        self.count = int(count)
        self.side = float(side)
        self.rng = as_rng(rng)
        self.positions = self.rng.uniform(0.0, self.side, size=(self.count, 2))

    def advance(self, dt):
        """Advance all nodes by ``dt`` seconds; returns the new positions."""
        raise NotImplementedError

    def _reflect(self, proposed):
        """Reflect positions (and report flipped axes) at the square borders.

        Returns ``(positions, flipped)`` where ``flipped`` is a boolean
        array marking coordinates whose direction of travel must invert.
        """
        span = 2.0 * self.side
        folded = np.mod(proposed, span)
        over = folded > self.side
        reflected = np.where(over, span - folded, folded)
        return reflected, over
