"""Random-direction mobility with border reflection.

Each node draws a heading uniformly on the circle and a speed uniformly
from ``[min_speed, max_speed]``; it travels in a straight line, reflecting
off the square's borders, and re-draws heading and speed after an
exponentially distributed leg duration.  This matches the paper's loose
"nodes move randomly at a randomly chosen speed" while avoiding the
center-bias pathology of random waypoint.
"""

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.errors import ConfigurationError


class RandomDirectionModel(MobilityModel):
    """Straight legs, reflective borders, exponential leg durations."""

    def __init__(self, count, speed_range, side=1.0, mean_leg_duration=30.0,
                 rng=None):
        super().__init__(count, side=side, rng=rng)
        low, high = speed_range
        if low < 0 or high < low:
            raise ConfigurationError(
                f"speed_range must satisfy 0 <= min <= max, got {speed_range}")
        if mean_leg_duration <= 0:
            raise ConfigurationError(
                f"mean_leg_duration must be positive, got {mean_leg_duration}")
        self.speed_range = (float(low), float(high))
        self.mean_leg_duration = float(mean_leg_duration)
        self._speeds = self.rng.uniform(low, high, size=self.count)
        headings = self.rng.uniform(0.0, 2.0 * np.pi, size=self.count)
        self._velocities = self._speeds[:, None] * np.column_stack(
            (np.cos(headings), np.sin(headings)))
        self._leg_remaining = self.rng.exponential(
            self.mean_leg_duration, size=self.count)

    def advance(self, dt):
        if dt < 0:
            raise ConfigurationError(f"dt must be non-negative, got {dt}")
        remaining = float(dt)
        # Process in sub-steps so a leg change mid-interval is honored for
        # the remainder of the interval.
        while remaining > 1e-12:
            sub = min(remaining, float(np.min(self._leg_remaining)))
            sub = max(sub, 1e-9)
            proposed = self.positions + self._velocities * sub
            self.positions, flipped = self._reflect(proposed)
            self._velocities = np.where(flipped, -self._velocities,
                                        self._velocities)
            self._leg_remaining -= sub
            expired = self._leg_remaining <= 1e-12
            if np.any(expired):
                self._redraw(expired)
            remaining -= sub
        return self.positions

    def _redraw(self, mask):
        count = int(np.count_nonzero(mask))
        low, high = self.speed_range
        speeds = self.rng.uniform(low, high, size=count)
        headings = self.rng.uniform(0.0, 2.0 * np.pi, size=count)
        self._speeds[mask] = speeds
        self._velocities[mask] = speeds[:, None] * np.column_stack(
            (np.cos(headings), np.sin(headings)))
        self._leg_remaining[mask] = self.rng.exponential(
            self.mean_leg_duration, size=count)
