"""Mobility models and traces for the Section 5 stability experiment."""

from repro.mobility.base import MobilityModel
from repro.mobility.churn import ChurnProcess
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.random_waypoint import RandomWaypointModel
from repro.mobility.trace import (
    Trace,
    TraceFrame,
    record_trace,
    topology_at,
    topology_stream,
)

__all__ = [
    "ChurnProcess",
    "MobilityModel",
    "RandomDirectionModel",
    "RandomWaypointModel",
    "Trace",
    "TraceFrame",
    "record_trace",
    "topology_at",
    "topology_stream",
]
