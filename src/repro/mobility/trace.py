"""Mobility traces: positions over time and per-window topologies."""

from dataclasses import dataclass

import numpy as np

from repro.graph.generators import Topology
from repro.graph.geometry import unit_disk_graph
from repro.util.errors import ConfigurationError


def topology_at(positions, radius, ids=None):
    """Unit-disk :class:`~repro.graph.generators.Topology` for a position
    snapshot.  ``ids`` keeps node identifiers stable across windows."""
    positions = np.asarray(positions, dtype=float)
    node_ids = list(range(len(positions))) if ids is None else list(ids)
    graph, positions_by_id = unit_disk_graph(positions, radius,
                                             node_ids=node_ids)
    return Topology(graph, positions=positions_by_id, radius=radius)


@dataclass(frozen=True)
class TraceFrame:
    """One recorded snapshot of a mobility trace."""

    time: float
    positions: np.ndarray


class Trace:
    """A recorded mobility trace, replayable into topology snapshots."""

    def __init__(self, frames):
        self.frames = list(frames)
        if not self.frames:
            raise ConfigurationError("a trace needs at least one frame")
        times = [frame.time for frame in self.frames]
        if times != sorted(times):
            raise ConfigurationError("trace frames must be time-ordered")

    def __len__(self):
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)

    def topologies(self, radius):
        """Yield ``(time, Topology)`` per frame."""
        for frame in self.frames:
            yield frame.time, topology_at(frame.positions, radius)


def record_trace(model, duration, window):
    """Advance ``model`` and record a frame every ``window`` seconds.

    The frame at t=0 (the initial deployment) is included; ``duration`` is
    covered inclusively when it is a multiple of ``window``.
    """
    if duration < 0 or window <= 0:
        raise ConfigurationError(
            f"need duration >= 0 and window > 0, got {duration}, {window}")
    frames = [TraceFrame(time=0.0, positions=model.positions.copy())]
    steps = int(round(duration / window))
    for i in range(1, steps + 1):
        model.advance(window)
        frames.append(TraceFrame(time=i * window,
                                 positions=model.positions.copy()))
    return Trace(frames)
