"""Mobility traces: positions over time and per-window topologies.

Two replay paths exist.  :func:`topology_at` rebuilds a snapshot from
scratch per window (the reference oracle); :func:`topology_stream`
maintains one :class:`~repro.graph.dynamic.DynamicTopology` across the
whole sequence, so each window costs only its edge delta.  Both produce
identical topologies window for window.
"""

from dataclasses import dataclass

import numpy as np

from repro.graph.dynamic import DynamicTopology, WindowUpdate
from repro.graph.generators import Topology
from repro.graph.geometry import unit_disk_graph
from repro.util.errors import ConfigurationError


def topology_at(positions, radius, ids=None):
    """Unit-disk :class:`~repro.graph.generators.Topology` for a position
    snapshot.  ``ids`` keeps node identifiers stable across windows."""
    positions = np.asarray(positions, dtype=float)
    node_ids = list(range(len(positions))) if ids is None else list(ids)
    graph, positions_by_id = unit_disk_graph(positions, radius,
                                             node_ids=node_ids)
    return Topology(graph, positions=positions_by_id, radius=radius)


def topology_stream(position_snapshots, radius, ids=None):
    """Yield one Topology per ``(n, 2)`` position snapshot, delta-based.

    Equivalent to calling :func:`topology_at` per snapshot, but the
    unit-disk structure is maintained incrementally: every yielded
    Topology wraps the *same* live graph, mutated by exact edge deltas
    between snapshots.  Consume each topology before advancing the
    generator (as the experiment loops do) -- metrics read later see the
    latest window, exactly like a real deployment's current view.
    """
    for update in window_stream(position_snapshots, radius, ids=ids):
        yield update.topology


def window_stream(position_snapshots, radius, ids=None,
                  track_densities=True):
    """Yield one :class:`~repro.graph.dynamic.WindowUpdate` per snapshot.

    The engine-facing variant of :func:`topology_stream`: the first
    update carries the freshly built topology with ``delta=None`` (an
    engine re-seeds on it), every later update the exact edge delta from
    the previous window.  ``track_densities=False`` skips the triangle
    counter and the exact density map for consumers that never read
    densities (the baseline engines); updates then carry
    ``densities=None`` / ``density_changed=None``.
    """
    dynamic = None
    for positions in position_snapshots:
        if dynamic is None:
            dynamic = DynamicTopology(positions, radius, ids=ids,
                                      track_densities=track_densities)
            yield WindowUpdate(topology=dynamic.topology, delta=None,
                               density_changed=None,
                               densities=dynamic.densities)
        else:
            yield dynamic.move(positions)


@dataclass(frozen=True)
class TraceFrame:
    """One recorded snapshot of a mobility trace."""

    time: float
    positions: np.ndarray


class Trace:
    """A recorded mobility trace, replayable into topology snapshots."""

    def __init__(self, frames):
        self.frames = list(frames)
        if not self.frames:
            raise ConfigurationError("a trace needs at least one frame")
        times = [frame.time for frame in self.frames]
        if times != sorted(times):
            raise ConfigurationError("trace frames must be time-ordered")

    def __len__(self):
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)

    def topologies(self, radius, dynamics="rebuild"):
        """Yield ``(time, Topology)`` per frame.

        ``dynamics="delta"`` replays through :func:`topology_stream`
        (same topologies, maintained incrementally; the yielded objects
        share one live graph) -- the right choice for window-by-window
        consumers.  The default rebuilds independent snapshots.
        """
        if dynamics == "rebuild":
            for frame in self.frames:
                yield frame.time, topology_at(frame.positions, radius)
        elif dynamics == "delta":
            snapshots = (frame.positions for frame in self.frames)
            for frame, topology in zip(self.frames,
                                       topology_stream(snapshots, radius)):
                yield frame.time, topology
        else:
            raise ConfigurationError(
                f"unknown dynamics {dynamics!r}; expected 'delta' or "
                "'rebuild'")


def record_trace(model, duration, window):
    """Advance ``model`` and record a frame every ``window`` seconds.

    The frame at t=0 (the initial deployment) is included; ``duration`` is
    covered inclusively when it is a multiple of ``window``.
    """
    if duration < 0 or window <= 0:
        raise ConfigurationError(
            f"need duration >= 0 and window > 0, got {duration}, {window}")
    frames = [TraceFrame(time=0.0, positions=model.positions.copy())]
    steps = int(round(duration / window))
    for i in range(1, steps + 1):
        model.advance(window)
        frames.append(TraceFrame(time=i * window,
                                 positions=model.positions.copy()))
    return Trace(frames)
