"""Node churn: the birth-death workload of self-organized networks.

The paper's premise: *"every mobile can move everywhere, and thus can
disappear or appear in the network at any time."*  Mobility covers the
moving part; this process covers appearing and disappearing.  Each epoch,
every present node departs with probability ``leave_probability`` and a
``Poisson(arrival_rate)`` number of fresh nodes appears at uniform
positions, with never-reused identifiers.
"""

import numpy as np

from repro.graph.dynamic import DynamicTopology
from repro.graph.generators import Topology
from repro.graph.geometry import unit_disk_graph
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


class ChurnProcess:
    """Evolves a population of (node id, position) pairs epoch by epoch.

    :meth:`topology` rebuilds the unit-disk snapshot from scratch (the
    reference oracle); :meth:`dynamics` + :meth:`epoch_update` maintain
    one :class:`~repro.graph.dynamic.DynamicTopology` across epochs.
    Node churn re-joins the geometry grid (positions of the whole
    population define the cells), but the graph, triangle, and density
    maintenance downstream of the resulting edge delta stays
    proportional to the edges the departures and arrivals touched.
    Identifiers are monotonically increasing and never reused, so the
    maintained graph's insertion order stays the sorted order the scratch
    path produces -- the property the simulators' determinism rides on.
    """

    def __init__(self, initial_count, radius, leave_probability,
                 arrival_rate, side=1.0, rng=None):
        if initial_count < 1:
            raise ConfigurationError(
                f"initial_count must be >= 1, got {initial_count}")
        if not 0.0 <= leave_probability <= 1.0:
            raise ConfigurationError(
                f"leave_probability must be in [0, 1], got {leave_probability}")
        if arrival_rate < 0:
            raise ConfigurationError(
                f"arrival_rate must be non-negative, got {arrival_rate}")
        if radius is None:
            raise ConfigurationError(
                "churn maintenance needs a transmission radius; got "
                "radius=None (combinatorial topologies have no geometry "
                "to place arrivals in)")
        self.radius = float(radius)
        self.leave_probability = float(leave_probability)
        self.arrival_rate = float(arrival_rate)
        self.side = float(side)
        self.rng = as_rng(rng)
        self._dynamic = None
        self._in_epoch_update = False
        self._next_id = initial_count
        self.population = {
            node: tuple(self.rng.uniform(0.0, self.side, size=2))
            for node in range(initial_count)
        }

    def epoch(self):
        """Apply one epoch of departures and arrivals.

        Returns ``(departed ids, arrived ids)``.  At least one node always
        remains (an empty network has no protocol to observe).  Once a
        dynamic view exists, epochs must go through :meth:`epoch_update`
        so the maintained topology sees every change.
        """
        if self._dynamic is not None and not self._in_epoch_update:
            raise ConfigurationError(
                "a dynamic topology is attached; use epoch_update() so it "
                "stays in sync with the population")
        departed = [node for node in self.population
                    if self.rng.random() < self.leave_probability]
        if len(departed) == len(self.population):
            departed = departed[:-1]
        for node in departed:
            del self.population[node]
        arrivals = int(self.rng.poisson(self.arrival_rate))
        arrived = []
        for _ in range(arrivals):
            node = self._next_id
            self._next_id += 1
            self.population[node] = tuple(
                self.rng.uniform(0.0, self.side, size=2))
            arrived.append(node)
        return departed, arrived

    def topology(self):
        """The unit-disk topology over the current population (scratch)."""
        node_ids = sorted(self.population)
        positions = np.array([self.population[node] for node in node_ids])
        graph, positions_by_id = unit_disk_graph(positions, self.radius,
                                                 node_ids=node_ids)
        return Topology(graph, positions=positions_by_id, radius=self.radius)

    def dynamics(self):
        """The delta-maintained topology over the current population.

        Built once from the population at first call, then kept in sync
        by :meth:`epoch_update` (which must be used *instead of* a bare
        :meth:`epoch` once the dynamic view exists, or the two drift
        apart).  Bit-identical to :meth:`topology` at every epoch.  The
        maintained view carries the triangle/density analytics along so
        density-driven consumers can read them at any epoch; at churn
        population sizes that bookkeeping is noise next to the protocol
        simulation it feeds.
        """
        if self._dynamic is None:
            node_ids = sorted(self.population)
            positions = np.array([self.population[node]
                                  for node in node_ids]).reshape(-1, 2)
            self._dynamic = DynamicTopology(positions, self.radius,
                                            ids=node_ids)
        return self._dynamic

    def epoch_update(self):
        """One epoch applied to the dynamic topology.

        Runs :meth:`epoch` and feeds the departures/arrivals through
        :meth:`DynamicTopology.apply_churn`; returns the resulting
        :class:`~repro.graph.dynamic.WindowUpdate`.
        """
        dynamic = self.dynamics()
        self._in_epoch_update = True
        try:
            departed, arrived = self.epoch()
        finally:
            self._in_epoch_update = False
        return dynamic.apply_churn(
            departed, [(node, self.population[node]) for node in arrived])

    def __len__(self):
        return len(self.population)
