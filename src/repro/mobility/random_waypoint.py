"""Random-waypoint mobility.

Each node picks a destination uniformly in the square and a speed
uniformly from the speed range, travels straight to it, optionally pauses,
then repeats.  Provided as the second classical model so the mobility
experiment can be cross-checked under a different motion law (the paper
does not pin its model down; EXPERIMENTS.md reports both).
"""

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.errors import ConfigurationError


class RandomWaypointModel(MobilityModel):
    """Uniform waypoints, uniform per-leg speeds, optional pause times."""

    def __init__(self, count, speed_range, side=1.0, pause=0.0, rng=None):
        super().__init__(count, side=side, rng=rng)
        low, high = speed_range
        if low < 0 or high < low:
            raise ConfigurationError(
                f"speed_range must satisfy 0 <= min <= max, got {speed_range}")
        if pause < 0:
            raise ConfigurationError(f"pause must be non-negative, got {pause}")
        self.speed_range = (float(low), float(high))
        self.pause = float(pause)
        self._targets = self.rng.uniform(0.0, self.side, size=(self.count, 2))
        self._speeds = self.rng.uniform(low, high, size=self.count)
        self._pausing = np.zeros(self.count)

    def advance(self, dt):
        if dt < 0:
            raise ConfigurationError(f"dt must be non-negative, got {dt}")
        remaining = np.full(self.count, float(dt))
        # Nodes consume pause time first, then move leg by leg.
        for _ in range(10_000):
            active = remaining > 1e-12
            if not np.any(active):
                return self.positions
            self._consume_pause(remaining)
            self._move_legs(remaining)
        raise AssertionError("advance did not terminate; dt or speeds corrupt")

    def _consume_pause(self, remaining):
        pausing = (self._pausing > 0) & (remaining > 0)
        if np.any(pausing):
            used = np.minimum(self._pausing[pausing], remaining[pausing])
            self._pausing[pausing] -= used
            remaining[pausing] -= used

    def _move_legs(self, remaining):
        moving = (self._pausing <= 0) & (remaining > 1e-12)
        if not np.any(moving):
            return
        deltas = self._targets[moving] - self.positions[moving]
        distances = np.hypot(deltas[:, 0], deltas[:, 1])
        speeds = self._speeds[moving]
        with np.errstate(divide="ignore", invalid="ignore"):
            time_to_target = np.where(speeds > 0, distances / speeds, np.inf)
        used = np.minimum(time_to_target, remaining[moving])
        frac = np.where(distances > 0, (used * speeds) / np.maximum(distances, 1e-30), 1.0)
        frac = np.minimum(frac, 1.0)
        self.positions[moving] += deltas * frac[:, None]
        arrived_local = used >= time_to_target - 1e-12
        remaining_indices = np.flatnonzero(moving)
        remaining[remaining_indices] -= used
        arrived = remaining_indices[arrived_local]
        # Zero-speed nodes never arrive; their remaining time is consumed.
        stuck = remaining_indices[np.isinf(time_to_target)]
        remaining[stuck] = 0.0
        if arrived.size:
            self._targets[arrived] = self.rng.uniform(
                0.0, self.side, size=(arrived.size, 2))
            low, high = self.speed_range
            self._speeds[arrived] = self.rng.uniform(low, high,
                                                     size=arrived.size)
            self._pausing[arrived] = self.pause
