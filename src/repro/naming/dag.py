"""DAG analysis: orientation by a key, height, and the Theorem 1 bound.

Orienting every edge from the greater endpoint to the smaller (under any
locally injective key) yields a DAG; its *height* (longest directed path,
counted in edges) bounds the stabilization time of the downstream
clustering (Lemma 2: information flows from the roots of ``DAG≺`` down,
one level per expected-constant time unit).

Theorem 1: renaming from a space ``γ`` self-stabilizes to a DAG of height
at most ``|γ| + 1``.  Since a directed path strictly decreases the name at
every hop, a path has at most ``|γ|`` nodes, i.e. ``|γ| - 1`` edges; the
paper's ``|γ| + 1`` is the (coarser) node-count bound plus slack, so
checking ``height_in_edges <= |γ| + 1`` is always safe.
"""

from repro.util.errors import TopologyError


def orient_by_key(graph, keys):
    """Orient each edge from the greater key to the smaller.

    Returns ``dict[node, set[node]]`` of out-edges (successors have strictly
    smaller keys).  Raises :class:`TopologyError` if two neighbors share a
    key, since the orientation is then undefined -- callers should first
    check local uniqueness.
    """
    successors = {node: set() for node in graph}
    for u, v in graph.edges:
        if keys[u] == keys[v]:
            raise TopologyError(
                f"neighbors {u!r} and {v!r} share key {keys[u]!r}; "
                "edge orientation undefined")
        if keys[u] > keys[v]:
            successors[u].add(v)
        else:
            successors[v].add(u)
    return successors


def dag_height(graph, keys):
    """Longest directed path (in edges) of the key-oriented DAG.

    Computed by dynamic programming over nodes in decreasing key order,
    which is a topological order of the orientation.  An empty graph has
    height 0.
    """
    successors = orient_by_key(graph, keys)
    depth = {}
    for node in sorted(graph.nodes, key=keys.get):
        # Successors have smaller keys, hence are already computed.
        depth[node] = max((depth[s] + 1 for s in successors[node]), default=0)
    return max(depth.values(), default=0)


def roots(graph, keys):
    """Nodes with no incoming oriented edge (local maxima of the key)."""
    successors = orient_by_key(graph, keys)
    has_incoming = {node: False for node in graph}
    for node, outs in successors.items():
        for succ in outs:
            has_incoming[succ] = True
    return {node for node, flag in has_incoming.items() if not flag}


def theorem1_height_bound(namespace_size):
    """The Theorem 1 bound on the height of the renaming DAG."""
    return namespace_size + 1


def clustering_dag_height(graph, keys):
    """Height of ``DAG≺`` for a clustering key (Lemma 2's quantity).

    Identical computation to :func:`dag_height`; exposed under its own name
    because benches report it as the predictor of stabilization steps.
    """
    return dag_height(graph, keys)
