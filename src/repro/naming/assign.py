"""Convenience: run the Section 5 renaming over a whole topology."""

from repro.naming.namespace import NameSpace, recommended_size
from repro.naming.renaming import PoliteRenaming
from repro.util.rng import as_rng


def assign_dag_ids(topology, rng=None, initial_ids=None, namespace=None):
    """DAG names for every node of ``topology`` via the polite renaming.

    Returns ``(dag_ids, rounds)``.  ``initial_ids`` makes the run an
    incremental repair (mobility keeps names across windows and only
    conflicting nodes re-draw); ``namespace`` defaults to the recommended
    ``δ²`` space for the topology's maximum degree.
    """
    if namespace is None:
        namespace = NameSpace(recommended_size(topology.graph.max_degree()))
    renamer = PoliteRenaming(namespace=namespace)
    result = renamer.run(topology.graph, rng=as_rng(rng),
                         initial_ids=initial_ids, tie_ids=topology.ids)
    return result.ids, result.rounds
