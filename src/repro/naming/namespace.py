"""Constant name spaces for the DAG renaming of Section 4.1.

Names ("colors", DAG identifiers) are drawn from a constant space ``γ``.
The paper uses ``|γ| = δ**6`` in the Herman-Tixeuil scheme it builds on but
argues ``δ**2`` "or even δ" suffices here; Section 5's simulations draw DAG
identifiers between 0 and ``δ**2``.  Local uniqueness requires
``|γ| > δ``, otherwise a node surrounded by ``δ`` distinct names may find
no free name to draw.
"""

from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


class NameSpace:
    """The finite set ``γ = {0, 1, ..., size - 1}`` of DAG names."""

    def __init__(self, size):
        if size < 1:
            raise ConfigurationError(f"name space size must be >= 1, got {size}")
        self.size = int(size)

    def __contains__(self, name):
        return isinstance(name, int) and 0 <= name < self.size

    def __len__(self):
        return self.size

    def sample(self, rng, exclude=()):
        """``random(γ \\ exclude)``: uniform over the non-excluded names.

        Raises :class:`ConfigurationError` when every name is excluded,
        which means the name space is too small for the local degree.
        """
        rng = as_rng(rng)
        forbidden = {name for name in exclude if name in self}
        free = self.size - len(forbidden)
        if free <= 0:
            raise ConfigurationError(
                f"name space of size {self.size} exhausted by "
                f"{len(forbidden)} excluded names; increase |γ| above δ")
        index = int(rng.integers(free))
        count = -1
        for name in range(self.size):
            if name not in forbidden:
                count += 1
                if count == index:
                    return name
        raise AssertionError("unreachable: free name accounting is wrong")

    def __repr__(self):
        return f"NameSpace(size={self.size})"


def recommended_size(delta, exponent=2):
    """``|γ| = δ**exponent`` (Section 4.1; Section 5 uses exponent 2).

    Always returns at least ``delta + 2`` so a name is available even in
    the worst local configuration, and at least 2 overall.
    """
    if delta < 0:
        raise ConfigurationError(f"delta must be non-negative, got {delta}")
    if exponent < 1:
        raise ConfigurationError(f"exponent must be >= 1, got {exponent}")
    return max(delta ** exponent, delta + 2, 2)
