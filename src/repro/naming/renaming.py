"""Round-based DAG renaming: algorithm ``N1`` and the Section 5 variant.

Algorithm ``N1`` (Section 4.1)::

    newId(Id_p) = Id_p                      if Id_p not in Cids_p
                  random(γ \\ Cids_p)        otherwise

    N1:  true  ->  Id_p := newId(Id_p)

where ``Cids_p`` is the cache of 1-neighbor names.  Every node re-evaluates
each round; conflicted nodes re-draw simultaneously (and may re-collide,
which the randomization resolves in expected constant time -- Theorem 1).

Section 5's simulations use a *polite* variant: when two neighbors collide,
only the one with the smaller "normal" identifier re-draws.  Both variants
are implemented here as synchronous round simulators over a global graph
view; the message-passing version lives in ``repro.protocols.naming`` and
reuses :func:`new_id`.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.naming.namespace import NameSpace, recommended_size
from repro.util.errors import ConfigurationError, ConvergenceError
from repro.util.rng import as_rng

DEFAULT_MAX_ROUNDS = 1000


def new_id(current, neighbor_ids, namespace, rng):
    """The ``newId`` function of algorithm N1 for one node."""
    if current is not None and current in namespace and current not in set(neighbor_ids):
        return current
    return namespace.sample(rng, exclude=neighbor_ids)


def conflicting_edges(graph, ids):
    """Edges whose endpoints currently share a DAG name."""
    return [(u, v) for u, v in graph.edges if ids[u] == ids[v]]


def is_locally_unique(graph, ids):
    """True iff no two neighbors share a DAG name (the legitimacy predicate
    of the naming layer).

    Checked on the graph's CSR snapshot when available: one vectorized
    name comparison over the edge arrays instead of the per-edge Python
    scan of :func:`conflicting_edges` -- the per-window mobility repair
    evaluates this on every (re)named topology, so it sits on the hot
    path.  Non-integer names (or graphs without a snapshot) fall back to
    the reference scan, which always remains the oracle.
    """
    to_csr = getattr(graph, "to_csr", None)
    if to_csr is not None:
        csr = to_csr()
        # np.array (not fromiter) so nothing is silently cast: floats,
        # mixed types, and over-int64 names all land on a non-integer
        # dtype and take the reference scan instead.
        names = np.array([ids[node] for node in csr.ids])
        if names.dtype.kind in "iu":
            eu, ev = csr.edge_arrays()
            return not bool((names[eu] == names[ev]).any())
    return not conflicting_edges(graph, ids)


@dataclass
class RenamingResult:
    """Outcome of a renaming run.

    ``rounds`` counts broadcast rounds including the initial draw, i.e. the
    "number of steps needed to build the DAG" reported in Table 3.
    ``redraw_rounds`` counts only rounds in which some node re-drew.
    """

    ids: dict
    rounds: int
    redraw_rounds: int
    stable: bool
    history: list = field(default_factory=list)


class _RenamingBase:
    """Common driver: initial draw, then re-draw rounds until stable."""

    def __init__(self, namespace=None, max_rounds=DEFAULT_MAX_ROUNDS,
                 keep_history=False):
        self.namespace = namespace
        self.max_rounds = max_rounds
        self.keep_history = keep_history

    def _namespace_for(self, graph):
        if self.namespace is not None:
            return self.namespace
        return NameSpace(recommended_size(graph.max_degree()))

    def run(self, graph, rng=None, initial_ids=None, tie_ids=None):
        """Run to local uniqueness; raise ConvergenceError past the budget.

        ``initial_ids`` seeds the state (used by stabilization tests to
        start from corrupted configurations); when omitted every node draws
        uniformly, which counts as the first round.  ``tie_ids`` supplies
        normal identifiers for the polite variant (defaults to the nodes).
        """
        rng = as_rng(rng)
        namespace = self._namespace_for(graph)
        if tie_ids is None:
            tie_ids = {node: node for node in graph}
        if set(tie_ids) != set(graph.nodes):
            raise ConfigurationError("tie_ids must cover exactly the graph's nodes")

        if initial_ids is None:
            ids = {node: namespace.sample(rng) for node in graph}
        else:
            ids = dict(initial_ids)
            if set(ids) != set(graph.nodes):
                raise ConfigurationError(
                    "initial_ids must cover exactly the graph's nodes")
        rounds = 1
        redraw_rounds = 0
        history = [dict(ids)] if self.keep_history else []

        while not is_locally_unique(graph, ids):
            if rounds >= self.max_rounds:
                raise ConvergenceError(
                    f"renaming did not stabilize within {self.max_rounds} "
                    "rounds", iterations=rounds)
            ids = self._redraw_round(graph, ids, namespace, tie_ids, rng)
            rounds += 1
            redraw_rounds += 1
            if self.keep_history:
                history.append(dict(ids))
        return RenamingResult(ids=ids, rounds=rounds,
                              redraw_rounds=redraw_rounds, stable=True,
                              history=history)

    def _redraw_round(self, graph, ids, namespace, tie_ids, rng):
        raise NotImplementedError


class RandomizedRenaming(_RenamingBase):
    """Algorithm N1: every conflicted node re-draws simultaneously.

    Matches the guarded command ``true -> Id_p := newId(Id_p)`` evaluated
    synchronously: a node keeps its name iff no cached neighbor name equals
    it, else draws uniformly outside the cached names.
    """

    def _redraw_round(self, graph, ids, namespace, tie_ids, rng):
        updated = {}
        for node in graph:
            neighbor_ids = [ids[q] for q in graph.neighbors(node)]
            updated[node] = new_id(ids[node], neighbor_ids, namespace, rng)
        return updated


class PoliteRenaming(_RenamingBase):
    """Section 5 variant: on a collision, only the smaller normal identifier
    re-draws ("the node with the smallest normal Id chooses another DAG Id
    and so on until every node has a different DAG Id than its neighbors")."""

    def _redraw_round(self, graph, ids, namespace, tie_ids, rng):
        updated = {}
        for node in graph:
            colliders = [q for q in graph.neighbors(node) if ids[q] == ids[node]]
            must_redraw = any(tie_ids[node] < tie_ids[q] for q in colliders)
            if must_redraw:
                neighbor_ids = [ids[q] for q in graph.neighbors(node)]
                updated[node] = namespace.sample(rng, exclude=neighbor_ids)
            else:
                updated[node] = ids[node]
        return updated
