"""Constant-height DAG construction (Section 4.1) and DAG analysis."""

from repro.naming.assign import assign_dag_ids
from repro.naming.dag import (
    clustering_dag_height,
    dag_height,
    orient_by_key,
    roots,
    theorem1_height_bound,
)
from repro.naming.namespace import NameSpace, recommended_size
from repro.naming.renaming import (
    PoliteRenaming,
    RandomizedRenaming,
    RenamingResult,
    conflicting_edges,
    is_locally_unique,
    new_id,
)

__all__ = [
    "NameSpace",
    "assign_dag_ids",
    "PoliteRenaming",
    "RandomizedRenaming",
    "RenamingResult",
    "clustering_dag_height",
    "conflicting_edges",
    "dag_height",
    "is_locally_unique",
    "new_id",
    "orient_by_key",
    "recommended_size",
    "roots",
    "theorem1_height_bound",
]
