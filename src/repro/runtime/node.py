"""Per-node runtime state: shared variables and neighbor caches.

Following the shared-variable scheme of [11] that Section 4 builds on:
each node owns a set of *shared variables* whose values it broadcasts every
step, and keeps *cache copies* (the ``)Idq`` notation of the paper) of its
neighbors' shared variables, learned from received frames.

The cache is the node's only source of knowledge about the network: the
runtime never lets a node read the true graph.  Entries carry the step at
which they were last refreshed and expire after ``cache_timeout`` steps,
which is how departed neighbors (mobility, crash) fade out and how stale
corrupted caches heal -- a prerequisite for self-stabilization.
"""

from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError

DEFAULT_CACHE_TIMEOUT = 4


@dataclass
class CacheEntry:
    """Cached shared variables of one neighbor."""

    payload: dict
    refreshed_at: int

    def get(self, name, default=None):
        return self.payload.get(name, default)


@dataclass
class NodeRuntime:
    """The complete local state of one node.

    Attributes
    ----------
    node_id:
        The node's label in the topology (also the frame sender field).
    tie_id:
        The node's globally unique integer "normal" identifier, used as the
        final tie-break by the clustering order.  Defaults to ``node_id``.
    shared:
        The node's own shared variables (what it broadcasts).
    caches:
        ``dict[neighbor_id, CacheEntry]`` -- cached copies of neighbors'
        shared variables.
    """

    node_id: object
    tie_id: object = None
    cache_timeout: int = DEFAULT_CACHE_TIMEOUT
    shared: dict = field(default_factory=dict)
    caches: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.cache_timeout < 1:
            raise ConfigurationError(
                f"cache_timeout must be >= 1, got {self.cache_timeout}")
        if self.tie_id is None:
            self.tie_id = self.node_id

    # ------------------------------------------------------------------
    # frame handling
    # ------------------------------------------------------------------

    def ingest(self, frame, now):
        """Record a received frame as the fresh cache copy of its sender."""
        if frame.sender == self.node_id:
            return  # a node never caches itself
        self.caches[frame.sender] = CacheEntry(payload=dict(frame.payload),
                                               refreshed_at=now)

    def expire_caches(self, now):
        """Drop cache entries not refreshed within ``cache_timeout`` steps."""
        stale = [neighbor for neighbor, entry in self.caches.items()
                 if now - entry.refreshed_at >= self.cache_timeout]
        for neighbor in stale:
            del self.caches[neighbor]

    # ------------------------------------------------------------------
    # local views (everything a protocol may consult)
    # ------------------------------------------------------------------

    def known_neighbors(self):
        """The node's current belief about ``Np``: cached senders."""
        return set(self.caches)

    def cached(self, neighbor, name, default=None):
        """The cache copy ``)name`` of ``neighbor``'s shared variable."""
        entry = self.caches.get(neighbor)
        if entry is None:
            return default
        return entry.get(name, default)

    def cached_all(self, name, default=None):
        """``{q: )name_q}`` over all cached neighbors."""
        return {q: entry.get(name, default) for q, entry in self.caches.items()}

    def two_hop_view(self, neighbors_field="neighbors"):
        """The believed 2-neighborhood: union of reported neighbor sets.

        Excludes the node itself; includes 1-hop neighbors.
        """
        view = self.known_neighbors()
        for entry in self.caches.values():
            reported = entry.get(neighbors_field)
            if reported:
                view |= set(reported)
        view.discard(self.node_id)
        return view
