"""Radio channel models.

Section 4's only assumption about the MAC layer is: *there exists a
constant τ > 0 such that the probability of a frame transmission without
collision is at least τ*, memoryless across transmissions.  Three models
realize (or idealize) that assumption:

* :class:`IdealChannel` -- every frame reaches every neighbor (``τ = 1``);
  this is the regime of Section 5's step counting, where one step is long
  enough for every node to deliver one frame to all neighbors.
* :class:`BernoulliLossChannel` -- each (frame, receiver) pair is lost
  independently with a fixed probability; the simplest memoryless model.
* :class:`SlottedContentionChannel` -- each sender picks one of ``k``
  slots uniformly at random; a receiver hears a neighbor's frame iff no
  *other* of its neighbors picked the same slot and the receiver itself
  was not transmitting in it (half-duplex).  This derives the τ bound
  instead of postulating it: see :meth:`tau_lower_bound`.
"""

from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


class Channel:
    """Interface: map per-sender frames to per-receiver inboxes."""

    def deliver(self, frames, graph, rng):
        """``frames`` maps sender -> Frame; returns receiver -> [Frame].

        Receivers are exactly the senders' graph neighbors, filtered by the
        model's loss process.  Every node present in the graph appears in
        the result (possibly with an empty inbox).
        """
        raise NotImplementedError


class IdealChannel(Channel):
    """Lossless broadcast: τ = 1.

    The per-step delivery scan rides the graph's cached CSR snapshot when
    the senders are exactly the graph's nodes in insertion order (the
    shape every :meth:`StepSimulator.step` produces): a receiver's inbox
    is its CSR row read off the shared ``indices`` array, which lists
    neighbor rows ascending -- the same sender order the dict-backend
    scan appends in.  Partial sender sets and non-``Graph`` topologies
    fall back to the original scan.
    """

    def __init__(self):
        self._scan_cache = None

    def __getstate__(self):
        # The cache holds a frozen CSR snapshot; drop it so pickled
        # channels (experiment task payloads) stay lean and rebuildable.
        return {"_scan_cache": None}

    def deliver(self, frames, graph, rng):
        to_csr = getattr(graph, "to_csr", None)
        if to_csr is not None:
            csr = to_csr()
            if tuple(frames) == csr.ids:
                cached = self._scan_cache
                if cached is None or cached[0] is not csr:
                    # Memoized per snapshot: steps over an unchanged graph
                    # (the common regime between mobility windows) reuse
                    # the flattened row lists.
                    cached = (csr, csr.ids, csr.indptr.tolist(),
                              csr.indices.tolist())
                    self._scan_cache = cached
                _csr, ids, bounds, neighbor_rows = cached
                frame_list = list(frames.values())
                return {ids[row]: [frame_list[j]
                                   for j in neighbor_rows[bounds[row]:
                                                          bounds[row + 1]]]
                        for row in range(len(ids))}
        inboxes = {node: [] for node in graph}
        for sender, frame in frames.items():
            for receiver in graph.neighbors(sender):
                inboxes[receiver].append(frame)
        return inboxes

    def __repr__(self):
        return "IdealChannel()"


class BernoulliLossChannel(Channel):
    """Independent per-(frame, receiver) loss with probability ``loss``."""

    def __init__(self, loss):
        if not 0.0 <= loss < 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1), got {loss}")
        self.loss = float(loss)

    @property
    def tau(self):
        """Per-transmission success probability lower bound."""
        return 1.0 - self.loss

    def deliver(self, frames, graph, rng):
        # Stays on the dict backend: each (frame, receiver) pair consumes
        # one RNG draw in neighbor-set iteration order, so reordering the
        # scan (e.g. onto sorted CSR rows) would reshuffle every lossy
        # trace.
        rng = as_rng(rng)
        inboxes = {node: [] for node in graph}
        for sender, frame in frames.items():
            for receiver in graph.neighbors(sender):
                if rng.random() >= self.loss:
                    inboxes[receiver].append(frame)
        return inboxes

    def __repr__(self):
        return f"BernoulliLossChannel(loss={self.loss})"


class SlottedContentionChannel(Channel):
    """Slotted random-access MAC with ``slots`` slots per step.

    Every transmitting node picks one slot uniformly.  Receiver ``r`` hears
    neighbor ``s`` iff no other neighbor of ``r`` chose ``s``'s slot and
    ``r`` itself did not transmit in that slot.
    """

    def __init__(self, slots):
        if slots < 2:
            raise ConfigurationError(
                f"need at least 2 slots for any successful contention, "
                f"got {slots}")
        self.slots = int(slots)

    def tau_lower_bound(self, delta):
        """A constant τ valid for any topology of maximum degree ``delta``.

        Receiver ``r`` has at most ``delta - 1`` neighbors other than the
        sender, each colliding with the sender's slot with probability
        ``1/slots``, and ``r`` itself occupies one slot.  Hence the frame
        is heard with probability at least
        ``((slots - 1) / slots) ** delta`` -- a positive constant, which is
        exactly the hypothesis of Section 4.
        """
        if delta < 0:
            raise ConfigurationError(f"delta must be non-negative, got {delta}")
        return ((self.slots - 1) / self.slots) ** delta

    def deliver(self, frames, graph, rng):
        rng = as_rng(rng)
        slot_of = {sender: int(rng.integers(self.slots)) for sender in frames}
        inboxes = {node: [] for node in graph}
        for receiver in graph.nodes:
            neighbors = graph.neighbors(receiver)
            transmitting = [s for s in neighbors if s in slot_of]
            slot_counts = {}
            for s in transmitting:
                slot_counts[slot_of[s]] = slot_counts.get(slot_of[s], 0) + 1
            own_slot = slot_of.get(receiver)
            for s in transmitting:
                slot = slot_of[s]
                if slot_counts[slot] == 1 and slot != own_slot:
                    inboxes[receiver].append(frames[s])
        return inboxes

    def __repr__(self):
        return f"SlottedContentionChannel(slots={self.slots})"
