"""Frames: the unit of local broadcast.

One step (``Δ(τ)``, Section 5) lets every node locally broadcast one frame
carrying the values of its shared variables (the shared-variable
propagation scheme of [11] that Section 4 assumes).  A frame is a sender
identifier plus a payload mapping shared-variable names to values.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Frame:
    """A single local broadcast.

    ``payload`` maps shared-variable names (e.g. ``"dag_id"``,
    ``"density"``, ``"head"``, ``"neighbors"``) to their transmitted values.
    Payloads are treated as immutable by convention; the simulator never
    mutates them after transmission.
    """

    sender: object
    payload: dict = field(default_factory=dict)

    def get(self, name, default=None):
        """Value of shared variable ``name`` as carried by this frame."""
        return self.payload.get(name, default)
