"""Synchronous radio runtime: frames, channels, node state, step engine."""

from repro.runtime.channel import (
    BernoulliLossChannel,
    Channel,
    IdealChannel,
    SlottedContentionChannel,
)
from repro.runtime.daemon import (
    CentralDaemon,
    Daemon,
    RandomSubsetDaemon,
    SynchronousDaemon,
)
from repro.runtime.frames import Frame
from repro.runtime.guarded import GuardedCommand, Program, always
from repro.runtime.node import DEFAULT_CACHE_TIMEOUT, CacheEntry, NodeRuntime
from repro.runtime.simulator import StepSimulator

__all__ = [
    "BernoulliLossChannel",
    "CacheEntry",
    "CentralDaemon",
    "Channel",
    "DEFAULT_CACHE_TIMEOUT",
    "Daemon",
    "Frame",
    "RandomSubsetDaemon",
    "SynchronousDaemon",
    "GuardedCommand",
    "IdealChannel",
    "NodeRuntime",
    "Program",
    "SlottedContentionChannel",
    "StepSimulator",
    "always",
]
