"""The synchronous step simulator.

Section 5 defines the time unit: *a step is a bounded time Δ(τ) during
which each node is able to locally broadcast one frame and receive all
packets sent by its 1-neighbors*.  One call to :meth:`StepSimulator.step`
is exactly one such Δ(τ):

1. every node assembles a frame from its shared variables
   (``protocol.payload``);
2. the channel delivers frames to graph neighbors (possibly with loss --
   with a lossy channel a "step" is a single transmission opportunity and
   convergence takes proportionally longer, as the τ analysis predicts);
3. every node ingests its inbox into its caches and expires stale entries;
4. every node executes its guarded-command program (round-robin, Section 4).

The simulator never lets protocol code read the true graph: all knowledge
flows through frames, which is what makes the self-stabilization
experiments meaningful.  The graph may be replaced between steps (mobility,
link failures); protocols adapt through cache expiry.
"""

from repro.metrics.overhead import TrafficStats
from repro.runtime.channel import IdealChannel
from repro.runtime.daemon import SynchronousDaemon
from repro.runtime.frames import Frame
from repro.runtime.node import DEFAULT_CACHE_TIMEOUT, NodeRuntime
from repro.util.errors import ConfigurationError, ConvergenceError
from repro.util.rng import as_rng


class StepSimulator:
    """Drive one protocol stack over a (possibly changing) topology."""

    def __init__(self, topology, protocol, channel=None, rng=None,
                 cache_timeout=DEFAULT_CACHE_TIMEOUT, daemon=None):
        self.topology = topology
        self.protocol = protocol
        self.channel = channel if channel is not None else IdealChannel()
        self.daemon = daemon if daemon is not None else SynchronousDaemon()
        self.rng = as_rng(rng)
        self.now = 0
        self.traffic = TrafficStats()
        self._cache_timeout = cache_timeout
        self._activation_order = None
        self.runtimes = {}
        for node in topology.graph:
            runtime = NodeRuntime(node_id=node, tie_id=topology.ids[node],
                                  cache_timeout=cache_timeout)
            protocol.initialize(runtime, self.rng)
            self.runtimes[node] = runtime
        self._program = protocol.program()

    # ------------------------------------------------------------------
    # topology access
    # ------------------------------------------------------------------

    @property
    def graph(self):
        return self.topology.graph

    def replace_topology(self, topology):
        """Swap in a new topology (mobility).  Node set must be unchanged;
        runtimes -- including caches, which will expire naturally -- are
        preserved, exactly as a real node's memory survives its movement."""
        if set(topology.graph.nodes) != set(self.runtimes):
            raise ConfigurationError(
                "replace_topology requires the same node set; use "
                "set_topology for churn")
        self.set_topology(topology)

    def set_topology(self, topology):
        """Swap in a new topology whose node set may differ (churn).

        Departed nodes vanish with their state (a powered-off radio);
        their former neighbors notice through cache expiry.  Arrivals boot
        with the protocol's legitimate initial state -- stabilization
        tests that want adversarial arrivals corrupt them afterwards.
        """
        new_nodes = set(topology.graph.nodes)
        old_nodes = set(self.runtimes)
        for node in old_nodes - new_nodes:
            del self.runtimes[node]
        self.topology = topology
        for node in new_nodes - old_nodes:
            runtime = NodeRuntime(node_id=node, tie_id=topology.ids[node],
                                  cache_timeout=self._cache_timeout)
            self.protocol.initialize(runtime, self.rng)
            self.runtimes[node] = runtime
        for node in new_nodes & old_nodes:
            self.runtimes[node].tie_id = topology.ids[node]
        # Membership or tie identifiers may have changed; the next step
        # recomputes the activation order.
        self._activation_order = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self):
        """Advance one Δ(τ) step; return ``{node: [fired command names]}``."""
        self.now += 1
        frames = {}
        for node in self.graph:
            runtime = self.runtimes[node]
            frames[node] = Frame(sender=node,
                                 payload=self.protocol.payload(runtime))
        inboxes = self.channel.deliver(frames, self.graph, self.rng)
        self.traffic.record_step(frames, inboxes)
        for node in self.graph:
            runtime = self.runtimes[node]
            for frame in inboxes.get(node, ()):
                runtime.ingest(frame, self.now)
            runtime.expire_caches(self.now)
        fired = {}
        activated = self.daemon.select(self.runtimes, self.rng)
        order = self._activation_order
        if order is None:
            # Node membership and tie identifiers change only through
            # set_topology / replace_topology (which invalidate this), so
            # the per-step re-sort collapses to one cached list.
            order = sorted(self.runtimes,
                           key=lambda n: self.runtimes[n].tie_id)
            self._activation_order = order
        for node in order:
            if node in activated:
                fired[node] = self._program.execute(self.runtimes[node],
                                                    self.rng)
            else:
                fired[node] = []
        return fired

    def run(self, steps):
        """Run a fixed number of steps."""
        if steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()
        return self.now

    def run_until(self, predicate, max_steps, settle=1):
        """Step until ``predicate(self)`` holds for ``settle`` consecutive
        steps; return the step count at which it first held.

        Raises :class:`ConvergenceError` if the budget is exhausted.  The
        ``settle`` window distinguishes transient truth from stabilization
        (closure is checked separately by the monitor).
        """
        if max_steps < 1:
            raise ConfigurationError(f"max_steps must be >= 1, got {max_steps}")
        first_true = None
        consecutive = 0
        for _ in range(max_steps):
            self.step()
            if predicate(self):
                consecutive += 1
                if first_true is None:
                    first_true = self.now
                if consecutive >= settle:
                    return first_true
            else:
                consecutive = 0
                first_true = None
        raise ConvergenceError(
            f"predicate not stable within {max_steps} steps",
            iterations=max_steps)

    # ------------------------------------------------------------------
    # inspection and fault injection
    # ------------------------------------------------------------------

    def shared_map(self, name):
        """``{node: shared[name]}`` over all nodes (None when unset)."""
        return {node: runtime.shared.get(name)
                for node, runtime in self.runtimes.items()}

    def runtime(self, node):
        """The :class:`NodeRuntime` of ``node``."""
        return self.runtimes[node]

    def corrupt(self, mutator, nodes=None):
        """Apply a transient fault: ``mutator(runtime, rng)`` on each node.

        ``nodes`` restricts the fault's scope (default: every node).  This
        models the arbitrary-initial-state premise of self-stabilization.
        """
        targets = self.runtimes if nodes is None else nodes
        for node in targets:
            mutator(self.runtimes[node], self.rng)
