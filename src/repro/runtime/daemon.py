"""Execution daemons: who gets to execute its program each step.

Self-stabilization results are stated relative to a *daemon* (scheduler
adversary).  The paper's Section 5 evaluation uses the synchronous model
(every node acts every step), but its Section 4 execution semantics --
infinite re-evaluation of guards, constant-time per activation -- only
requires weak fairness.  These daemons let the test suite check that
convergence survives asynchrony:

* :class:`SynchronousDaemon` -- every node, every step (the default);
* :class:`RandomSubsetDaemon` -- each node independently activated with
  probability ``p`` (the randomized distributed daemon);
* :class:`CentralDaemon` -- exactly one uniformly random node per step
  (the classical serial daemon, maximally asynchronous).

Frames are still broadcast by every node each step: the shared-variable
propagation of [11] is a timed discipline below the program layer, not a
program action.
"""

from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


class Daemon:
    """Interface: choose which nodes execute their programs this step."""

    def select(self, nodes, rng):
        """Subset of ``nodes`` (any iterable) activated this step."""
        raise NotImplementedError


class SynchronousDaemon(Daemon):
    """Every node acts every step."""

    def select(self, nodes, rng):
        return set(nodes)

    def __repr__(self):
        return "SynchronousDaemon()"


class RandomSubsetDaemon(Daemon):
    """Each node independently activated with probability ``p`` > 0."""

    def __init__(self, probability):
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError(
                f"activation probability must be in (0, 1], got {probability}")
        self.probability = float(probability)

    def select(self, nodes, rng):
        rng = as_rng(rng)
        return {node for node in nodes if rng.random() < self.probability}

    def __repr__(self):
        return f"RandomSubsetDaemon(p={self.probability})"


class CentralDaemon(Daemon):
    """Exactly one uniformly random node per step."""

    def select(self, nodes, rng):
        rng = as_rng(rng)
        nodes = list(nodes)
        if not nodes:
            return set()
        return {nodes[int(rng.integers(len(nodes)))]}

    def __repr__(self):
        return "CentralDaemon()"
