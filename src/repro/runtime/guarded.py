"""Guarded assignment statements (the ``G -> S`` notation of Section 4).

A program is a nondeterministic composition ``G1 -> S1 [] G2 -> S2 [] ...``
of guarded assignments over a node's local variables.  Execution semantics
(Section 4): the node infinitely re-evaluates its guards; within one
constant-time unit every statement with a true guard is executed (we use
the paper's suggested round-robin order, i.e. program order).

Guards and actions receive the :class:`~repro.runtime.node.NodeRuntime`
and an RNG; actions mutate ``runtime.shared`` only -- the runtime enforces
that a node cannot write another node's state.
"""

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class GuardedCommand:
    """One ``G -> S`` statement with a diagnostic name."""

    name: str
    guard: callable
    action: callable

    def fire(self, runtime, rng):
        """Evaluate the guard; execute the assignment if it holds.

        Returns True iff the action ran (used by traces and tests).
        """
        if self.guard(runtime, rng):
            self.action(runtime, rng)
            return True
        return False


def always(_runtime, _rng):
    """The constant guard ``true`` (used by N1, R1 and R2)."""
    return True


class Program:
    """An ordered composition of guarded commands for one protocol layer."""

    def __init__(self, commands):
        self.commands = list(commands)
        names = [c.name for c in self.commands]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate command names: {names}")

    def execute(self, runtime, rng):
        """Run one round-robin pass; return the names of fired commands."""
        fired = []
        for command in self.commands:
            if command.fire(runtime, rng):
                fired.append(command.name)
        return fired

    def __iter__(self):
        return iter(self.commands)

    def __len__(self):
        return len(self.commands)
