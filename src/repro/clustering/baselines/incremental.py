"""Incremental engines for the baseline clusterers.

The greedy 1-hop rule (lowest-ID, highest-degree) and max-min d-cluster
formation both admit exact incremental maintenance under edge deltas:

* **Greedy dominating** -- a node is a head iff no higher-priority
  neighbor is a head, a recursion on the total priority order.  A delta
  can only flip statuses along decreasing-priority chains starting at
  the touched nodes, so the engine repairs with a max-priority heap
  seeded from the delta endpoints (plus their neighbors for the degree
  metric, whose priorities move with the endpoint degrees): when a row
  pops, every strictly higher-priority status is already final, so its
  own status follows from one neighborhood scan.  Affiliation is then
  recomputed only for seeds, flipped rows, and flipped rows' neighbors.
* **Max-min** -- the ``2d`` flooding rounds are monotone local maps: a
  round value changes only where the neighborhood itself changed (a
  delta endpoint) or where a neighbor's previous-round value changed.
  The engine re-reduces exactly those rows per round (the growing d-hop
  dirty ball around the delta), re-selects heads only where a log entry
  moved, maintains the selected-by counts behind the membership
  normalization, and re-sweeps parents only inside clusters that gained
  a member, lost a member, or contain a delta endpoint.

Both engines fall back to the vectorized scratch pipeline of
:mod:`~repro.clustering.baselines.common` /
:mod:`~repro.clustering.baselines.maxmin` when the dirty region exceeds
``1 / SCRATCH_FALLBACK_FRACTION`` of the population -- at that size one
array pass over everything beats bookkeeping per dirty row.  Either way
every window's result is bit-identical to the scratch clusterer on the
same topology, which the property suite asserts window by window.
"""

import heapq

import numpy as np

from repro.clustering.baselines.common import affiliate, greedy_heads, scan_rank
from repro.clustering.baselines.maxmin import (
    cluster_parent_rows,
    flood_logs,
    rows_of_ids,
    select_head_ids,
)
from repro.clustering.engine import EngineBase, register_engine
from repro.clustering.result import Clustering
from repro.util.errors import ConfigurationError

#: Past ``n / SCRATCH_FALLBACK_FRACTION`` dirty rows the engines re-run
#: the scratch array pipeline instead of repairing row by row.
SCRATCH_FALLBACK_FRACTION = 8


def _closed_reduce_rows(indptr, indices, values, rows, ufunc):
    """``ufunc`` over the closed neighborhoods of ``rows`` only."""
    result = values[rows].copy()
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total:
        nonempty = counts > 0
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        take = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(indptr[rows], counts)
        )
        reduced = ufunc.reduceat(values[indices[take]], offsets[nonempty])
        result[nonempty] = ufunc(result[nonempty], reduced)
    return result


def _endpoint_rows(csr, delta):
    """Unique rows incident to the delta, as an index array."""
    touched = np.concatenate((delta.added.reshape(-1), delta.removed.reshape(-1)))
    index_of = csr.index_of
    rows = np.fromiter((index_of[int(x)] for x in touched), dtype=np.int64)
    return np.unique(rows)


def _checked_tie_column(csr, tie_ids):
    n = len(csr)
    tie = np.fromiter((tie_ids[node] for node in csr.ids), dtype=np.int64, count=n)
    if len(np.unique(tie)) != n:
        raise ConfigurationError("tie identifiers must be unique")
    return tie


class GreedyDominatingEngine(EngineBase):
    """Incremental greedy dominating clustering (lowest-ID / degree).

    One class serves both metrics: the rule is identical, only the
    priority key differs.  Priorities are encoded one int64 per row --
    the negated rank of the tie identifier for ``"lowest-id"`` (smaller
    identifier wins) and ``(degree << 32) - tie_rank`` for ``"degree"``
    -- so every comparison in the repair loop is one scalar compare and
    the scratch scan order is one argsort.
    """

    def __init__(self, metric):
        super().__init__()
        if metric not in ("lowest-id", "degree"):
            raise ConfigurationError(
                f"unknown greedy metric {metric!r}; expected 'lowest-id' or 'degree'"
            )
        self.metric = metric
        self._csr = None
        self._tie_rank = None
        self._prio = None
        self._heads = None
        self._parent = None

    # ------------------------------------------------------------------
    # seeding and the scratch fallback
    # ------------------------------------------------------------------

    def _seed(self, topology, densities):
        graph = topology.graph
        csr = graph.to_csr()
        self._csr = csr
        n = len(csr)
        tie = _checked_tie_column(csr, topology.ids)
        self._tie_rank = np.empty(n, dtype=np.int64)
        self._tie_rank[np.argsort(tie)] = np.arange(n, dtype=np.int64)
        self._prio = self._priorities(csr)
        self._rebuild(csr)
        return self._to_clustering(graph)

    def _priorities(self, csr):
        if self.metric == "degree":
            return (csr.degrees() << 32) - self._tie_rank
        return -self._tie_rank

    def _rebuild(self, csr):
        order = np.argsort(-self._prio, kind="stable")
        self._heads = greedy_heads(csr, order)
        self._parent = affiliate(csr, self._heads, scan_rank(order))

    # ------------------------------------------------------------------
    # the incremental window
    # ------------------------------------------------------------------

    def _apply(self, update):
        graph = update.topology.graph
        csr = graph.to_csr()
        self._csr = csr
        old_parent = self._parent.copy()
        seeds = self._seed_rows(csr, update.delta)
        if seeds.size * SCRATCH_FALLBACK_FRACTION > len(csr):
            self._prio = self._priorities(csr)
            self._rebuild(csr)
        else:
            changed = self._repair(csr, seeds)
            self._reaffiliate(csr, self._affiliation_scope(csr, seeds, changed))
        if np.array_equal(self._parent, old_parent):
            return self._clustering
        return self._to_clustering(graph)

    def _seed_rows(self, csr, delta):
        """Rows whose head status could flip: the delta endpoints, plus
        their neighbors for the degree metric (the endpoint degrees
        changed, so comparisons against every neighbor may flip).
        Refreshes the stored priorities of the endpoint rows."""
        endpoints = _endpoint_rows(csr, delta)
        if self.metric == "lowest-id":
            return endpoints
        degrees = csr.degrees()
        self._prio[endpoints] = (degrees[endpoints] << 32) - self._tie_rank[endpoints]
        mask = np.zeros(len(csr), dtype=bool)
        mask[endpoints] = True
        indptr = csr.indptr
        indices = csr.indices
        for row in endpoints.tolist():
            mask[indices[indptr[row] : indptr[row + 1]]] = True
        return np.flatnonzero(mask)

    def _repair(self, csr, seeds):
        """Heap-ordered status repair; returns the rows that flipped.

        Rows pop in decreasing priority, so when one pops every strictly
        higher-priority status is final and its own status follows from
        one neighborhood scan; a flip enqueues the lower-priority
        neighbors whose own rule consults it.
        """
        indptr = csr.indptr
        indices = csr.indices
        prio = self._prio
        heads = self._heads
        queued = np.zeros(len(csr), dtype=bool)
        queued[seeds] = True
        heap = [(-int(prio[row]), int(row)) for row in seeds.tolist()]
        heapq.heapify(heap)
        changed = []
        while heap:
            _key, row = heapq.heappop(heap)
            nbrs = indices[indptr[row] : indptr[row + 1]]
            dominated = bool((heads[nbrs] & (prio[nbrs] > prio[row])).any())
            if bool(heads[row]) == dominated:
                heads[row] = not dominated
                changed.append(row)
                for q in nbrs[prio[nbrs] < prio[row]].tolist():
                    if not queued[q]:
                        queued[q] = True
                        heapq.heappush(heap, (-int(prio[q]), q))
        return np.array(changed, dtype=np.int64)

    def _affiliation_scope(self, csr, seeds, changed):
        """Rows whose parent may change: seeds (their adjacency or a
        neighbor's priority moved), flipped rows, and flipped rows'
        neighbors (they gained or lost an adjacent head)."""
        dirty = np.zeros(len(csr), dtype=bool)
        dirty[seeds] = True
        if changed.size:
            dirty[changed] = True
            indptr = csr.indptr
            indices = csr.indices
            for row in changed.tolist():
                dirty[indices[indptr[row] : indptr[row + 1]]] = True
        return np.flatnonzero(dirty)

    def _reaffiliate(self, csr, rows):
        indptr = csr.indptr
        indices = csr.indices
        heads = self._heads
        prio = self._prio
        parent = self._parent
        for row in rows.tolist():
            if heads[row]:
                parent[row] = row
                continue
            nbrs = indices[indptr[row] : indptr[row + 1]]
            adjacent = nbrs[heads[nbrs]]
            # Every non-head is dominated by construction.
            parent[row] = adjacent[np.argmax(prio[adjacent])]

    def _to_clustering(self, graph):
        ids = self._csr.ids
        parents = {ids[i]: ids[p] for i, p in enumerate(self._parent.tolist())}
        return Clustering(graph, parents)


class MaxMinEngine(EngineBase):
    """Incremental max-min d-cluster engine (see module docstring)."""

    def __init__(self, d=2):
        super().__init__()
        if d < 1:
            raise ConfigurationError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self._csr = None
        self._tie = None
        self._max_log = None
        self._min_log = None
        self._head_id = None
        self._chosen = None
        self._counts = None
        self._labels = None
        self._parent = None

    def _seed(self, topology, densities):
        graph = topology.graph
        csr = graph.to_csr()
        self._csr = csr
        self._tie = _checked_tie_column(csr, topology.ids)
        self._recompute(csr)
        return self._to_clustering(graph)

    def _recompute(self, csr):
        n = len(csr)
        self._max_log, self._min_log = flood_logs(csr, self._tie, self.d)
        self._head_id = select_head_ids(self._tie, self._max_log, self._min_log)
        self._chosen = rows_of_ids(self._tie, self._head_id)
        self._counts = np.bincount(self._chosen, minlength=n)
        rows = np.arange(n, dtype=np.int64)
        self._labels = np.where(self._counts > 0, rows, self._chosen)
        self._parent = cluster_parent_rows(csr, self._tie, self._labels)

    def _apply(self, update):
        graph = update.topology.graph
        csr = graph.to_csr()
        self._csr = csr
        endpoint_mask = np.zeros(len(csr), dtype=bool)
        endpoint_mask[_endpoint_rows(csr, update.delta)] = True
        old_parent = self._parent
        log_dirty = self._repair_floods(csr, endpoint_mask)
        if log_dirty is None:
            self._recompute(csr)
        else:
            self._update_membership(csr, endpoint_mask, log_dirty)
        if np.array_equal(self._parent, old_parent):
            return self._clustering
        return self._to_clustering(graph)

    def _repair_floods(self, csr, endpoint_mask):
        """Re-reduce both flood logs inside the growing dirty ball.

        Returns the mask of rows with a changed log entry, or ``None``
        when a round's candidate set crossed the scratch threshold.
        """
        n = len(csr)
        log_dirty = np.zeros(n, dtype=bool)
        final_changed = self._repair_one_flood(
            csr,
            self._max_log,
            self._tie,
            np.maximum,
            endpoint_mask,
            np.zeros(n, dtype=bool),
            log_dirty,
        )
        if final_changed is None:
            return None
        min_changed = self._repair_one_flood(
            csr,
            self._min_log,
            self._max_log[self.d - 1],
            np.minimum,
            endpoint_mask,
            final_changed,
            log_dirty,
        )
        if min_changed is None:
            return None
        return log_dirty

    def _repair_one_flood(
        self, csr, log, start, ufunc, endpoint_mask, seed_changed, log_dirty
    ):
        """One flood phase over its dirty ball; see :func:`flood_logs`.

        Round ``r`` recomputes exactly the rows whose closed neighborhood
        input could differ: the delta endpoints (their neighborhood
        itself changed) plus rows adjacent to a round-``r-1`` change
        (``seed_changed`` marks rows whose phase input moved).
        """
        indptr = csr.indptr.astype(np.int64)
        indices = csr.indices
        n = len(csr)
        changed_prev = seed_changed
        for r in range(self.d):
            cand_mask = endpoint_mask.copy()
            if changed_prev.any():
                cand_mask |= changed_prev
                for row in np.flatnonzero(changed_prev).tolist():
                    cand_mask[indices[indptr[row] : indptr[row + 1]]] = True
            cand = np.flatnonzero(cand_mask)
            if cand.size * SCRATCH_FALLBACK_FRACTION > n:
                return None
            prev = start if r == 0 else log[r - 1]
            new_vals = _closed_reduce_rows(indptr, indices, prev, cand, ufunc)
            moved_mask = new_vals != log[r][cand]
            moved = cand[moved_mask]
            log[r][moved] = new_vals[moved_mask]
            log_dirty[moved] = True
            changed_prev = np.zeros(n, dtype=bool)
            changed_prev[moved] = True
        return changed_prev

    def _update_membership(self, csr, endpoint_mask, log_dirty):
        """Propagate changed log rows to heads, labels, and parents."""
        n = len(csr)
        tie = self._tie
        labels_old = self._labels
        prev_positive = self._counts > 0
        sel = np.flatnonzero(log_dirty)
        if sel.size:
            new_ids = select_head_ids(tie, self._max_log, self._min_log, rows=sel)
            moved = new_ids != self._head_id[sel]
            sel = sel[moved]
            new_ids = new_ids[moved]
        if sel.size:
            new_rows = rows_of_ids(tie, new_ids)
            np.subtract.at(self._counts, self._chosen[sel], 1)
            np.add.at(self._counts, new_rows, 1)
            self._chosen[sel] = new_rows
            self._head_id[sel] = new_ids
        now_positive = self._counts > 0
        relabel = prev_positive != now_positive
        relabel[sel] = True
        rows = np.flatnonzero(relabel)
        labels = labels_old.copy()
        labels[rows] = np.where(now_positive[rows], rows, self._chosen[rows])
        self._labels = labels
        dirty = endpoint_mask.copy()
        dirty[rows[labels[rows] != labels_old[rows]]] = True
        affected = np.unique(np.concatenate((labels_old[dirty], labels[dirty])))
        is_affected = np.zeros(n, dtype=bool)
        is_affected[affected] = True
        active = is_affected[labels]
        if active.any():
            self._parent = cluster_parent_rows(
                csr, tie, labels, parent_rows=self._parent, active=active
            )

    def _to_clustering(self, graph):
        ids = self._csr.ids
        parents = {ids[i]: ids[p] for i, p in enumerate(self._parent.tolist())}
        return Clustering(graph, parents)


register_engine("lowest-id")(lambda: GreedyDominatingEngine("lowest-id"))
register_engine("degree")(lambda: GreedyDominatingEngine("degree"))
register_engine("max-min")(MaxMinEngine)
