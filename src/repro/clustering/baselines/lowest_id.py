"""Lowest-identifier clustering (Baker-Ephremides, 1981; CBRP draft).

The classic linked-cluster heuristic: a node becomes a cluster-head iff it
has the lowest identifier among the not-yet-covered nodes of its closed
neighborhood; other nodes affiliate with the lowest-identifier adjacent
head.  Referenced by the paper's state of the art ([2], [12]) and one of
the comparators of [16].
"""

from repro.clustering.baselines.common import greedy_dominating_clustering
from repro.util.errors import ConfigurationError


def lowest_id_clustering(graph, tie_ids=None):
    """1-hop clusters headed by local identifier minima.

    ``tie_ids`` maps node -> unique integer identifier; defaults to the
    nodes themselves.
    """
    if tie_ids is None:
        tie_ids = {node: node for node in graph}
    if set(tie_ids) != set(graph.nodes):
        raise ConfigurationError("tie_ids must cover exactly the graph's nodes")
    # Lower identifier wins, so priority is the negated identifier.
    priority = {node: -tie_ids[node] for node in graph}
    return greedy_dominating_clustering(graph, priority)
