"""Max-Min d-cluster formation (Amis, Prakash, Vuong, Huynh, INFOCOM 2000).

The third comparator of the paper ([1] in its references): clusters of
radius at most ``d`` hops built by ``2d`` rounds of local flooding.

Algorithm (per the original paper):

1. **Floodmax** (``d`` rounds): every node repeatedly adopts the largest
   identifier heard in its closed neighborhood, logging the winner of each
   round.
2. **Floodmin** (``d`` rounds): starting from the floodmax result, every
   node repeatedly adopts the *smallest* identifier heard, again logging
   winners.
3. Each node then selects its cluster-head:

   * Rule 1 -- if the node's own identifier appears among its floodmin
     round winners, it is a cluster-head;
   * Rule 2 -- else, among *node pairs* (identifiers appearing in both its
     floodmax and floodmin logs) pick the minimum;
   * Rule 3 -- else, pick the floodmax winner of the final round.

Membership is the set of nodes that selected a given head.  A node whose
selected head is unreachable through same-cluster nodes (a known max-min
artifact on sparse graphs) falls back to electing itself; this keeps the
result a valid connected clustering and is called out in DESIGN.md.

The hot path runs on the CSR snapshot: the flood logs are ``(d, n)``
arrays filled by per-round ``maximum``/``minimum`` reductions over
closed neighborhoods (:func:`flood_logs`), head selection is one array
pass over the logs (:func:`select_head_ids`), and the per-cluster
joining trees come from one label-constrained multi-source BFS
(:func:`cluster_parent_rows`).  The original per-node dict
implementation survives as :func:`maxmin_clustering_reference`, the
oracle the vectorized path and the incremental engine
(``clustering/baselines/incremental.py``) are tested against.
"""

import numpy as np

from repro.clustering.result import Clustering
from repro.graph.traversal import csr_multi_source_distances
from repro.util.errors import ConfigurationError

#: Sentinel above every identifier (identifiers are int64 and unique).
NO_ID = np.iinfo(np.int64).max


def maxmin_clustering(graph, d=2, tie_ids=None):
    """Max-Min d-cluster heads and membership over ``graph``."""
    tie_ids = _checked_tie_ids(graph, d, tie_ids)
    csr = graph.to_csr()
    n = len(csr)
    if n == 0:
        return Clustering(graph, {})
    tie = np.fromiter((tie_ids[node] for node in csr.ids), dtype=np.int64, count=n)
    max_log, min_log = flood_logs(csr, tie, d)
    head_id = select_head_ids(tie, max_log, min_log)
    labels = normalize_membership(tie, head_id)
    parent_rows = cluster_parent_rows(csr, tie, labels)
    ids = csr.ids
    parents = {ids[i]: ids[p] for i, p in enumerate(parent_rows.tolist())}
    return Clustering(graph, parents)


def _checked_tie_ids(graph, d, tie_ids):
    if d < 1:
        raise ConfigurationError(f"d must be >= 1, got {d}")
    if tie_ids is None:
        tie_ids = {node: node for node in graph}
    if set(tie_ids) != set(graph.nodes):
        raise ConfigurationError("tie_ids must cover exactly the graph's nodes")
    if len(set(tie_ids.values())) != len(tie_ids):
        raise ConfigurationError("tie_ids must be globally unique")
    return tie_ids


def flood_logs(csr, tie, d):
    """The floodmax and floodmin round logs as ``(d, n)`` int64 arrays."""
    max_log = np.empty((d, len(csr)), dtype=np.int64)
    current = tie
    for r in range(d):
        current = closed_neighborhood_reduce(csr, current, np.maximum)
        max_log[r] = current
    min_log = np.empty_like(max_log)
    current = max_log[d - 1]
    for r in range(d):
        current = closed_neighborhood_reduce(csr, current, np.minimum)
        min_log[r] = current
    return max_log, min_log


def closed_neighborhood_reduce(csr, values, ufunc):
    """One synchronous flooding round: ``ufunc`` over closed neighborhoods."""
    result = values.copy()
    indices = csr.indices
    if indices.size:
        indptr = csr.indptr.astype(np.int64)
        nonempty = np.diff(indptr) > 0
        reduced = ufunc.reduceat(values[indices], indptr[:-1][nonempty])
        result[nonempty] = ufunc(result[nonempty], reduced)
    return result


def select_head_ids(tie, max_log, min_log, rows=None):
    """Per-node selected head identifier from the round logs (rules 1-3).

    ``rows`` restricts the pass to a row subset (the incremental engine's
    dirty set); the returned array then aligns with ``rows``.
    """
    if rows is not None:
        tie = tie[rows]
        max_log = max_log[:, rows]
        min_log = min_log[:, rows]
    rule1 = (min_log == tie).any(axis=0)
    in_both = (max_log[:, None, :] == min_log[None, :, :]).any(axis=1)
    pair_min = np.where(in_both, max_log, NO_ID).min(axis=0)
    has_pair = in_both.any(axis=0)
    return np.where(rule1, tie, np.where(has_pair, pair_min, max_log[-1]))


def rows_of_ids(tie, id_values):
    """Rows carrying the given identifier values (identifiers unique)."""
    order = np.argsort(tie, kind="stable")
    return order[np.searchsorted(tie[order], id_values)]


def normalize_membership(tie, head_id):
    """Cluster label (head row) per row, with the standard normalization:
    a node selected as head by anyone heads its own cluster."""
    chosen = rows_of_ids(tie, head_id)
    counts = np.bincount(chosen, minlength=len(tie))
    return np.where(counts > 0, np.arange(len(tie), dtype=np.int64), chosen)


def cluster_parent_rows(csr, tie, labels, parent_rows=None, active=None):
    """Joining-forest parent rows from the per-row cluster labels.

    Within each cluster, parents follow BFS trees rooted at the head over
    the cluster-induced subgraph (ties broken by smaller identifier);
    members disconnected from their head inside the cluster become
    singleton heads (see module docstring).  All per-cluster trees come
    from one label-constrained multi-source sweep on the CSR snapshot
    (`repro.graph.traversal`): every head seeds a wave that expands only
    along same-cluster edges, which yields the induced-subgraph distances
    without ever building a subgraph.  The parent choice (the
    minimum-identifier neighbor one hop closer to the head) is one masked
    min-reduction over the CSR rows.

    ``active`` (a boolean row mask) restricts the sweep to the clusters
    it marks: rows outside keep their entry from ``parent_rows``
    (required alongside ``active``); rows inside are recomputed exactly
    as the full sweep would.
    """
    n = len(csr)
    rows = np.arange(n, dtype=np.int64)
    if active is None:
        sweep_labels = labels
        parent_rows = rows.copy()
    else:
        sweep_labels = np.where(active, labels, -1)
        parent_rows = parent_rows.copy()
    sources = np.flatnonzero(sweep_labels == rows)
    dist = csr_multi_source_distances(csr, sources, labels=sweep_labels)
    in_scope = sweep_labels >= 0
    own = in_scope & ((sweep_labels == rows) | (dist < 0))
    parent_rows[own] = rows[own]
    join = in_scope & ~own
    if not join.any():
        return parent_rows
    indptr = csr.indptr.astype(np.int64)
    indices = csr.indices
    deg = np.diff(indptr)
    repeated = np.repeat(rows, deg)
    same_label = sweep_labels[indices] == sweep_labels[repeated]
    closer = same_label & (dist[indices] == dist[repeated] - 1)
    nbr_tie = np.where(closer, tie[indices], NO_ID)
    nonempty = deg > 0
    row_best = np.full(n, NO_ID, dtype=np.int64)
    row_best[nonempty] = np.minimum.reduceat(nbr_tie, indptr[:-1][nonempty])
    hits = np.flatnonzero((nbr_tie == row_best[repeated]) & join[repeated])
    parent_rows[join] = indices[hits].astype(np.int64)
    return parent_rows


def maxmin_clustering_reference(graph, d=2, tie_ids=None):
    """The original per-node implementation: the oracle for the fast paths."""
    tie_ids = _checked_tie_ids(graph, d, tie_ids)

    max_log = _flood(
        graph,
        rounds=d,
        combine=max,
        start={node: tie_ids[node] for node in graph},
    )
    final_max = {node: max_log[node][-1] for node in graph}
    min_log = _flood(graph, rounds=d, combine=min, start=final_max)

    head_id_of = {}
    for node in graph:
        head_id_of[node] = _select_head_id(
            tie_ids[node],
            max_log[node],
            min_log[node],
        )

    id_to_node = {tie_ids[node]: node for node in graph}
    chosen_head = {node: id_to_node[head_id_of[node]] for node in graph}
    # A node selected as head by anyone must head its own cluster, or the
    # membership map would be ambiguous (standard max-min normalization).
    for head in set(chosen_head.values()):
        chosen_head[head] = head
    parents = _parents_from_membership(graph, chosen_head, tie_ids)
    return Clustering(graph, parents)


def _flood(graph, rounds, combine, start):
    """Run ``rounds`` of synchronous flooding, logging each round's winner."""
    current = dict(start)
    logs = {node: [] for node in graph}
    for _ in range(rounds):
        updated = {}
        for node in graph:
            values = [current[node]]
            values.extend(current[q] for q in graph.neighbors(node))
            updated[node] = combine(values)
        current = updated
        for node in graph:
            logs[node].append(current[node])
    return logs


def _select_head_id(own_id, max_winners, min_winners):
    if own_id in min_winners:
        return own_id  # Rule 1
    pairs = set(max_winners) & set(min_winners)
    if pairs:
        return min(pairs)  # Rule 2
    return max_winners[-1]  # Rule 3


def _parents_from_membership(graph, chosen_head, tie_ids):
    """Per-node head choices -> joining forest, one node at a time."""
    csr = graph.to_csr()
    index_of = csr.index_of
    n = len(csr)
    # -1 keeps any row not covered by chosen_head deterministically
    # unreachable (chosen_head is total over the graph today, but the
    # sweep must not depend on uninitialized memory if that ever slips).
    labels = np.full(n, -1, dtype=np.int64)
    for node, head in chosen_head.items():
        labels[index_of[node]] = index_of[head]
    sources = np.fromiter(
        {index_of[head] for head in chosen_head.values()},
        dtype=np.int64,
    )
    dist = csr_multi_source_distances(csr, sources, labels=labels)

    parents = {}
    ids = csr.ids
    indptr, indices = csr.indptr, csr.indices
    for row in range(n):
        node = ids[row]
        if labels[row] == row:
            parents[node] = node  # a head roots its own tree
        elif dist[row] < 0:
            parents[node] = node  # unreachable: fall back to singleton
        else:
            nbrs = indices[indptr[row] : indptr[row + 1]]
            closer = nbrs[(labels[nbrs] == labels[row]) & (dist[nbrs] == dist[row] - 1)]
            parents[node] = min(
                (ids[q] for q in closer.tolist()),
                key=tie_ids.get,
            )
    return parents
