"""Max-Min d-cluster formation (Amis, Prakash, Vuong, Huynh, INFOCOM 2000).

The third comparator of the paper ([1] in its references): clusters of
radius at most ``d`` hops built by ``2d`` rounds of local flooding.

Algorithm (per the original paper):

1. **Floodmax** (``d`` rounds): every node repeatedly adopts the largest
   identifier heard in its closed neighborhood, logging the winner of each
   round.
2. **Floodmin** (``d`` rounds): starting from the floodmax result, every
   node repeatedly adopts the *smallest* identifier heard, again logging
   winners.
3. Each node then selects its cluster-head:

   * Rule 1 -- if the node's own identifier appears among its floodmin
     round winners, it is a cluster-head;
   * Rule 2 -- else, among *node pairs* (identifiers appearing in both its
     floodmax and floodmin logs) pick the minimum;
   * Rule 3 -- else, pick the floodmax winner of the final round.

Membership is the set of nodes that selected a given head.  A node whose
selected head is unreachable through same-cluster nodes (a known max-min
artifact on sparse graphs) falls back to electing itself; this keeps the
result a valid connected clustering and is called out in DESIGN.md.
"""

import numpy as np

from repro.clustering.result import Clustering
from repro.graph.traversal import csr_multi_source_distances
from repro.util.errors import ConfigurationError


def maxmin_clustering(graph, d=2, tie_ids=None):
    """Max-Min d-cluster heads and membership over ``graph``."""
    if d < 1:
        raise ConfigurationError(f"d must be >= 1, got {d}")
    if tie_ids is None:
        tie_ids = {node: node for node in graph}
    if set(tie_ids) != set(graph.nodes):
        raise ConfigurationError("tie_ids must cover exactly the graph's nodes")
    if len(set(tie_ids.values())) != len(tie_ids):
        raise ConfigurationError("tie_ids must be globally unique")

    max_log = _flood(graph, tie_ids, rounds=d, combine=max,
                     start={node: tie_ids[node] for node in graph})
    final_max = {node: max_log[node][-1] for node in graph}
    min_log = _flood(graph, tie_ids, rounds=d, combine=min, start=final_max)

    head_id_of = {}
    for node in graph:
        head_id_of[node] = _select_head_id(
            tie_ids[node], max_log[node], min_log[node])

    id_to_node = {tie_ids[node]: node for node in graph}
    chosen_head = {node: id_to_node[head_id_of[node]] for node in graph}
    # A node selected as head by anyone must head its own cluster, or the
    # membership map would be ambiguous (standard max-min normalization).
    for head in set(chosen_head.values()):
        chosen_head[head] = head
    parents = _parents_from_membership(graph, chosen_head, tie_ids)
    return Clustering(graph, parents)


def _flood(graph, tie_ids, rounds, combine, start):
    """Run ``rounds`` of synchronous flooding, logging each round's winner."""
    current = dict(start)
    logs = {node: [] for node in graph}
    for _ in range(rounds):
        updated = {}
        for node in graph:
            values = [current[node]]
            values.extend(current[q] for q in graph.neighbors(node))
            updated[node] = combine(values)
        current = updated
        for node in graph:
            logs[node].append(current[node])
    return logs


def _select_head_id(own_id, max_winners, min_winners):
    if own_id in min_winners:
        return own_id  # Rule 1
    pairs = set(max_winners) & set(min_winners)
    if pairs:
        return min(pairs)  # Rule 2
    return max_winners[-1]  # Rule 3


def _parents_from_membership(graph, chosen_head, tie_ids):
    """Turn per-node head choices into a joining forest.

    Within each cluster, parents follow BFS trees rooted at the head over
    the cluster-induced subgraph (ties broken by smaller identifier).
    Members disconnected from their head inside the cluster become
    singleton heads (see module docstring).

    All per-cluster BFS trees come from one label-constrained multi-source
    sweep on the CSR snapshot (`repro.graph.traversal`): every head seeds
    a wave that expands only along same-cluster edges, which yields the
    induced-subgraph distances without ever building a subgraph.  The
    parent choice (minimum-``tie_ids`` neighbor one hop closer to the
    head) operates on distance values only, so the forest is identical to
    the per-cluster implementation.
    """
    csr = graph.to_csr()
    index_of = csr.index_of
    n = len(csr)
    # -1 keeps any row not covered by chosen_head deterministically
    # unreachable (chosen_head is total over the graph today, but the
    # sweep must not depend on uninitialized memory if that ever slips).
    labels = np.full(n, -1, dtype=np.int64)
    for node, head in chosen_head.items():
        labels[index_of[node]] = index_of[head]
    sources = np.fromiter(
        {index_of[head] for head in chosen_head.values()},
        dtype=np.int64)
    dist = csr_multi_source_distances(csr, sources, labels=labels)

    parents = {}
    ids = csr.ids
    indptr, indices = csr.indptr, csr.indices
    for row in range(n):
        node = ids[row]
        if labels[row] == row:
            parents[node] = node  # a head roots its own tree
        elif dist[row] < 0:
            parents[node] = node  # unreachable: fall back to singleton
        else:
            nbrs = indices[indptr[row]:indptr[row + 1]]
            closer = nbrs[(labels[nbrs] == labels[row])
                          & (dist[nbrs] == dist[row] - 1)]
            parents[node] = min((ids[q] for q in closer.tolist()),
                                key=tie_ids.get)
    return parents
