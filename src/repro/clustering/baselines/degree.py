"""Highest-degree clustering (Gerla-Tsai / Chen-Stojmenovic style).

A node becomes a cluster-head iff it has the highest degree among the
not-yet-covered nodes of its closed neighborhood (identifier breaks ties,
lower wins); other nodes affiliate with the best adjacent head.  This is
the "degree" metric the paper's Section 3 reports the density heuristic to
be more stable than, and the comparator used in the stability benches.
"""

from repro.clustering.baselines.common import greedy_dominating_clustering
from repro.util.errors import ConfigurationError


def degree_clustering(graph, tie_ids=None):
    """1-hop clusters headed by local degree maxima."""
    if tie_ids is None:
        tie_ids = {node: node for node in graph}
    if set(tie_ids) != set(graph.nodes):
        raise ConfigurationError("tie_ids must cover exactly the graph's nodes")
    priority = {node: (graph.degree(node), -tie_ids[node]) for node in graph}
    return greedy_dominating_clustering(graph, priority)
