"""Baseline clustering heuristics the density metric is compared against."""

from repro.clustering.baselines.degree import degree_clustering
from repro.clustering.baselines.incremental import (
    GreedyDominatingEngine,
    MaxMinEngine,
)
from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.clustering.baselines.maxmin import maxmin_clustering

__all__ = [
    "GreedyDominatingEngine",
    "MaxMinEngine",
    "degree_clustering",
    "lowest_id_clustering",
    "maxmin_clustering",
]
