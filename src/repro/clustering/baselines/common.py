"""Shared machinery for 1-hop greedy baseline clusterings.

Lowest-ID (Baker-Ephremides) and highest-degree (Gerla-Tsai) clustering
are both instances of the same greedy rule: scan nodes in decreasing
priority; an uncovered node becomes a cluster-head and covers its
neighbors; covered non-heads then affiliate with their best adjacent head.
The result is a dominating set of heads and 1-hop clusters.

Two implementations produce identical results:

* :func:`greedy_dominating_clustering` runs on the graph's CSR snapshot:
  the scan order is one ``lexsort`` over the priority columns, coverage
  is a boolean mask updated row slice by row slice, and the affiliation
  step is one vectorized maximum over adjacent-head ranks.  Priorities
  that cannot be laid out as numeric columns, or that are not unique,
  fall back to the reference path (non-unique priorities make the
  reference's parent choice depend on set-iteration order, which no
  array layout can reproduce).
* :func:`greedy_dominating_clustering_reference` is the original
  per-node set implementation, kept as the oracle the vectorized path
  and the incremental engines (``clustering/baselines/incremental.py``)
  are tested against.

The helpers :func:`greedy_heads` and :func:`affiliate` are shared with
the incremental engine, whose scratch fallback and re-seeds run the same
two kernels.
"""

import numpy as np

from repro.clustering.result import Clustering


def greedy_dominating_clustering(graph, priority, densities=None):
    """Greedy 1-hop clustering by decreasing ``priority`` key.

    ``priority`` maps node -> comparable key (greater wins).  Returns a
    :class:`~repro.clustering.result.Clustering` whose parents point
    members directly at their head (joining trees of height <= 1).
    """
    csr = graph.to_csr()
    columns = priority_columns(csr.ids, priority)
    if columns is None:
        return greedy_dominating_clustering_reference(
            graph,
            priority,
            densities=densities,
        )
    order = scan_order(columns)
    heads = greedy_heads(csr, order)
    parent_rows = affiliate(csr, heads, scan_rank(order))
    ids = csr.ids
    parents = {ids[i]: ids[p] for i, p in enumerate(parent_rows.tolist())}
    return Clustering(graph, parents, densities=densities)


def greedy_dominating_clustering_reference(graph, priority, densities=None):
    """The original per-node implementation: the oracle for the fast paths."""
    heads = set()
    covered = set()
    for node in sorted(graph.nodes, key=priority.get, reverse=True):
        if node not in covered:
            heads.add(node)
            covered.add(node)
            covered |= graph.neighbors(node)

    parents = {}
    for node in graph:
        if node in heads:
            parents[node] = node
            continue
        adjacent_heads = [q for q in graph.neighbors(node) if q in heads]
        # Every non-head is dominated by construction.
        parents[node] = max(adjacent_heads, key=priority.get)
    return Clustering(graph, parents, densities=densities)


def priority_columns(ids, priority):
    """Per-row numeric key columns for ``lexsort``, or ``None``.

    ``None`` sends the caller to the reference path: keys that are not
    scalars or uniform-width tuples of scalars, non-numeric columns, or
    non-unique keys (see module docstring).
    """
    values = [priority[node] for node in ids]
    if not values:
        return []
    if len(set(values)) != len(values):
        return None
    first = values[0]
    if isinstance(first, tuple):
        width = len(first)
        if any(not isinstance(v, tuple) or len(v) != width for v in values):
            return None
        raw = [[v[k] for v in values] for k in range(width)]
    else:
        if any(isinstance(v, tuple) for v in values):
            return None
        raw = [values]
    columns = []
    for column in raw:
        array = np.asarray(column)
        if array.dtype.kind not in "iuf" or array.ndim != 1:
            return None
        if array.dtype.kind == "u":
            if array.size and int(array.max()) >= 2**63:
                return None
            array = array.astype(np.int64)
        columns.append(array)
    return columns


def scan_order(columns):
    """Rows in decreasing priority, ties in insertion (row) order.

    Replicates ``sorted(nodes, key=priority.get, reverse=True)`` exactly:
    Python's sort is stable, so reverse-sorting keeps equal keys in
    insertion order, which is the CSR row order.
    """
    n = len(columns[0]) if columns else 0
    keys = [np.arange(n)]
    keys.extend(-column for column in reversed(columns))
    return np.lexsort(tuple(keys))


def scan_rank(order):
    """Per-row rank under the scan order (greater = scanned earlier)."""
    n = len(order)
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n - 1, -1, -1, dtype=np.int64)
    return rank


def greedy_heads(csr, order):
    """Boolean head mask from one covered-bitmask scan in ``order``."""
    n = len(csr)
    covered = np.zeros(n, dtype=bool)
    heads = np.zeros(n, dtype=bool)
    indptr = csr.indptr
    indices = csr.indices
    for row in order.tolist():
        if not covered[row]:
            heads[row] = True
            covered[row] = True
            start = indptr[row]
            stop = indptr[row + 1]
            covered[indices[start:stop]] = True
    return heads


def affiliate(csr, heads, rank):
    """Parent row per node: heads keep themselves, members join their
    maximum-priority adjacent head (one masked max-reduction over the
    CSR rows; every non-head is dominated by construction)."""
    n = len(csr)
    parent_rows = np.arange(n, dtype=np.int64)
    indices = csr.indices
    if not indices.size:
        return parent_rows
    indptr = csr.indptr.astype(np.int64)
    deg = np.diff(indptr)
    nonempty = deg > 0
    head_rank = np.where(heads[indices], rank[indices], -1)
    row_best = np.full(n, -1, dtype=np.int64)
    row_best[nonempty] = np.maximum.reduceat(head_rank, indptr[:-1][nonempty])
    members = ~heads & (row_best >= 0)
    rows = np.repeat(np.arange(n, dtype=np.int64), deg)
    hits = np.flatnonzero((head_rank == row_best[rows]) & members[rows])
    parent_rows[members] = indices[hits].astype(np.int64)
    return parent_rows
