"""Shared machinery for 1-hop greedy baseline clusterings.

Lowest-ID (Baker-Ephremides) and highest-degree (Gerla-Tsai) clustering
are both instances of the same greedy rule: scan nodes in decreasing
priority; an uncovered node becomes a cluster-head and covers its
neighbors; covered non-heads then affiliate with their best adjacent head.
The result is a dominating set of heads and 1-hop clusters.
"""

from repro.clustering.result import Clustering


def greedy_dominating_clustering(graph, priority, densities=None):
    """Greedy 1-hop clustering by decreasing ``priority`` key.

    ``priority`` maps node -> comparable key (greater wins).  Returns a
    :class:`~repro.clustering.result.Clustering` whose parents point members
    directly at their head (joining trees of height <= 1).
    """
    heads = set()
    covered = set()
    for node in sorted(graph.nodes, key=priority.get, reverse=True):
        if node not in covered:
            heads.add(node)
            covered.add(node)
            covered |= graph.neighbors(node)

    parents = {}
    for node in graph:
        if node in heads:
            parents[node] = node
            continue
        adjacent_heads = [q for q in graph.neighbors(node) if q in heads]
        # Every non-head is dominated by construction.
        parents[node] = max(adjacent_heads, key=priority.get)
    return Clustering(graph, parents, densities=densities)
