"""Per-node cluster-head choice rules (the ``clusterHead`` functions of §4).

These are the *local* rules a node evaluates over its cached neighborhood
views; both the centralized oracle and the distributed protocol call into
this module so the two implementations cannot drift apart.

Basic rule (Section 4.2)::

    clusterHead = Id_p                     if  forall q in Np:  q ≺ p
                  H(max≺ {q in Np})        otherwise

Fusion rule (Section 4.3) strengthens the self-election condition: ``p``
must also dominate every node in its 2-neighborhood that currently claims
to be a cluster-head.
"""


def is_local_max(key_p, neighbor_keys):
    """True iff every neighbor precedes ``p`` (``forall q in Np: q ≺ p``).

    A node with no neighbors is vacuously a local maximum (isolated nodes
    elect themselves, DESIGN.md deviation 2).
    """
    return all(key_q < key_p for key_q in neighbor_keys)


def best_neighbor(neighbor_keys_by_node):
    """``max≺ {q in Np}``: the neighbor with the greatest key.

    ``neighbor_keys_by_node`` maps neighbor -> key and must be non-empty.
    """
    return max(neighbor_keys_by_node, key=neighbor_keys_by_node.get)


def choose_parent(node, key_p, neighbor_keys_by_node):
    """``F(p)``: the node itself when locally maximal, else its best neighbor."""
    if is_local_max(key_p, neighbor_keys_by_node.values()):
        return node
    return best_neighbor(neighbor_keys_by_node)


def dominates_two_hop_heads(key_p, claimed_head_keys):
    """The extra fusion condition of Section 4.3.

    ``claimed_head_keys`` are the keys of every node ``q`` in ``N2_p`` (the
    2-neighborhood, ``p`` excluded) with ``H(q) = Id_q``, i.e. nodes that
    currently claim cluster-head status.  ``p`` may elect itself only if it
    dominates all of them.
    """
    return all(key_q < key_p for key_q in claimed_head_keys)


def wants_headship(key_p, neighbor_keys, claimed_two_hop_head_keys=None):
    """Full self-election test: local maximality plus (optionally) fusion.

    Pass ``claimed_two_hop_head_keys=None`` for the basic rule of §4.2 and a
    (possibly empty) iterable for the fusion rule of §4.3.
    """
    if not is_local_max(key_p, neighbor_keys):
        return False
    if claimed_two_hop_head_keys is None:
        return True
    return dominates_two_hop_heads(key_p, claimed_two_hop_head_keys)
