"""The density metric of Definition 1.

For a node ``p`` with neighborhood ``Np``::

    d_p = |{e = (v, w) in E : w in {p} u Np and v in Np}| / |Np|

The numerator counts each edge from ``p`` to a neighbor plus each edge
between two neighbors of ``p`` (each undirected edge once).  Since every
edge of the second kind closes a triangle through ``p``, the density
rewrites as ``1 + triangles(p) / |Np|``, which is how :func:`all_densities`
computes it in ``O(m * delta)`` total time.

Isolated nodes have ``|Np| = 0``; Definition 1 is then undefined and this
module defines their density as ``0.0`` (DESIGN.md, deviation 2).
"""

from fractions import Fraction

from repro.util.errors import TopologyError

ISOLATED_DENSITY = 0.0


def density(graph, node, exact=False):
    """Density of a single node.

    With ``exact=True`` the value is returned as a :class:`~fractions.Fraction`
    so equality comparisons (the tie-break cases) are free of floating-point
    noise; the default returns a ``float``.
    """
    neighbors = graph.neighbors(node)
    if not neighbors:
        return Fraction(0) if exact else ISOLATED_DENSITY
    links = len(neighbors) + edges_among(graph, neighbors)
    value = Fraction(links, len(neighbors))
    return value if exact else float(value)


def edges_among(graph, nodes):
    """Number of edges with both endpoints in ``nodes`` (each counted once)."""
    members = set(nodes)
    seen = set()
    for u in members:
        for v in graph.neighbors(u):
            if v in members:
                seen.add(frozenset((u, v)))
    return len(seen)


def all_densities(graph, exact=False):
    """Density of every node, via triangle counting.

    Returns ``dict[node, value]`` where values are ``float`` (default) or
    :class:`~fractions.Fraction` (``exact=True``).  Equivalent to calling
    :func:`density` per node but asymptotically faster on the 1000-node
    evaluation workloads: each edge between two neighbors of ``w`` is a
    triangle through ``w``, so one pass over edges with a common-neighbor
    scan counts every numerator at once.
    """
    triangles = {node: 0 for node in graph}
    for u, v in graph.edges:
        nu = graph.neighbors(u)
        nv = graph.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        for w in nu:
            if w in nv:
                # w sees edge (u, v) inside its neighborhood.
                triangles[w] += 1
    result = {}
    for node in graph:
        deg = graph.degree(node)
        if deg == 0:
            result[node] = Fraction(0) if exact else ISOLATED_DENSITY
            continue
        value = Fraction(deg + triangles[node], deg)
        result[node] = value if exact else float(value)
    return result


def density_bounds(degree):
    """Tight bounds ``(low, high)`` on the density of a degree-``degree`` node.

    A non-isolated node has at least its own ``degree`` links (density 1)
    and at most additionally all ``degree * (degree - 1) / 2`` links among
    its neighbors.
    """
    if degree < 0:
        raise TopologyError(f"degree must be non-negative, got {degree}")
    if degree == 0:
        return (ISOLATED_DENSITY, ISOLATED_DENSITY)
    return (1.0, 1.0 + (degree - 1) / 2.0)
