"""The density metric of Definition 1.

For a node ``p`` with neighborhood ``Np``::

    d_p = |{e = (v, w) in E : w in {p} u Np and v in Np}| / |Np|

The numerator counts each edge from ``p`` to a neighbor plus each edge
between two neighbors of ``p`` (each undirected edge once).  Since every
edge of the second kind closes a triangle through ``p``, the density
rewrites as ``1 + triangles(p) / |Np|``.

:func:`all_densities` computes the triangle counts on the graph's frozen
CSR snapshot (:meth:`~repro.graph.graph.Graph.to_csr`) with vectorized
sorted-adjacency intersections, so the 1000-10000-node evaluation
workloads run at array speed; the snapshot (and its memoized triangle
counts) is reused across calls until the graph mutates.  Densities are
ratios of integers, so the ``exact=True`` path rebuilds the same
:class:`~fractions.Fraction` values from the integer triangle counts that
the per-edge reference computes -- :func:`all_densities_reference`, the
dict-backend implementation, is kept as the equivalence oracle for tests.

Isolated nodes have ``|Np| = 0``; Definition 1 is then undefined and this
module defines their density as ``0.0`` (DESIGN.md, deviation 2).
"""

from fractions import Fraction

import numpy as np

from repro.util.errors import TopologyError

ISOLATED_DENSITY = 0.0

# Node count up to which the float64 image of the exact rational
# densities is guaranteed injective, making float ranking exact: every
# density is ``(deg + tri) / deg`` with numerator below ``n**2`` and
# denominator below ``n``, so distinct values differ by at least
# ``1/n**2`` while float spacing at the values' magnitude stays below
# ``n * 2**-52``.  Beyond this bound two distinct Fractions *may* share
# a float, and consumers that need the exact order must refine float
# ties (see ``clustering.incremental``).
FLOAT_EXACT_LIMIT = 100_000


def density_float_image(degrees, triangles):
    """Float64 densities from integer degree/triangle arrays.

    The shared fast-path kernel: ``(deg + tri) / deg`` in one vectorized
    expression, with isolated rows (``deg == 0``) pinned to
    :data:`ISOLATED_DENSITY` on every backend.  Each value is the
    correctly-rounded float of the exact Fraction (one IEEE division of
    two exact int64s), so rounding is monotone in the exact order --
    the property the float ranking fast paths build on.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    triangles = np.asarray(triangles, dtype=np.int64)
    return np.where(
        degrees > 0,
        (degrees + triangles) / np.maximum(degrees, 1),
        ISOLATED_DENSITY,
    )


def float_tie_mask(values):
    """Boolean mask of entries sharing their float value with another.

    Only at these entries can float ranking disagree with the exact
    Fraction order (and then only above :data:`FLOAT_EXACT_LIMIT`);
    the mask is the guard the fast paths use before falling back to
    Fractions.
    """
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    same = sorted_values[1:] == sorted_values[:-1]
    tied_sorted = np.zeros(len(values), dtype=bool)
    tied_sorted[1:] |= same
    tied_sorted[:-1] |= same
    tied = np.empty(len(values), dtype=bool)
    tied[order] = tied_sorted
    return tied


def density(graph, node, exact=False):
    """Density of a single node.

    With ``exact=True`` the value is returned as a :class:`~fractions.Fraction`
    so equality comparisons (the tie-break cases) are free of floating-point
    noise; the default returns a ``float``.
    """
    neighbors = graph.neighbors(node)
    if not neighbors:
        return Fraction(0) if exact else ISOLATED_DENSITY
    links = len(neighbors) + edges_among(graph, neighbors)
    value = Fraction(links, len(neighbors))
    return value if exact else float(value)


def edges_among(graph, nodes):
    """Number of edges with both endpoints in ``nodes`` (each counted once).

    Each edge is claimed by its lower-ranked endpoint, so the scan
    allocates no per-edge sets and works for any hashable identifiers.
    Ranks come from ``dict.fromkeys``: one deduplicating pass that keeps
    the caller's first-seen order, instead of enumerating a freshly built
    (hash-ordered) set.
    """
    rank = {u: i for i, u in enumerate(dict.fromkeys(nodes))}
    count = 0
    for u, i in rank.items():
        for v in graph.neighbors(u):
            j = rank.get(v)
            if j is not None and i < j:
                count += 1
    return count


def all_densities(graph, exact=False):
    """Density of every node, via CSR triangle counting.

    Returns ``dict[node, value]`` (insertion order) where values are
    ``float`` (default) or :class:`~fractions.Fraction` (``exact=True``).
    Equivalent to calling :func:`density` per node but vectorized: the
    frozen CSR snapshot counts every triangle with bulk sorted-adjacency
    intersections, and ``deg + triangles`` over ``deg`` is formed per node
    from those integers -- bit-identical to the reference on both the
    exact and the float path (both divide the same machine integers).
    """
    if not hasattr(graph, "to_csr"):
        return all_densities_reference(graph, exact=exact)
    csr = graph.to_csr()
    degrees = csr.degrees()
    triangles = csr.triangle_counts()
    if exact:
        return {node: Fraction(deg + tri, deg) if deg else Fraction(0)
                for node, deg, tri
                in zip(csr.ids, degrees.tolist(), triangles.tolist())}
    values = density_float_image(degrees, triangles)
    return dict(zip(csr.ids, values.tolist()))


def all_densities_reference(graph, exact=False):
    """Per-edge dict-backend reference for :func:`all_densities`.

    One pass over edges with a common-neighbor scan: each edge between two
    neighbors of ``w`` is a triangle through ``w``.  ``O(m * delta)``
    total time, no NumPy -- kept as the oracle the property tests compare
    the CSR path against.
    """
    triangles = {node: 0 for node in graph}
    for u, v in graph.edges:
        nu = graph.neighbors(u)
        nv = graph.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        for w in nu:
            if w in nv:
                # w sees edge (u, v) inside its neighborhood.
                triangles[w] += 1
    result = {}
    for node in graph:
        deg = graph.degree(node)
        if deg == 0:
            result[node] = Fraction(0) if exact else ISOLATED_DENSITY
            continue
        value = Fraction(deg + triangles[node], deg)
        result[node] = value if exact else float(value)
    return result


def density_bounds(degree):
    """Tight bounds ``(low, high)`` on the density of a degree-``degree`` node.

    A non-isolated node has at least its own ``degree`` links (density 1)
    and at most additionally all ``degree * (degree - 1) / 2`` links among
    its neighbors.
    """
    if degree < 0:
        raise TopologyError(f"degree must be non-negative, got {degree}")
    if degree == 0:
        return (ISOLATED_DENSITY, ISOLATED_DENSITY)
    return (1.0, 1.0 + (degree - 1) / 2.0)
