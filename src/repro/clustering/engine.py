"""The :class:`ClusteringEngine` protocol and the per-metric registry.

Every clusterer in this package can be driven two ways: a *scratch* call
on a finished topology (the oracle path), or an *engine* kept alive
across the windows of a dynamic workload and fed the exact
:class:`~repro.graph.dynamic.EdgeDelta` stream the topology layer
already maintains.  This module defines the seam between the two:

* :class:`ClusteringEngine` -- the three-method protocol
  (``init(topology)`` / ``apply_delta(update)`` / ``result()``) the
  experiment families speak.  ``update`` is the
  :class:`~repro.graph.dynamic.WindowUpdate` a
  :func:`~repro.mobility.trace.window_stream` yields: the live
  topology, the exact edge delta, and (when maintained) the exact
  density map.
* :class:`EngineBase` -- shared bookkeeping: re-seeding whenever the
  node set changes or no delta is attached, the empty-delta
  short-circuit, and ``result()``.
* :func:`engine_for` / :func:`register_engine` -- the metric registry
  (``"density"``, ``"degree"``, ``"lowest-id"``, ``"max-min"``), the
  extension point every future clusterer plugs into.

Engines are *exact*: after any window sequence, ``result()`` equals the
scratch clusterer on the same topology, bit for bit.  The property
suite (``tests/property/test_engine_properties.py``) drives randomized
move/join/leave traces through every registered engine and asserts
equality against the scratch oracles window by window.
"""

from repro.util.errors import ConfigurationError

_ENGINE_FACTORIES = {}
_BUILTINS_LOADED = False


def register_engine(name):
    """Decorator registering an engine factory under metric ``name``."""

    def decorate(factory):
        _ENGINE_FACTORIES[name] = factory
        return factory

    return decorate


def engine_for(metric, **options):
    """A fresh :class:`ClusteringEngine` for ``metric``.

    ``options`` are forwarded to the engine factory (e.g. ``d=2`` for
    ``"max-min"``, ``order=`` / ``fusion=`` for ``"density"``).
    """
    _load_builtins()
    try:
        factory = _ENGINE_FACTORIES[metric]
    except KeyError:
        known = ", ".join(sorted(_ENGINE_FACTORIES))
        raise ConfigurationError(
            f"unknown clustering metric {metric!r}; registered engines: {known}"
        ) from None
    return factory(**options)


def registered_engines():
    """Sorted metric names with a registered engine factory."""
    _load_builtins()
    return sorted(_ENGINE_FACTORIES)


def _load_builtins():
    """Import the modules whose import registers the built-in engines."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.clustering.baselines.incremental  # noqa: F401
        import repro.clustering.incremental  # noqa: F401

        _BUILTINS_LOADED = True


class ClusteringEngine:
    """Protocol: a clusterer maintained across topology windows.

    ``init(topology, densities=None)`` seeds from a full topology and
    returns its clustering; ``apply_delta(update)`` advances one window
    from a :class:`~repro.graph.dynamic.WindowUpdate` and returns that
    window's clustering; ``result()`` returns the current clustering.
    Implementations must be exact: every returned clustering equals the
    scratch clusterer on the same topology.
    """

    def init(self, topology, densities=None):
        raise NotImplementedError

    def apply_delta(self, update):
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class EngineBase(ClusteringEngine):
    """Shared engine bookkeeping over ``_seed`` / ``_apply`` hooks.

    Subclasses implement ``_seed(topology, densities)`` (full scratch
    state build) and ``_apply(update)`` (one incremental window; only
    called with a non-empty delta over an unchanged node set).
    ``apply_delta`` re-seeds whenever the node set changed (a churn
    epoch) or the update carries no delta (the stream's first window),
    and returns the previous clustering unchanged for an empty delta.
    """

    def __init__(self):
        self._clustering = None
        self._engine_ids = None

    def init(self, topology, densities=None):
        self._clustering = self._seed(topology, densities)
        self._engine_ids = topology.graph.to_csr().ids
        return self._clustering

    def apply_delta(self, update):
        topology = update.topology
        if (
            self._clustering is None
            or update.delta is None
            or topology.graph.to_csr().ids != self._engine_ids
        ):
            return self.init(topology, densities=update.densities)
        if not update.delta:
            return self._clustering
        self._clustering = self._apply(update)
        return self._clustering

    def result(self):
        if self._clustering is None:
            raise ConfigurationError("engine holds no clustering; call init first")
        return self._clustering
