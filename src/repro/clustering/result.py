"""The :class:`Clustering` result object and its structural metrics.

A clustering is a *joining forest*: every node has a parent ``F(p)`` (a
neighbor, or itself), and the root of each tree is the cluster-head
``H(p)``.  The metrics reported in Tables 4 and 5 live here:

* ``cluster_count`` -- number of cluster-heads ("# clusters");
* ``head_eccentricity`` -- ``e(H(u)/C) = max_{v in C} d(H(u), v)`` in hops,
  measured inside the cluster-induced subgraph (clusters are connected by
  construction since every parent is a neighbor);
* ``tree_length`` -- the height of a cluster's joining tree, i.e. the
  maximum number of parent links from a member to its head, which bounds
  the number of steps head identities need to propagate (Section 5).

Both metric families ride the CSR traversal kernel
(:mod:`repro.graph.traversal`): *all* head eccentricities come from one
batched label-constrained BFS sweep over the whole graph (no induced
subgraphs), and *all* joining-tree depths from one pointer-doubling
resolve of the parent forest (no per-node link-chasing).  Distances and
depths are tie-break-free, so every reported number is identical to the
per-node implementations, which survive as ``*_reference`` oracles.
"""

import numpy as np

from repro.graph.paths import bfs_distances_reference
from repro.graph.traversal import csr_multi_source_distances, resolve_forest
from repro.util.errors import TopologyError


class Clustering:
    """An immutable snapshot of a cluster assignment over a graph."""

    def __init__(self, graph, parents, densities=None, dag_ids=None,
                 order_name=None, fusion=False):
        self.graph = graph
        self.parents = dict(parents)
        self.densities = dict(densities) if densities is not None else None
        self.dag_ids = dict(dag_ids) if dag_ids is not None else None
        self.order_name = order_name
        self.fusion = fusion
        self._validate_parents()
        self.head_of = self._resolve_heads()
        self.heads = frozenset(node for node, parent in self.parents.items()
                               if parent == node)
        self.clusters = self._group_clusters()
        self._forest_cache = None
        self._height_cache = None
        self._sweep_cache = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _validate_parents(self):
        if set(self.parents) != set(self.graph.nodes):
            raise TopologyError("parents must cover exactly the graph's nodes")
        for node, parent in self.parents.items():
            if parent != node and not self.graph.has_edge(node, parent):
                raise TopologyError(
                    f"parent of {node!r} is {parent!r}, which is not a neighbor")

    def _resolve_heads(self):
        """Follow parent links to the root of each tree, detecting cycles."""
        head_of = {}
        for start in self.parents:
            if start in head_of:
                continue
            path = []
            node = start
            while node not in head_of:
                if node in path:
                    cycle = path[path.index(node):]
                    raise TopologyError(f"parent links form a cycle: {cycle!r}")
                path.append(node)
                parent = self.parents[node]
                if parent == node:
                    head_of[node] = node
                    break
                node = parent
            root = head_of[node] if node in head_of else node
            for visited in path:
                head_of[visited] = root
        return head_of

    def _group_clusters(self):
        clusters = {}
        for node, head in self.head_of.items():
            clusters.setdefault(head, set()).add(node)
        return {head: frozenset(members) for head, members in clusters.items()}

    # ------------------------------------------------------------------
    # traversal-kernel caches
    # ------------------------------------------------------------------

    def __getstate__(self):
        # The caches hold frozen CSR snapshots and arrays; they are cheap
        # to rebuild and would bloat (or break) pickled payloads shipped
        # to experiment worker processes.
        state = self.__dict__.copy()
        state["_forest_cache"] = None
        state["_height_cache"] = None
        state["_sweep_cache"] = None
        return state

    def _forest(self):
        """``(index, depths)``: per-node joining-forest depths.

        One pointer-doubling resolve over the whole forest (O(n log h)
        numpy ops), computed lazily and cached -- the parent map is
        immutable.  Cycles were already ruled out by
        :meth:`_resolve_heads`.
        """
        if self._forest_cache is None:
            nodes = list(self.parents)
            index = {node: i for i, node in enumerate(nodes)}
            rows = np.fromiter((index[self.parents[node]] for node in nodes),
                               dtype=np.int64, count=len(nodes))
            _roots, depths = resolve_forest(rows)
            self._forest_cache = (index, depths)
        return self._forest_cache

    def _tree_heights(self):
        """Per-head joining-tree heights, one ``maximum.at`` scatter."""
        if self._height_cache is None:
            index, depths = self._forest()
            heights = np.zeros(len(index), dtype=np.int64)
            if index:
                head_rows = np.fromiter(
                    (index[self.head_of[node]] for node in self.parents),
                    dtype=np.int64, count=len(index))
                np.maximum.at(heights, head_rows, depths)
            self._height_cache = heights
        return self._height_cache

    def _cluster_sweep(self):
        """``(csr, labels, ecc, reach)`` from one batched head sweep.

        Every head seeds a BFS wave that expands only along edges whose
        endpoints share the head's label, so the sweep computes every
        cluster's internal distances simultaneously -- no induced
        subgraphs.  ``ecc[r]`` / ``reach[r]`` are the eccentricity and
        reached-member count of the head at row ``r``.  Cached against
        the CSR snapshot identity, so any graph mutation (which
        invalidates the snapshot) forces a re-sweep.
        """
        csr = self.graph.to_csr()
        cached = self._sweep_cache
        if cached is not None and cached[0] is csr:
            return cached
        n = len(csr)
        index_of = csr.index_of
        labels = np.full(n, -1, dtype=np.int64)
        for node, head in self.head_of.items():
            row = index_of.get(node)
            head_row = index_of.get(head)
            if row is not None and head_row is not None:
                labels[row] = head_row
        sources = np.fromiter(
            (index_of[head] for head in self.heads if head in index_of),
            dtype=np.int64)
        dist = csr_multi_source_distances(csr, sources, labels=labels)
        ecc = np.zeros(n, dtype=np.int64)
        reach = np.zeros(n, dtype=np.int64)
        reached = dist >= 0
        if bool(reached.any()):
            lab = labels[reached]
            np.maximum.at(ecc, lab, dist[reached])
            reach += np.bincount(lab, minlength=n)
        self._sweep_cache = (csr, labels, ecc, reach)
        return self._sweep_cache

    def cluster_rows(self):
        """``(csr, labels)``: the graph snapshot plus per-row cluster labels.

        ``labels[r]`` is the row index of row ``r``'s head (``-1`` for
        rows outside the clustering).  Shared with hierarchical routing,
        whose intra-cluster legs are label-constrained path searches over
        the same arrays.
        """
        csr, labels, _ecc, _reach = self._cluster_sweep()
        return csr, labels

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def cluster_count(self):
        """Number of clusters (= number of cluster-heads)."""
        return len(self.heads)

    def head(self, node):
        """``H(node)``: the cluster-head of ``node``."""
        return self.head_of[node]

    def parent(self, node):
        """``F(node)``: the parent of ``node`` in the joining forest."""
        return self.parents[node]

    def members(self, head):
        """All nodes in the cluster of ``head`` (including the head)."""
        if head not in self.clusters:
            raise TopologyError(f"{head!r} is not a cluster-head")
        return self.clusters[head]

    def is_head(self, node):
        """True iff ``node`` elected itself (``H(node) = node``)."""
        return self.head_of[node] == node

    def depth(self, node):
        """Number of parent links from ``node`` to its head."""
        index, depths = self._forest()
        return int(depths[index[node]])

    def depth_reference(self, node):
        """The original link-chasing depth (oracle for the kernel path)."""
        count = 0
        current = node
        while self.parents[current] != current:
            current = self.parents[current]
            count += 1
        return count

    # ------------------------------------------------------------------
    # Table 4 / Table 5 metrics
    # ------------------------------------------------------------------

    def tree_length(self, head):
        """Height of the joining tree rooted at ``head`` (0 for singletons)."""
        self.members(head)  # validates that ``head`` is a cluster-head
        index, _depths = self._forest()
        return int(self._tree_heights()[index[head]])

    def tree_length_reference(self, head):
        """The original per-member link-chasing height (oracle)."""
        members = self.members(head)
        return max(self.depth_reference(node) for node in members)

    def average_tree_length(self):
        """Mean joining-tree height over clusters ("average tree length")."""
        if not self.heads:
            return 0.0
        return sum(self.tree_length(head) for head in self.heads) / len(self.heads)

    def head_eccentricity(self, head):
        """``e(H(u)/C)``: max hop distance from the head to any member,
        measured inside the cluster-induced subgraph.

        Served from the cached batched sweep: label-constrained expansion
        yields exactly the induced-subgraph distances, because every
        traversed edge has both endpoints inside the cluster.
        """
        members = self.members(head)
        csr, _labels, ecc, reach = self._cluster_sweep()
        row = csr.index_of.get(head)
        if row is None or int(reach[row]) != len(members):
            # Members missing from the graph or disconnected from their
            # head: re-run the subgraph oracle, which raises the precise
            # historical error for either failure.
            return self.head_eccentricity_reference(head)
        return int(ecc[row])

    def head_eccentricity_reference(self, head):
        """The original induced-subgraph BFS (oracle for the sweep)."""
        members = self.members(head)
        subgraph = self.graph.induced_subgraph(members)
        distances = bfs_distances_reference(subgraph, head)
        if set(distances) != set(members):
            raise TopologyError(
                f"cluster of {head!r} is not connected; joining forest invalid")
        return max(distances.values())

    def average_head_eccentricity(self):
        """Mean head eccentricity over clusters."""
        if not self.heads:
            return 0.0
        return sum(self.head_eccentricity(h) for h in self.heads) / len(self.heads)

    # ------------------------------------------------------------------
    # invariants (used by tests and the stabilization monitor)
    # ------------------------------------------------------------------

    def check_invariants(self, heads_non_adjacent=True):
        """Verify the structural guarantees the paper relies on.

        Raises :class:`TopologyError` on violation.  Cluster connectivity
        is checked in a single pass against the batched sweep's reach
        counts (one BFS over the graph, not one per head).
        ``heads_non_adjacent`` asserts that no two cluster-heads are
        neighbors (guaranteed by the basic rule); when :attr:`fusion` is
        set, heads must additionally be at least 3 hops apart, which
        :meth:`check_fusion_separation` covers.
        """
        for head in self.heads:
            # Served from one shared batched sweep, so the whole loop costs
            # one BFS over the graph plus O(heads) cache reads.
            self.head_eccentricity(head)  # raises if a cluster is disconnected
        if heads_non_adjacent:
            for head in self.heads:
                adjacent_heads = self.graph.neighbors(head) & self.heads
                if adjacent_heads:
                    raise TopologyError(
                        f"cluster-heads {head!r} and {adjacent_heads!r} are "
                        "adjacent")
        if self.fusion:
            self.check_fusion_separation()

    def check_fusion_separation(self):
        """With the fusion rule, two heads are at least 3 hops apart."""
        for head in self.heads:
            two_hop = self.graph.k_neighborhood(head, 2)
            conflicting = two_hop & self.heads
            if conflicting:
                raise TopologyError(
                    f"fusion violated: heads {conflicting!r} within 2 hops "
                    f"of head {head!r}")

    def __repr__(self):
        return (f"Clustering(clusters={self.cluster_count}, "
                f"order={self.order_name!r}, fusion={self.fusion})")
