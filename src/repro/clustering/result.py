"""The :class:`Clustering` result object and its structural metrics.

A clustering is a *joining forest*: every node has a parent ``F(p)`` (a
neighbor, or itself), and the root of each tree is the cluster-head
``H(p)``.  The metrics reported in Tables 4 and 5 live here:

* ``cluster_count`` -- number of cluster-heads ("# clusters");
* ``head_eccentricity`` -- ``e(H(u)/C) = max_{v in C} d(H(u), v)`` in hops,
  measured inside the cluster-induced subgraph (clusters are connected by
  construction since every parent is a neighbor);
* ``tree_length`` -- the height of a cluster's joining tree, i.e. the
  maximum number of parent links from a member to its head, which bounds
  the number of steps head identities need to propagate (Section 5).
"""

from repro.graph.paths import bfs_distances
from repro.util.errors import TopologyError


class Clustering:
    """An immutable snapshot of a cluster assignment over a graph."""

    def __init__(self, graph, parents, densities=None, dag_ids=None,
                 order_name=None, fusion=False):
        self.graph = graph
        self.parents = dict(parents)
        self.densities = dict(densities) if densities is not None else None
        self.dag_ids = dict(dag_ids) if dag_ids is not None else None
        self.order_name = order_name
        self.fusion = fusion
        self._validate_parents()
        self.head_of = self._resolve_heads()
        self.heads = frozenset(node for node, parent in self.parents.items()
                               if parent == node)
        self.clusters = self._group_clusters()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _validate_parents(self):
        if set(self.parents) != set(self.graph.nodes):
            raise TopologyError("parents must cover exactly the graph's nodes")
        for node, parent in self.parents.items():
            if parent != node and not self.graph.has_edge(node, parent):
                raise TopologyError(
                    f"parent of {node!r} is {parent!r}, which is not a neighbor")

    def _resolve_heads(self):
        """Follow parent links to the root of each tree, detecting cycles."""
        head_of = {}
        for start in self.parents:
            if start in head_of:
                continue
            path = []
            node = start
            while node not in head_of:
                if node in path:
                    cycle = path[path.index(node):]
                    raise TopologyError(f"parent links form a cycle: {cycle!r}")
                path.append(node)
                parent = self.parents[node]
                if parent == node:
                    head_of[node] = node
                    break
                node = parent
            root = head_of[node] if node in head_of else node
            for visited in path:
                head_of[visited] = root
        return head_of

    def _group_clusters(self):
        clusters = {}
        for node, head in self.head_of.items():
            clusters.setdefault(head, set()).add(node)
        return {head: frozenset(members) for head, members in clusters.items()}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def cluster_count(self):
        """Number of clusters (= number of cluster-heads)."""
        return len(self.heads)

    def head(self, node):
        """``H(node)``: the cluster-head of ``node``."""
        return self.head_of[node]

    def parent(self, node):
        """``F(node)``: the parent of ``node`` in the joining forest."""
        return self.parents[node]

    def members(self, head):
        """All nodes in the cluster of ``head`` (including the head)."""
        if head not in self.clusters:
            raise TopologyError(f"{head!r} is not a cluster-head")
        return self.clusters[head]

    def is_head(self, node):
        """True iff ``node`` elected itself (``H(node) = node``)."""
        return self.head_of[node] == node

    def depth(self, node):
        """Number of parent links from ``node`` to its head."""
        count = 0
        current = node
        while self.parents[current] != current:
            current = self.parents[current]
            count += 1
        return count

    # ------------------------------------------------------------------
    # Table 4 / Table 5 metrics
    # ------------------------------------------------------------------

    def tree_length(self, head):
        """Height of the joining tree rooted at ``head`` (0 for singletons)."""
        members = self.members(head)
        return max(self.depth(node) for node in members)

    def average_tree_length(self):
        """Mean joining-tree height over clusters ("average tree length")."""
        if not self.heads:
            return 0.0
        return sum(self.tree_length(head) for head in self.heads) / len(self.heads)

    def head_eccentricity(self, head):
        """``e(H(u)/C)``: max hop distance from the head to any member,
        measured inside the cluster-induced subgraph."""
        members = self.members(head)
        subgraph = self.graph.induced_subgraph(members)
        distances = bfs_distances(subgraph, head)
        if set(distances) != set(members):
            raise TopologyError(
                f"cluster of {head!r} is not connected; joining forest invalid")
        return max(distances.values())

    def average_head_eccentricity(self):
        """Mean head eccentricity over clusters."""
        if not self.heads:
            return 0.0
        return sum(self.head_eccentricity(h) for h in self.heads) / len(self.heads)

    # ------------------------------------------------------------------
    # invariants (used by tests and the stabilization monitor)
    # ------------------------------------------------------------------

    def check_invariants(self, heads_non_adjacent=True):
        """Verify the structural guarantees the paper relies on.

        Raises :class:`TopologyError` on violation.  ``heads_non_adjacent``
        asserts that no two cluster-heads are neighbors (guaranteed by the
        basic rule); when :attr:`fusion` is set, heads must additionally be
        at least 3 hops apart, which :meth:`check_fusion_separation` covers.
        """
        for head in self.heads:
            self.head_eccentricity(head)  # raises if a cluster is disconnected
        if heads_non_adjacent:
            for head in self.heads:
                adjacent_heads = self.graph.neighbors(head) & self.heads
                if adjacent_heads:
                    raise TopologyError(
                        f"cluster-heads {head!r} and {adjacent_heads!r} are "
                        "adjacent")
        if self.fusion:
            self.check_fusion_separation()

    def check_fusion_separation(self):
        """With the fusion rule, two heads are at least 3 hops apart."""
        for head in self.heads:
            two_hop = self.graph.k_neighborhood(head, 2)
            conflicting = two_hop & self.heads
            if conflicting:
                raise TopologyError(
                    f"fusion violated: heads {conflicting!r} within 2 hops "
                    f"of head {head!r}")

    def __repr__(self):
        return (f"Clustering(clusters={self.cluster_count}, "
                f"order={self.order_name!r}, fusion={self.fusion})")
