"""Windowed re-election: the oracle fixpoint maintained across deltas.

The mobility and churn pipelines re-elect cluster-heads every window.  The
scratch oracle (:func:`~repro.clustering.oracle.compute_clustering`) walks
the whole graph in Python -- one neighbor-key dict per node -- which is
the dominant per-window cost once the topology itself is maintained
incrementally.  :class:`IncrementalElection` reproduces the oracle's
output *exactly* while re-seeding only what changed and running the
per-node rules as array passes:

* per-node election keys are kept as parallel arrays (density, incumbent
  flag, DAG name, tie identifier); a window refreshes only the entries
  whose density, head status, or DAG name changed;
* the ``≺`` order is realized by ranking the key arrays with one
  ``lexsort``.  Densities enter as floats, which is *exact* here: every
  density is a Fraction ``(deg + tri) / deg`` with numerator below
  ``n**2`` and denominator below ``n``, so distinct values differ by at
  least ``1/n**2`` while float spacing at the values' magnitude is below
  ``n * 2**-52`` -- strictly ordered after rounding for any ``n`` up to
  :data:`FLOAT_RANK_LIMIT`.  Beyond that bound, two distinct Fractions
  *may* round to one float; the engine then slots an exact *refinement*
  column into the lexsort -- sub-ranks computed with Fractions, but only
  inside groups of float-tied rows (float rounding is monotone, so the
  exact order can only disagree within such a group).  Every election
  stays bit-identical to the oracle at any scale, and Fractions are
  touched only where float ties are possible.  Custom orders still route
  through the scratch oracle;
* the Section 4.2 parent choice becomes a vectorized per-row argmax over
  neighbor ranks on the CSR snapshot; the Section 4.3 fusion greedy runs
  in Python but only over the (few) local maxima, with two-hop
  neighborhoods gathered as array slices;
* when a window changes nothing -- empty edge delta, same densities,
  same incumbents, same names -- the previous
  :class:`~repro.clustering.result.Clustering` is returned as-is.  The
  same short-circuit applies when the *only* change is incumbent bits
  flipping on density-untied nodes: density is the primary key of ``≺``
  and the incumbent flag is consulted only between equal-density nodes,
  so with no edge/density/name frontier such flips cannot reorder any
  comparison and the previous election is provably bit-identical.

The scratch oracle remains the reference; the property suite drives
randomized window sequences through both and asserts identical heads,
parents, and densities.
"""

import numpy as np

from repro.clustering.density import all_densities
from repro.clustering.engine import ClusteringEngine, register_engine
from repro.clustering.oracle import compute_clustering
from repro.clustering.order import BasicOrder, IncumbentOrder, make_order
from repro.clustering.result import Clustering
from repro.util.errors import ConfigurationError

# Above this node count the float image of the exact rational densities
# is no longer guaranteed injective (clustering.density.FLOAT_EXACT_LIMIT
# derives the bound); the engine then adds the exact refinement column
# to the lexsort.  Module-level so tests can lower it to force the
# refinement path on small graphs.
FLOAT_RANK_LIMIT = 100_000


def _previous_heads(previous):
    """The incumbent head set under ``compute_clustering`` semantics."""
    if previous is None:
        return frozenset()
    if isinstance(previous, (set, frozenset)):
        return previous
    return previous.heads


class IncrementalElection(ClusteringEngine):
    """Per-configuration election engine reused across windows.

    One instance per (order, fusion) configuration; :meth:`update` is
    called once per window with the maintained graph and exact densities
    and returns the same :class:`Clustering` the scratch oracle would.
    The :class:`~repro.clustering.engine.ClusteringEngine` protocol
    (``init`` / ``apply_delta`` / ``result``) rides on top of it for
    callers that speak :class:`~repro.graph.dynamic.WindowUpdate`
    streams; richer callers (per-window DAG renames, incumbent
    threading) keep calling :meth:`update` directly.
    """

    def __init__(self, order="basic", fusion=False):
        self.order = make_order(order) if isinstance(order, str) else order
        self.fusion = bool(fusion)
        # The vectorized key layout mirrors BasicOrder/IncumbentOrder
        # exactly; anything else routes through the scratch oracle.
        self._vectorizable = type(self.order) in (BasicOrder, IncumbentOrder)
        self._incumbent = isinstance(self.order, IncumbentOrder)
        self._ids = None
        self._tie = None
        self._dag = None
        self._density = None
        self._tied = None  # density-tie mask cache, None = stale
        self._refine = None  # exact tie-refinement cache, None = stale
        self._is_head = None
        self._last = None

    # ------------------------------------------------------------------
    # per-window entry point
    # ------------------------------------------------------------------

    def update(self, graph, densities, tie_ids, dag_ids=None, previous=None,
               density_changed=None, graph_changed=True, dag_changed=True):
        """Re-elect for one window; returns a :class:`Clustering`.

        ``densities`` is the exact density map maintained by the dynamic
        subsystem; ``density_changed`` the nodes whose value may have
        changed since the previous call (``None`` = re-seed everything);
        ``graph_changed`` / ``dag_changed`` flag whether the edge set or
        the DAG names moved.  ``previous`` carries the incumbent heads
        exactly as in :func:`compute_clustering`.

        ``tie_ids`` must be stable per node: it is cached when the node
        set (re)seeds, matching the normal-identifier model of the paper
        (and every pipeline here, where ``Topology.ids`` never changes
        for a live node).  Re-mapping tie identifiers mid-sequence
        requires a fresh engine.
        """
        if not self._vectorizable:
            self._last = compute_clustering(
                graph, tie_ids=tie_ids, dag_ids=dag_ids, order=self.order,
                fusion=self.fusion, previous=previous, densities=densities)
            return self._last

        csr = graph.to_csr()
        ids = csr.ids
        n = len(ids)
        reseed = ids != self._ids
        if reseed:
            self._ids = ids
            self._tie = np.fromiter((tie_ids[node] for node in ids),
                                    dtype=np.int64, count=n)
            density_changed = None
            dag_changed = True

        if density_changed is None:
            self._density = np.fromiter(
                (float(densities[node]) for node in ids),
                dtype=np.float64, count=n)
            self._tied = None
            self._refine = None
        elif density_changed:
            index_of = csr.index_of
            density = self._density
            for node in density_changed:
                density[index_of[node]] = float(densities[node])
            self._tied = None
            self._refine = None

        if dag_changed:
            self._dag = None if dag_ids is None else np.fromiter(
                (dag_ids[node] for node in ids), dtype=np.int64, count=n)

        heads_prev = _previous_heads(previous)
        is_head = np.fromiter((node in heads_prev for node in ids),
                              dtype=bool, count=n)
        was_head = self._is_head
        heads_same = (was_head is not None
                      and np.array_equal(is_head, was_head))
        self._is_head = is_head

        unchanged_inputs = (self._last is not None and not reseed
                            and not graph_changed and not dag_changed
                            and not density_changed)
        if unchanged_inputs and (heads_same or not self._incumbent):
            return self._last
        if (unchanged_inputs and was_head is not None
                and not self._density_tied()[is_head != was_head].any()):
            # The window's delta is empty (no edge/density/name frontier)
            # and the incumbent bit flipped only on density-untied nodes.
            # Density is the primary key of the lexsort and the incumbent
            # flag is compared only between equal-density nodes, so these
            # flips cannot reorder any pair under "<": ranks, parents,
            # and fusion are provably unchanged.
            return self._last

        refine = self._refinement(densities) if n > FLOAT_RANK_LIMIT else None
        ranks = self._ranks(refine)
        parent_idx, self_wins = _basic_parents(csr, ranks)
        if self.fusion:
            _fusion_adjust(csr, ranks, parent_idx, self_wins)
        parents = {ids[i]: ids[p]
                   for i, p in enumerate(parent_idx.tolist())}
        self._last = Clustering(graph, parents, densities=densities,
                                dag_ids=dag_ids, order_name=self.order.name,
                                fusion=self.fusion)
        return self._last

    # ------------------------------------------------------------------
    # ClusteringEngine protocol
    # ------------------------------------------------------------------

    def init(self, topology, densities=None):
        """Seed from a full topology (the ClusteringEngine protocol).

        ``densities`` is the exact density map when the caller already
        maintains one (a density-tracking window stream); computed from
        scratch otherwise.
        """
        if densities is None:
            densities = all_densities(topology.graph, exact=True)
        previous = self._last if self._incumbent else None
        return self.update(topology.graph, densities, tie_ids=topology.ids,
                           previous=previous)

    def apply_delta(self, update):
        """Advance one window from a ``WindowUpdate`` (protocol method).

        Requires the stream to maintain densities (``window_stream`` with
        ``track_densities=True``, the default); an update without them
        falls back to a scratch re-seed.
        """
        if update.delta is None or update.densities is None:
            return self.init(update.topology, densities=update.densities)
        previous = self._last if self._incumbent else None
        return self.update(update.topology.graph, update.densities,
                           tie_ids=update.topology.ids, previous=previous,
                           density_changed=update.density_changed,
                           graph_changed=bool(update.delta),
                           dag_changed=False)

    def result(self):
        """The clustering of the last window (protocol method)."""
        if self._last is None:
            raise ConfigurationError(
                "engine holds no clustering; call init first")
        return self._last

    def _density_tied(self):
        """Mask of nodes whose density value is shared with another node.

        Only at these nodes can the incumbent flag (or any lower-order
        key component) influence ``≺``.  Cached until a density write
        invalidates it.  Below :data:`FLOAT_RANK_LIMIT` the float image
        is exact (module docstring), so float equality coincides with
        equality of the underlying Fractions; above it the float-tie
        mask is a *superset* of the exact ties, which keeps every use
        (the incumbent-flip short-circuit, the refinement scope)
        conservative.
        """
        if self._tied is None:
            density = self._density
            order = np.argsort(density, kind="stable")
            sorted_values = density[order]
            same = sorted_values[1:] == sorted_values[:-1]
            tied_sorted = np.zeros(len(density), dtype=bool)
            tied_sorted[1:] |= same
            tied_sorted[:-1] |= same
            self._tied = np.empty(len(density), dtype=bool)
            self._tied[order] = tied_sorted
        return self._tied

    def _refinement(self, densities):
        """Exact tie-breaking column for rows beyond the float-image bound.

        Above :data:`FLOAT_RANK_LIMIT` two *distinct* Fractions may round
        to the same float.  Within each group of float-tied rows this
        assigns sub-ranks by the exact Fraction order (equal Fractions
        share a sub-rank); everywhere else it is 0.  Slotted into the
        lexsort directly under the density column, the composite key
        ``(float density, refinement)`` realizes the oracle's exact
        ``<``: float rounding is monotone, so across different float
        values the float order already agrees with the exact order, and
        within one float value the refinement decides.  Fractions are
        compared only over the (rare) float-tied rows; cached until a
        density write invalidates it.
        """
        if self._refine is None:
            refine = np.zeros(len(self._density), dtype=np.int64)
            tied_rows = np.flatnonzero(self._density_tied())
            if tied_rows.size:
                ids = self._ids
                values = self._density
                by_value = tied_rows[np.argsort(values[tied_rows], kind="stable")]
                rows = by_value.tolist()
                start = 0
                while start < len(rows):
                    stop = start + 1
                    value = values[rows[start]]
                    while stop < len(rows) and values[rows[stop]] == value:
                        stop += 1
                    group = rows[start:stop]
                    exact = sorted({densities[ids[row]] for row in group})
                    if len(exact) > 1:
                        sub = {fraction: k for k, fraction in enumerate(exact)}
                        for row in group:
                            refine[row] = sub[densities[ids[row]]]
                    start = stop
            self._refine = refine
        return self._refine

    def _ranks(self, refine=None):
        """Rank of every row under ``≺`` (greater rank wins).

        One lexsort over the key columns in the exact precedence of
        ``order.key``: density (refined by the exact column when given),
        then (incumbent order only) head status, then DAG name, then tie
        identifier -- the identifier components negated because smaller
        identifiers win.
        """
        cols = [-self._tie]
        if self._dag is not None:
            cols.append(-self._dag)
        if self._incumbent:
            cols.append(self._is_head)
        if refine is not None:
            cols.append(refine)
        cols.append(self._density)
        order = np.lexsort(tuple(cols))
        ranks = np.empty(len(order), dtype=np.int64)
        ranks[order] = np.arange(len(order), dtype=np.int64)
        return ranks


def _basic_parents(csr, ranks):
    """Vectorized Section 4.2 parent choice.

    Returns ``(parent_idx, self_wins)``: per-row parent row indices and
    the local-maximum mask.  Identical to ``choose_parent`` per node:
    a node points at itself iff its rank beats every neighbor's, else at
    its unique maximum-rank neighbor.
    """
    n = len(csr)
    indptr = csr.indptr
    indices = csr.indices
    parent_idx = np.arange(n, dtype=np.int64)
    row_max = np.full(n, -1, dtype=np.int64)
    if indices.size:
        deg = np.diff(indptr.astype(np.int64))
        nonempty = deg > 0
        nbr_rank = ranks[indices]
        row_max[nonempty] = np.maximum.reduceat(
            nbr_rank, indptr[:-1][nonempty].astype(np.int64))
        self_wins = ranks > row_max
        rows = np.repeat(np.arange(n, dtype=np.int64), deg)
        best_of_nonempty = indices[np.flatnonzero(
            nbr_rank == row_max[rows])].astype(np.int64)
        best = np.full(n, -1, dtype=np.int64)
        best[nonempty] = best_of_nonempty
        losers = ~self_wins
        parent_idx[losers] = best[losers]
    else:
        self_wins = np.ones(n, dtype=bool)
    return parent_idx, self_wins


def _two_hop_rows(csr, deg, row):
    """Rows within two hops of ``row`` (possibly with duplicates and
    ``row`` itself -- harmless for the membership tests below, which
    mirror the set semantics of ``Graph.k_neighborhood``)."""
    indptr = csr.indptr
    indices = csr.indices
    nbrs = indices[indptr[row]:indptr[row + 1]].astype(np.int64)
    if not nbrs.size:
        return nbrs
    counts = deg[nbrs]
    total = int(counts.sum())
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    take = (np.arange(total, dtype=np.int64)
            - np.repeat(starts, counts)
            + np.repeat(indptr[nbrs].astype(np.int64), counts))
    return np.concatenate((nbrs, indices[take].astype(np.int64)))


def _fusion_adjust(csr, ranks, parent_idx, self_wins):
    """Apply the Section 4.3 fusion rule in place.

    Same greedy as the oracle's ``_parents_with_fusion``: local maxima in
    decreasing rank order are confirmed unless a stronger confirmed head
    sits within two hops; a deposed maximum joins the strongest common
    neighbor it shares with its strongest dominator.
    """
    indptr = csr.indptr
    indices = csr.indices
    deg = np.diff(indptr.astype(np.int64))
    local_rows = np.flatnonzero(self_wins)
    order_desc = local_rows[np.argsort(ranks[local_rows])][::-1]
    confirmed = np.zeros(len(csr), dtype=bool)
    deposed = []
    for row in order_desc.tolist():
        reach = _two_hop_rows(csr, deg, row)
        if reach.size and bool(
                (confirmed[reach] & (ranks[reach] > ranks[row])).any()):
            deposed.append(row)
        else:
            confirmed[row] = True
    mark = np.zeros(len(csr), dtype=bool)
    for row in deposed:
        reach = _two_hop_rows(csr, deg, row)
        dominators = reach[confirmed[reach] & (ranks[reach] > ranks[row])]
        dominator = int(dominators[np.argmax(ranks[dominators])])
        nbrs = indices[indptr[row]:indptr[row + 1]].astype(np.int64)
        dom_closed = np.append(
            indices[indptr[dominator]:indptr[dominator + 1]].astype(np.int64),
            dominator)
        mark[dom_closed] = True
        common = nbrs[mark[nbrs]]
        mark[dom_closed] = False
        parent_idx[row] = int(common[np.argmax(ranks[common])])


register_engine("density")(IncrementalElection)
