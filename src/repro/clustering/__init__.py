"""Density-driven clustering: metric, orders, head rules, oracle, baselines."""

from repro.clustering.baselines import (
    degree_clustering,
    lowest_id_clustering,
    maxmin_clustering,
)
from repro.clustering.density import (
    ISOLATED_DENSITY,
    all_densities,
    all_densities_reference,
    density,
    density_bounds,
    edges_among,
)
from repro.clustering.heads import (
    best_neighbor,
    choose_parent,
    dominates_two_hop_heads,
    is_local_max,
    wants_headship,
)
from repro.clustering.incremental import IncrementalElection
from repro.clustering.oracle import compute_clustering
from repro.clustering.order import BasicOrder, IncumbentOrder, NodeView, make_order
from repro.clustering.result import Clustering

__all__ = [
    "BasicOrder",
    "Clustering",
    "ISOLATED_DENSITY",
    "IncrementalElection",
    "IncumbentOrder",
    "NodeView",
    "all_densities",
    "all_densities_reference",
    "best_neighbor",
    "choose_parent",
    "compute_clustering",
    "degree_clustering",
    "density",
    "density_bounds",
    "dominates_two_hop_heads",
    "edges_among",
    "is_local_max",
    "lowest_id_clustering",
    "make_order",
    "maxmin_clustering",
    "wants_headship",
]
