"""Centralized fixpoint oracle for the density-driven clustering.

The distributed protocol (``repro.protocols.clustering``) converges to a
unique fixpoint once every node's caches are accurate (Lemma 2: the
cluster-head value is deterministically determined by densities, local
topology, and the values of greater nodes).  This module computes that
fixpoint directly from a global view, which is what the paper's own
simulations measure in Tables 4 and 5 -- only the final structure matters
there, not the message schedule.

The oracle and the protocol share the per-node rules in
``repro.clustering.heads``; integration tests assert that the protocol's
stable state equals the oracle's output on the same topology.
"""

from repro.clustering.density import all_densities
from repro.clustering.heads import choose_parent, is_local_max
from repro.clustering.order import NodeView, make_order
from repro.clustering.result import Clustering
from repro.util.errors import ConfigurationError


def compute_clustering(graph, tie_ids=None, dag_ids=None, order="basic",
                       fusion=False, previous=None, densities=None):
    """Compute the stable clustering of ``graph``.

    Parameters
    ----------
    graph:
        The connectivity graph.
    tie_ids:
        ``dict[node, int]`` of globally unique "normal" identifiers used as
        the final tie-break; defaults to the nodes themselves (which must
        then be unique integers or otherwise totally ordered ints).
    dag_ids:
        Optional ``dict[node, int]`` of locally unique DAG names
        (Section 4.1).  When given, these dominate ``tie_ids`` in the order.
    order:
        ``"basic"`` (Section 4.2) or ``"incumbent"`` (Section 4.3, rule 1).
    fusion:
        Apply the 2-hop fusion rule of Section 4.3 (rule 2).
    previous:
        Who currently holds headship, consulted by the incumbent order:
        either a previous :class:`~repro.clustering.result.Clustering` or a
        plain set of head nodes.
    densities:
        Precomputed exact densities (``dict[node, Fraction]``); computed via
        :func:`~repro.clustering.density.all_densities` when omitted.

    Returns
    -------
    Clustering
    """
    order_obj = make_order(order) if isinstance(order, str) else order
    if densities is None:
        densities = all_densities(graph, exact=True)
    if tie_ids is None:
        tie_ids = {node: node for node in graph}
    _check_ids(graph, tie_ids, dag_ids)

    keys = _node_keys(graph, densities, tie_ids, dag_ids, order_obj, previous)
    return clustering_from_keys(graph, keys, fusion=fusion,
                                densities=densities, dag_ids=dag_ids,
                                order_name=order_obj.name)


def clustering_from_keys(graph, keys, fusion=False, densities=None,
                         dag_ids=None, order_name="custom"):
    """Clustering fixpoint under an arbitrary per-node key.

    ``keys`` maps every node to a comparable value; greater key wins.
    Keys must be *globally distinct* (append a unique identifier component
    to guarantee it).  This is the extension point used by the
    energy-aware order (``repro.energy``) and any custom metric the
    conclusion of the paper contemplates ("our contribution regarding the
    self-stabilization could be applied to several clusterization
    metrics").
    """
    if set(keys) != set(graph.nodes):
        raise ConfigurationError("keys must cover exactly the graph's nodes")
    if len(set(keys.values())) != len(keys):
        raise ConfigurationError("keys must be globally distinct")
    if fusion:
        parents = _parents_with_fusion(graph, keys)
    else:
        parents = _parents_basic(graph, keys)
    return Clustering(graph, parents, densities=densities, dag_ids=dag_ids,
                      order_name=order_name, fusion=fusion)


def _check_ids(graph, tie_ids, dag_ids):
    nodes = set(graph.nodes)
    if set(tie_ids) != nodes:
        raise ConfigurationError("tie_ids must cover exactly the graph's nodes")
    if len(set(tie_ids.values())) != len(tie_ids):
        raise ConfigurationError("tie_ids must be globally unique")
    if dag_ids is not None and set(dag_ids) != nodes:
        raise ConfigurationError("dag_ids must cover exactly the graph's nodes")


def _node_keys(graph, densities, tie_ids, dag_ids, order_obj, previous):
    keys = {}
    for node in graph:
        was_head = _was_head(previous, node)
        view = NodeView(
            node=node,
            density=densities[node],
            tie_id=tie_ids[node],
            dag_id=None if dag_ids is None else dag_ids[node],
            is_head=was_head,
        )
        keys[node] = order_obj.key(view)
    return keys


def _was_head(previous, node):
    if previous is None:
        return False
    if isinstance(previous, (set, frozenset)):
        return node in previous
    return node in previous.head_of and previous.is_head(node)


def _parents_basic(graph, keys):
    """F(p) = p if p is a 1-hop local maximum, else max≺ Np."""
    parents = {}
    for node in graph:
        neighbor_keys = {q: keys[q] for q in graph.neighbors(node)}
        parents[node] = choose_parent(node, keys[node], neighbor_keys)
    return parents


def _parents_with_fusion(graph, keys):
    """Fusion rule: surviving heads form a 2-hop independent set.

    The literal guard of Section 4.3 ("every node in my 2-neighborhood that
    currently claims headship precedes me") is self-referential through the
    evolving ``H`` values; its stable outcomes are exactly the
    greedy-by-decreasing-key resolutions: a local maximum keeps headship iff
    no already-confirmed head with a greater key sits within 2 hops.  A
    deposed local maximum joins the strongest common neighbor it shares with
    its strongest dominating head, which merges its cluster into the
    dominator's (the "fusion" the paper describes) and keeps parent chains
    acyclic.
    """
    local_maxima = {node for node in graph
                    if is_local_max(keys[node],
                                    (keys[q] for q in graph.neighbors(node)))}
    confirmed = set()
    for node in sorted(local_maxima, key=keys.get, reverse=True):
        two_hop = graph.k_neighborhood(node, 2)
        if not any(other in confirmed and keys[other] > keys[node]
                   for other in two_hop):
            confirmed.add(node)

    parents = {}
    for node in graph:
        neighbor_keys = {q: keys[q] for q in graph.neighbors(node)}
        if node in confirmed:
            parents[node] = node
        elif node in local_maxima:
            parents[node] = _fusion_parent(graph, keys, node, confirmed)
        elif neighbor_keys:
            parents[node] = max(neighbor_keys, key=neighbor_keys.get)
        else:
            # Isolated node that somehow was not a local maximum: impossible,
            # is_local_max is vacuously true; guard kept for clarity.
            parents[node] = node
    return parents


def _fusion_parent(graph, keys, deposed, confirmed):
    """Parent of a deposed local maximum: strongest common neighbor shared
    with its strongest confirmed dominator within 2 hops."""
    two_hop = graph.k_neighborhood(deposed, 2)
    dominators = [h for h in two_hop if h in confirmed and keys[h] > keys[deposed]]
    dominator = max(dominators, key=keys.get)
    common = graph.neighbors(deposed) & graph.closed_neighbors(dominator)
    return max(common, key=keys.get)
