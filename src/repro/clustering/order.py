"""The ``≺`` precedence orders of Section 4.

The paper defines ``p ≺ q  iff  d_p < d_q  or  (d_p = d_q and Id_q < Id_p)``
(Section 4.2) and a refined order where, on density ties, an incumbent
cluster-head beats a non-head before identifiers are consulted
(Section 4.3).

Implementation notes
--------------------
* Orders are realized as *key functions*: ``key(view)`` returns a tuple that
  sorts nodes so that ``p ≺ q  iff  key(p) < key(q)``.  Keys make the
  fixpoint arguments trivial (parent chains strictly increase in key).
* Identifiers are compared "smaller wins", hence the negated components.
* When DAG identifiers (Section 4.1) are in use they take precedence over
  the normal unique identifier; the normal identifier is kept as the final
  component so keys are *globally* distinct even though DAG names are only
  locally unique.  This totalizes the paper's order (DESIGN.md, deviation 1)
  without changing any comparison the protocol actually performs between
  1-hop neighbors.
* The refined order of Section 4.3 leaves two equal-density incumbent heads
  incomparable; :class:`IncumbentOrder` falls back to identifiers in that
  case (DESIGN.md, deviation 1).
"""

from dataclasses import dataclass
from typing import Optional

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class NodeView:
    """Everything the order needs to know about one node.

    ``dag_id`` is ``None`` when the DAG renaming layer is not in use.
    ``is_head`` reflects the node's *current* cluster-head status (used only
    by :class:`IncumbentOrder`).
    """

    node: object
    density: object
    tie_id: int
    dag_id: Optional[int] = None
    is_head: bool = False


class BasicOrder:
    """``p ≺ q iff d_p < d_q or (d_p = d_q and Id_q < Id_p)``."""

    name = "basic"

    def key(self, view):
        """Sort key: larger key means greater under ``≺`` ("wins")."""
        return (view.density,) + _id_components(view)

    def precedes(self, p_view, q_view):
        """True iff ``p ≺ q``."""
        key_p = self.key(p_view)
        key_q = self.key(q_view)
        if key_p == key_q:
            raise ConfigurationError(
                f"nodes {p_view.node!r} and {q_view.node!r} are "
                "indistinguishable under the order; tie identifiers must be "
                "unique")
        return key_p < key_q


class IncumbentOrder(BasicOrder):
    """Section 4.3 refinement: on density ties, incumbent heads win.

    ``p ≺ q`` iff ``d_p < d_q``, or densities tie and ``q`` is currently a
    head while ``p`` is not, or densities and head-status tie and ``q`` has
    the smaller identifier.  (The paper's relation leaves two equal-density
    heads incomparable; falling back to identifiers keeps ``≺`` total.)
    """

    name = "incumbent"

    def key(self, view):
        return (view.density, bool(view.is_head)) + _id_components(view)


def _id_components(view):
    """Identifier components of a key, smaller-identifier-wins.

    DAG names dominate; the globally unique tie identifier comes last so
    keys never collide even when two distant nodes share a DAG name.
    """
    if view.dag_id is None:
        return (-view.tie_id,)
    return (-view.dag_id, -view.tie_id)


def make_order(name):
    """Look up an order by name (``"basic"`` or ``"incumbent"``)."""
    orders = {BasicOrder.name: BasicOrder, IncumbentOrder.name: IncumbentOrder}
    if name not in orders:
        raise ConfigurationError(
            f"unknown order {name!r}; expected one of {sorted(orders)}")
    return orders[name]()
