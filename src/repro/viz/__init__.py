"""ASCII visualization of clusterings."""

from repro.viz.ascii import cluster_legend, render_clustering

__all__ = ["cluster_legend", "render_clustering"]
