"""ASCII rendering of topologies and clusterings (Figures 1-3).

Terminal-friendly stand-in for the paper's figures: nodes are plotted on a
character canvas at their geometric positions; every cluster gets a
letter, members are lowercase, cluster-heads uppercase.  Figure 2 ("one
giant cluster") and Figure 3 ("many compact clusters") are immediately
recognizable in this encoding.
"""

from repro.util.errors import ConfigurationError

_SYMBOLS = "abcdefghijklmnopqrstuvwxyz0123456789"


def render_clustering(topology, clustering, width=64, height=32):
    """Render a clustered topology to a multi-line string."""
    if not topology.positions:
        raise ConfigurationError("rendering needs node positions")
    if width < 2 or height < 2:
        raise ConfigurationError("canvas must be at least 2x2")
    symbol_of = _assign_symbols(clustering)
    canvas = [[" "] * width for _ in range(height)]
    xs = [p[0] for p in topology.positions.values()]
    ys = [p[1] for p in topology.positions.values()]
    span_x = max(max(xs) - min(xs), 1e-9)
    span_y = max(max(ys) - min(ys), 1e-9)
    for node, (x, y) in topology.positions.items():
        col = int((x - min(xs)) / span_x * (width - 1))
        row = int((y - min(ys)) / span_y * (height - 1))
        row = height - 1 - row  # y grows upward, rows grow downward
        symbol = symbol_of[clustering.head(node)]
        is_head = clustering.is_head(node)
        current = canvas[row][col]
        # Heads win canvas collisions so they stay visible.
        if current == " " or is_head:
            canvas[row][col] = symbol.upper() if is_head else symbol
    return "\n".join("".join(line).rstrip() for line in canvas)


def _assign_symbols(clustering):
    symbol_of = {}
    heads = sorted(clustering.heads, key=repr)
    for index, head in enumerate(heads):
        symbol_of[head] = _SYMBOLS[index % len(_SYMBOLS)]
    return symbol_of


def cluster_legend(clustering, limit=12):
    """A short textual legend: head -> cluster size, largest first."""
    sizes = sorted(((head, len(members))
                    for head, members in clustering.clusters.items()),
                   key=lambda item: -item[1])
    lines = [f"{clustering.cluster_count} clusters"]
    for head, size in sizes[:limit]:
        lines.append(f"  head {head!r}: {size} nodes")
    if len(sizes) > limit:
        lines.append(f"  ... and {len(sizes) - limit} more")
    return "\n".join(lines)
