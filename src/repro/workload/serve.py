"""Request serving: cached hierarchical routing plus the collector loop.

:func:`~repro.hierarchy.routing.hierarchical_route` decomposes every
route into three reusable pieces -- an overlay head path, one gateway
per overlay hop, and label-constrained intra-cluster legs -- and under
any realistic workload those pieces repeat across requests far more
often than whole (source, destination) pairs do.  :class:`CachedRouter`
exploits that: it memoizes

* the overlay BFS tree per source head (one dict BFS each, identical
  expansion order to :func:`~repro.hierarchy.routing.shortest_path`, so
  the chosen head path and hence the gateway sequence are bit-identical
  to the uncached routine);
* a compact **per-cluster sub-CSR** (member rows ascending, neighbor
  blocks filtered to the cluster) so intra-cluster parent fan-outs are
  sweeps over cluster-sized arrays instead of graph-sized ones.  The
  renumbering is monotonic and the kernel parent rule is "smallest row
  at the previous BFS level", so every unwound leg is bit-identical to
  the label-constrained full-graph search of
  :func:`~repro.hierarchy.routing._intra_cluster_path`;
* a dense all-pairs distance matrix per cluster -- one level-synchronous
  multi-source sweep (boolean matrix products) covering every leg the
  cluster will ever serve;
* the gateway orientation per ordered head pair;
* flat BFS distance arrays per *destination* (distances are symmetric,
  and skewed workloads concentrate destinations) in a bounded **LRU**
  cache -- hits move to the back of the eviction queue, so Zipf-skewed
  destination popularity keeps its hot set resident -- with hit/miss
  counters the workload family reports.

The routes it returns are therefore exactly
``hierarchical_route(hierarchy, source, destination)`` -- the test
suite asserts equality.  :meth:`CachedRouter.route_batch` is the high
throughput entry: it groups a request chunk by (source head,
destination head), resolves each group's head path, gateways and middle
legs once, covers each endpoint cluster's leg fan-out with one dense
multi-source sweep, and assembles per-request routes by tuple
concatenation -- emitting a :class:`ServedRequest` stream byte-identical
to the per-request loop.  :func:`serve_workload` consumes generator
batches directly and hands them to the collector pipeline's batched
``process_batch`` path.
"""

import math
from collections import OrderedDict, deque
from itertools import islice
from typing import NamedTuple, Optional

import numpy as np

from repro.collectors.base import DataCollector, register_collector
from repro.graph import kernels
from repro.graph.traversal import csr_bfs_distances
from repro.hierarchy.overlay import gateway_for
from repro.hierarchy.routing import UNREACHABLE
from repro.util.errors import ConfigurationError, TopologyError

#: Requests pulled from the generator per :meth:`CachedRouter.route_batch`
#: call in batched serving (bounds per-batch memory at any stream length).
BATCH_REQUESTS = 4096

#: Serving-loop modes accepted by :func:`serve_workload`.
SERVING_MODES = ("batch", "request")


class ServedRequest(NamedTuple):
    """The outcome of routing one request.

    ``route`` is the physical node path (``None`` when the hierarchy
    offers no route), ``head_path`` the overlay head sequence the route
    crossed (a 1-tuple for intra-cluster traffic), ``hops`` the route
    length in hops, and ``flat_hops`` the flat shortest-path length --
    ``None`` when stretch accounting was not requested for this event
    (see ``flat_every`` in :func:`serve_workload`).
    """

    request: object
    route: Optional[tuple]
    head_path: Optional[tuple]
    hops: Optional[int]
    flat_hops: Optional[int] = None


class CachedRouter:
    """Amortized hierarchical routing over one hierarchy snapshot.

    ``flat_cache`` bounds how many per-destination flat BFS distance
    arrays are kept (LRU eviction), so memory stays O(cache * n) even
    under uniform destination popularity.  ``flat_hits`` /
    ``flat_misses`` count cache outcomes for the workload report.
    """

    def __init__(self, hierarchy, flat_cache=256):
        level = hierarchy.physical
        self.hierarchy = hierarchy
        self.head_of = level.clustering.head_of
        self.overlay = level.overlay
        self.csr, self.labels = level.clustering.cluster_rows()
        self.index_of = self.csr.index_of
        self.ids = self.csr.ids
        self._subs = {}           # head row -> (indptr, indices, members)
        self._sub_lists = {}      # head row -> (indptr list, indices list)
        self._dense = {}          # head row -> all-pairs distance matrix
        self._leg_parents = {}    # reference path: full-graph parents
        self._leg_paths = {}      # (head, source, target) -> node tuple
        self._member_slices = None  # head row -> member row array
        self._overlay_trees = {}  # head -> {head: parent} BFS tree
        self._overlay_paths = {}  # (src head, dst head) -> head tuple|None
        self._gateways = {}       # (here, there) -> (exit node, entry node)
        self._flat = OrderedDict()  # destination -> distance array (LRU)
        self._flat_cache = flat_cache
        self.flat_hits = 0
        self.flat_misses = 0

    # -- overlay ------------------------------------------------------

    def _overlay_tree(self, head):
        """Full BFS parent tree over the overlay graph from ``head``.

        Same discovery order as :func:`repro.hierarchy.routing.
        shortest_path` (deque BFS in neighbor order), minus the early
        exit -- which never changes the parents of rows discovered
        before the target, so unwound paths match it exactly.
        """
        tree = self._overlay_trees.get(head)
        if tree is None:
            graph = self.overlay.topology.graph
            tree = {head: None}
            queue = deque([head])
            while queue:
                node = queue.popleft()
                for neighbor in graph.neighbors(node):
                    if neighbor not in tree:
                        tree[neighbor] = node
                        queue.append(neighbor)
            self._overlay_trees[head] = tree
        return tree

    def overlay_path(self, head_src, head_dst):
        """The head path ``hierarchical_route`` would walk, or ``None``."""
        key = (head_src, head_dst)
        if key not in self._overlay_paths:
            tree = self._overlay_tree(head_src)
            if head_dst not in tree:
                self._overlay_paths[key] = None
            else:
                path = [head_dst]
                while tree[path[-1]] is not None:
                    path.append(tree[path[-1]])
                path.reverse()
                self._overlay_paths[key] = tuple(path)
        return self._overlay_paths[key]

    # -- intra-cluster legs -------------------------------------------

    def _member_rows(self, head_row):
        """Member rows of every cluster, grouped once via one argsort."""
        slices = self._member_slices
        if slices is None:
            labels = self.labels
            order = np.argsort(labels, kind="stable").astype(np.int64)
            grouped = labels[order]
            starts = np.flatnonzero(
                np.r_[True, grouped[1:] != grouped[:-1]]
            )
            bounds = np.r_[starts, len(order)]
            slices = {
                int(grouped[lo]): order[lo:hi]
                for lo, hi in zip(bounds, bounds[1:])
            }
            self._member_slices = slices
        return slices[head_row]

    def _sub(self, head):
        """``(indptr, indices, members)`` of the cluster-induced sub-CSR.

        ``members`` are the cluster's rows ascending; local row ``k``
        is ``members[k]``.  Neighbor blocks keep their ascending order,
        so the kernels' smallest-previous-level-row parent rule picks
        the same physical nodes as the label-constrained full-graph
        sweep.
        """
        head_row = self.index_of[head]
        sub = self._subs.get(head_row)
        if sub is None:
            members = self._member_rows(head_row)
            csr = self.csr
            starts = csr.indptr[members].astype(np.int64)
            counts = csr.indptr[members + 1].astype(np.int64) - starts
            take = (
                np.arange(int(counts.sum()), dtype=np.int64)
                - np.repeat(np.cumsum(counts) - counts, counts)
                + np.repeat(starts, counts)
            )
            neigh = csr.indices[take].astype(np.int64)
            keep = self.labels[neigh] == head_row
            local = np.searchsorted(members, neigh[keep]).astype(np.int32)
            row_of = np.repeat(np.arange(len(members)), counts)
            kept_per_row = np.bincount(
                row_of[keep], minlength=len(members)
            ).astype(np.int32)
            indptr = np.zeros(len(members) + 1, dtype=np.int32)
            np.cumsum(kept_per_row, out=indptr[1:])
            sub = (indptr, local, members)
            self._subs[head_row] = sub
            self._sub_lists[head_row] = (indptr.tolist(), local.tolist())
        return sub

    def _cluster_distances(self, head):
        """Dense all-pairs hop distances of one cluster, lazily built.

        One level-synchronous **multi-source sweep** over the cluster's
        sub-CSR: every member is a source at once, frontiers advance as
        a boolean matrix product (BLAS) per level.  ``D[s, t]`` is the
        intra-cluster hop distance (``-1`` disconnected).  Distances
        are tie-break-free, so the matrix is exact; one build serves
        every request group that ever touches the cluster, replacing a
        BFS per (cluster, leg source).
        """
        head_row = self.index_of[head]
        dense = self._dense.get(head_row)
        if dense is None:
            indptr, indices, _members = self._sub(head)
            n = len(indptr) - 1
            adjacency = np.zeros((n, n), dtype=np.float32)
            adjacency[np.repeat(np.arange(n), np.diff(indptr)), indices] = 1.0
            dense = np.full((n, n), -1, dtype=np.int16)
            np.fill_diagonal(dense, 0)
            visited = np.eye(n, dtype=bool)
            frontier = np.eye(n, dtype=np.float32)
            level = 0
            while True:
                level += 1
                fresh = (frontier @ adjacency > 0.0) & ~visited
                if not fresh.any():
                    break
                dense[fresh] = level
                visited |= fresh
                frontier = fresh.astype(np.float32)
            self._dense[head_row] = dense
        return dense

    def _leg(self, head, source, target):
        """Shortest same-cluster path, = ``_intra_cluster_path`` exactly.

        The deterministic parent rule ("first discoverer in
        (sorted-frontier row, ascending CSR neighbor) order") is
        equivalent to "smallest-row neighbor at the previous BFS
        level", so given the cluster's dense distance matrix the path
        unwinds target -> source by scanning each row's ascending CSR
        block for the first neighbor one level closer to the source.
        The member renumbering is monotonic, hence the local rule picks
        exactly the nodes the full-graph label-constrained search
        picks.
        """
        key = (head, source, target)
        path = self._leg_paths.get(key)
        if path is None:
            head_row = self.index_of[head]
            _indptr, _indices, members = self._sub(head)
            ptr, ind = self._sub_lists[head_row]
            dense = self._cluster_distances(head)
            local_src = int(np.searchsorted(members, self.index_of[source]))
            local_tgt = int(np.searchsorted(members, self.index_of[target]))
            hops = int(dense[local_src, local_tgt])
            if hops < 0:
                raise TopologyError(
                    f"cluster of {head!r} is internally disconnected")
            from_src = dense[local_src].tolist()
            rows = [local_tgt]
            node = local_tgt
            for level in range(hops - 1, -1, -1):
                for p in range(ptr[node], ptr[node + 1]):
                    neighbor = ind[p]
                    if from_src[neighbor] == level:
                        node = neighbor
                        break
                rows.append(node)
            rows.reverse()
            ids = self.ids
            path = tuple(ids[members[row]] for row in rows)
            self._leg_paths[key] = path
        return path

    def _leg_reference(self, head, source, target):
        """:meth:`_leg` via the historical full-graph sweep.

        The pre-batching implementation: one label-constrained BFS over
        the *whole* graph per (cluster, leg source), cached, paths
        unwound per target.  Kept as the regression-gate reference --
        the serving benchmarks measure ``mode="request"`` against the
        batched path -- and as an independent oracle for the sub-CSR
        machinery (identical tuples land in the shared path cache).
        """
        key = (head, source, target)
        path = self._leg_paths.get(key)
        if path is None:
            src_row = self.index_of[source]
            cached = self._leg_parents.get((head, source))
            if cached is None:
                cached, _dist = kernels.bfs_parents(
                    self.csr.indptr, self.csr.indices, src_row,
                    labels=self.labels)
                self._leg_parents[(head, source)] = cached
            tgt_row = self.index_of[target]
            rows = kernels.unwind_path(cached, src_row, tgt_row)
            if rows.size == 0 and src_row != tgt_row:
                raise TopologyError(
                    f"cluster of {head!r} is internally disconnected")
            ids = self.ids
            path = tuple(ids[row] for row in rows)
            self._leg_paths[key] = path
        return path

    def _gateway(self, here, there):
        key = (here, there)
        gateway = self._gateways.get(key)
        if gateway is None:
            gateway = gateway_for(self.overlay, here, there)
            self._gateways[key] = gateway
        return gateway

    # -- routing ------------------------------------------------------

    def route(self, source, destination):
        """``(route, head_path)``; ``(None, None)`` when unroutable.

        ``route`` equals ``hierarchical_route(hierarchy, source,
        destination)``; ``head_path`` is the overlay head sequence the
        route crossed (``(head,)`` for intra-cluster pairs).
        """
        return self._route_impl(source, destination, self._leg)

    def route_reference(self, source, destination):
        """:meth:`route` over the historical full-graph leg sweeps.

        Byte-identical output; only the wall-clock differs.  This is
        the per-request loop the batched path is benchmarked against.
        """
        return self._route_impl(source, destination, self._leg_reference)

    def _route_impl(self, source, destination, leg):
        head_src = self.head_of[source]
        head_dst = self.head_of[destination]
        if head_src == head_dst:
            return list(leg(head_src, source, destination)), (head_src,)
        if self.overlay is None:
            return None, None
        head_path = self.overlay_path(head_src, head_dst)
        if head_path is None:
            return None, None
        route = [source]
        current = source
        for hop in range(len(head_path) - 1):
            here, there = head_path[hop], head_path[hop + 1]
            exit_node, entry_node = self._gateway(here, there)
            route.extend(leg(here, current, exit_node)[1:])
            route.append(entry_node)
            current = entry_node
        route.extend(leg(head_path[-1], current, destination)[1:])
        return route, head_path

    def _group_plan(self, head_src, head_dst):
        """``(head_path, exit1, middle, entry_last)`` for one head pair.

        ``middle`` is the fixed mid-route node run shared by every
        request of the (source head, destination head) group: the first
        entry gateway, every transit-cluster leg, down to the last
        cluster's entry gateway.  ``None`` when the pair is unroutable.
        """
        head_path = self.overlay_path(head_src, head_dst)
        if head_path is None:
            return None
        exit_node, entry_node = self._gateway(head_path[0], head_path[1])
        middle = [entry_node]
        current = entry_node
        for hop in range(1, len(head_path) - 1):
            here, there = head_path[hop], head_path[hop + 1]
            exit_mid, entry_mid = self._gateway(here, there)
            middle.extend(self._leg(here, current, exit_mid)[1:])
            middle.append(entry_mid)
            current = entry_mid
        return head_path, exit_node, tuple(middle), current

    def route_batch(self, requests, flat_every=0, first_index=0):
        """Serve a request chunk; a list of :class:`ServedRequest`.

        Requests are grouped by (source head, destination head); each
        group resolves its overlay head path, gateway sequence, and
        transit-cluster legs once, and one dense multi-source sweep per
        endpoint cluster (:meth:`_cluster_distances`, shared across
        groups) covers the whole leg fan-out, so per-request work
        reduces to the two endpoint legs plus tuple concatenation.  The
        returned stream -- order, routes, head paths, flat sampling --
        is byte-identical to calling :meth:`serve` per request with
        ``with_flat = flat_every and (first_index + i) % flat_every ==
        0``.
        """
        requests = list(requests)
        served = [None] * len(requests)
        groups = {}
        head_of = self.head_of
        for i, request in enumerate(requests):
            key = (head_of[request.source], head_of[request.destination])
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
            bucket.append(i)
        for (head_src, head_dst), bucket in groups.items():
            if head_src == head_dst:
                for i in bucket:
                    request = requests[i]
                    leg = self._leg(head_src, request.source,
                                    request.destination)
                    served[i] = ServedRequest(
                        request=request, route=list(leg),
                        head_path=(head_src,), hops=len(leg) - 1)
                continue
            plan = None if self.overlay is None else \
                self._group_plan(head_src, head_dst)
            if plan is None:
                for i in bucket:
                    served[i] = ServedRequest(
                        request=requests[i], route=None, head_path=None,
                        hops=None)
                continue
            head_path, exit_node, middle, entry_last = plan
            # One dense multi-source sweep per endpoint cluster (cached
            # across groups) covers every leg fan-out below.
            self._cluster_distances(head_src)
            self._cluster_distances(head_dst)
            for i in bucket:
                request = requests[i]
                first = self._leg(head_src, request.source, exit_node)
                last = self._leg(head_dst, entry_last, request.destination)
                route = list(first)
                route.extend(middle)
                route.extend(last[1:])
                served[i] = ServedRequest(
                    request=request, route=route, head_path=head_path,
                    hops=len(route) - 1)
        if flat_every:
            # Flat sampling runs in input order so the LRU flat cache
            # sees the exact per-request-loop access sequence.
            for i, event in enumerate(served):
                if (first_index + i) % flat_every == 0 \
                        and event.route is not None:
                    served[i] = event._replace(flat_hops=self.flat_hops(
                        event.request.source, event.request.destination))
        return served

    def flat_hops(self, source, destination):
        """Flat shortest-path hops, or ``None`` when disconnected.

        BFS arrays are keyed by *destination* (hop distances are
        symmetric), which is exactly the axis skewed workloads
        concentrate on; the cache is LRU so a skewed hot set stays
        resident.
        """
        dist = self._flat.get(destination)
        if dist is None:
            self.flat_misses += 1
            dist = csr_bfs_distances(self.csr, self.index_of[destination])
            self._flat[destination] = dist
            if len(self._flat) > self._flat_cache:
                self._flat.popitem(last=False)
        else:
            self.flat_hits += 1
            self._flat.move_to_end(destination)
        hops = int(dist[self.index_of[source]])
        return None if hops < 0 else hops

    def flat_cache_stats(self):
        """``{hits, misses, lookups, hit_ratio}`` of the flat-BFS cache."""
        lookups = self.flat_hits + self.flat_misses
        return {
            "hits": self.flat_hits,
            "misses": self.flat_misses,
            "lookups": lookups,
            "hit_ratio": self.flat_hits / lookups if lookups else math.nan,
        }

    def serve(self, request, with_flat=False, reference=False):
        """Route one request into a :class:`ServedRequest`.

        ``reference=True`` routes through :meth:`route_reference` (the
        historical full-graph per-request sweeps) -- identical outcome,
        reference wall-clock.
        """
        route_fn = self.route_reference if reference else self.route
        route, head_path = route_fn(request.source, request.destination)
        if route is None:
            return ServedRequest(request=request, route=None, head_path=None,
                                 hops=None)
        flat = None
        if with_flat:
            flat = self.flat_hops(request.source, request.destination)
        return ServedRequest(request=request, route=route,
                             head_path=head_path, hops=len(route) - 1,
                             flat_hops=flat)

    def route_stretch(self, source, destination):
        """``(hier hops, flat hops, stretch)``, = :func:`~repro.hierarchy.
        routing.route_stretch` exactly, riding every router cache.

        Disconnected pairs return the :data:`~repro.hierarchy.routing.
        UNREACHABLE` sentinel; a connected pair the hierarchy cannot
        route raises :class:`ConfigurationError` (internal
        inconsistency), exactly like the uncached routine.
        """
        if source not in self.index_of:
            raise TopologyError(f"source {source!r} not in graph")
        if destination not in self.index_of:
            raise TopologyError(f"destination {destination!r} not in graph")
        flat = self.flat_hops(source, destination)
        if flat is None:
            return UNREACHABLE
        if flat == 0:
            return (0, 0, 1.0)
        route, _head_path = self.route(source, destination)
        if route is None:
            raise ConfigurationError("hierarchy offers no route for the pair")
        hops = len(route) - 1
        return (hops, flat, hops / flat)


@register_collector
class RouterStatsCollector(DataCollector):
    """Router cache effectiveness: flat-BFS LRU hits over lookups.

    Not fed by the request stream -- :func:`serve_workload` absorbs the
    router's counters after each serving pass -- so ``process`` is a
    no-op and the partial state (two integers) merges exactly.
    """

    name = "router"

    def __init__(self):
        self.flat_hits = 0
        self.flat_misses = 0

    def process(self, served):
        return

    def process_batch(self, batch):
        return

    def absorb(self, hits, misses):
        self.flat_hits += hits
        self.flat_misses += misses

    def merge(self, other):
        self._check_mergeable(other)
        self.flat_hits += other.flat_hits
        self.flat_misses += other.flat_misses
        return self

    def results(self):
        lookups = self.flat_hits + self.flat_misses
        return {
            "flat_lookups": lookups,
            "flat_hits": self.flat_hits,
            "flat_misses": self.flat_misses,
            "flat_hit_ratio": self.flat_hits / lookups if lookups
            else math.nan,
        }


def _router_stats_sink(collector):
    """The :class:`RouterStatsCollector` inside ``collector``, if any."""
    if isinstance(collector, RouterStatsCollector):
        return collector
    members = getattr(collector, "collectors", None)
    if members is not None:
        for member in members:
            if isinstance(member, RouterStatsCollector):
                return member
    return None


def serve_workload(hierarchy, requests, collector, flat_every=1,
                   router=None, mode="batch", batch_size=BATCH_REQUESTS):
    """Serve a request stream through ``hierarchy`` into ``collector``.

    ``flat_every=k`` computes the flat shortest-path length (the
    path-stretch denominator) for every ``k``-th request only --
    stretch is a sampled statistic, latency/load are exact over all
    requests.  ``flat_every=0`` disables stretch accounting entirely.

    ``mode="batch"`` (the default) consumes the generator in
    ``batch_size`` chunks through :meth:`CachedRouter.route_batch` and
    the collectors' ``process_batch``; ``mode="request"`` is the
    historical per-request loop.  The collector ends in the identical
    state either way (the test suite and the CI smoke assert it).
    Returns the collector.
    """
    if mode not in SERVING_MODES:
        raise ConfigurationError(
            f"unknown serving mode {mode!r}; expected one of {SERVING_MODES}")
    if router is None:
        router = CachedRouter(hierarchy)
    sink = _router_stats_sink(collector)
    hits0, misses0 = router.flat_hits, router.flat_misses
    if mode == "request":
        index = 0
        for request in requests:
            with_flat = bool(flat_every) and index % flat_every == 0
            collector.process(router.serve(request, with_flat=with_flat,
                                           reference=True))
            index += 1
    else:
        index = 0
        stream = iter(requests)
        while True:
            batch = list(islice(stream, batch_size))
            if not batch:
                break
            served = router.route_batch(batch, flat_every=flat_every,
                                        first_index=index)
            collector.process_batch(served)
            index += len(batch)
    if sink is not None:
        sink.absorb(router.flat_hits - hits0, router.flat_misses - misses0)
    return collector
