"""Request serving: cached hierarchical routing plus the collector loop.

:func:`~repro.hierarchy.routing.hierarchical_route` decomposes every
route into three reusable pieces -- an overlay head path, one gateway
per overlay hop, and label-constrained intra-cluster legs -- and under
any realistic workload those pieces repeat across requests far more
often than whole (source, destination) pairs do.  :class:`CachedRouter`
exploits that: it memoizes

* the overlay BFS tree per source head (one dict BFS each, identical
  expansion order to :func:`~repro.hierarchy.routing.shortest_path`, so
  the chosen head path and hence the gateway sequence are bit-identical
  to the uncached routine);
* the intra-cluster parent fan-out per (cluster, leg source) via one
  :func:`~repro.graph.traversal.csr_bfs_parents` sweep (same
  deterministic parent rule as
  :func:`~repro.graph.traversal.csr_shortest_path`, so every unwound
  leg equals the uncached leg);
* the gateway orientation per ordered head pair;
* flat BFS distance arrays per *destination* (distances are symmetric,
  and skewed workloads concentrate destinations) in a bounded FIFO
  cache, for path-stretch accounting.

The routes it returns are therefore exactly
``hierarchical_route(hierarchy, source, destination)`` -- the test
suite asserts equality -- at a per-request cost that amortizes to a few
dict lookups.  :func:`serve_workload` is the serving loop: route each
request, hand the outcome to the collector pipeline.
"""

from collections import OrderedDict, deque
from typing import NamedTuple, Optional

from repro.graph.traversal import csr_bfs_distances, csr_bfs_parents
from repro.hierarchy.overlay import gateway_for
from repro.util.errors import TopologyError


class ServedRequest(NamedTuple):
    """The outcome of routing one request.

    ``route`` is the physical node path (``None`` when the hierarchy
    offers no route), ``head_path`` the overlay head sequence the route
    crossed (a 1-tuple for intra-cluster traffic), ``hops`` the route
    length in hops, and ``flat_hops`` the flat shortest-path length --
    ``None`` when stretch accounting was not requested for this event
    (see ``flat_every`` in :func:`serve_workload`).
    """

    request: object
    route: Optional[tuple]
    head_path: Optional[tuple]
    hops: Optional[int]
    flat_hops: Optional[int] = None


class CachedRouter:
    """Amortized hierarchical routing over one hierarchy snapshot.

    ``flat_cache`` bounds how many per-destination flat BFS distance
    arrays are kept (FIFO eviction), so memory stays O(cache * n) even
    under uniform destination popularity.
    """

    def __init__(self, hierarchy, flat_cache=256):
        level = hierarchy.physical
        self.hierarchy = hierarchy
        self.head_of = level.clustering.head_of
        self.overlay = level.overlay
        self.csr, self.labels = level.clustering.cluster_rows()
        self.index_of = self.csr.index_of
        self.ids = self.csr.ids
        self._leg_parents = {}    # (head, leg source) -> {row: parent row}
        self._leg_paths = {}      # (head, source, target) -> node tuple
        self._member_rows = {}    # head row -> member row list
        self._overlay_trees = {}  # head -> {head: parent} BFS tree
        self._overlay_paths = {}  # (src head, dst head) -> head tuple|None
        self._gateways = {}       # (here, there) -> (exit node, entry node)
        self._flat = OrderedDict()  # destination -> distance array
        self._flat_cache = flat_cache

    # -- overlay ------------------------------------------------------

    def _overlay_tree(self, head):
        """Full BFS parent tree over the overlay graph from ``head``.

        Same discovery order as :func:`repro.hierarchy.routing.
        shortest_path` (deque BFS in neighbor order), minus the early
        exit -- which never changes the parents of rows discovered
        before the target, so unwound paths match it exactly.
        """
        tree = self._overlay_trees.get(head)
        if tree is None:
            graph = self.overlay.topology.graph
            tree = {head: None}
            queue = deque([head])
            while queue:
                node = queue.popleft()
                for neighbor in graph.neighbors(node):
                    if neighbor not in tree:
                        tree[neighbor] = node
                        queue.append(neighbor)
            self._overlay_trees[head] = tree
        return tree

    def overlay_path(self, head_src, head_dst):
        """The head path ``hierarchical_route`` would walk, or ``None``."""
        key = (head_src, head_dst)
        if key not in self._overlay_paths:
            tree = self._overlay_tree(head_src)
            if head_dst not in tree:
                self._overlay_paths[key] = None
            else:
                path = [head_dst]
                while tree[path[-1]] is not None:
                    path.append(tree[path[-1]])
                path.reverse()
                self._overlay_paths[key] = tuple(path)
        return self._overlay_paths[key]

    # -- intra-cluster legs -------------------------------------------

    def _leg(self, head, source, target):
        """Shortest same-cluster path, = ``_intra_cluster_path`` exactly."""
        key = (head, source, target)
        path = self._leg_paths.get(key)
        if path is None:
            source_row = self.index_of[source]
            parents = self._leg_parents.get((head, source))
            if parents is None:
                head_row = self.index_of[head]
                members = self._member_rows.get(head_row)
                if members is None:
                    members = [
                        int(row) for row in
                        (self.labels == head_row).nonzero()[0]]
                    self._member_rows[head_row] = members
                parent_rows, _dist = csr_bfs_parents(
                    self.csr, source_row, labels=self.labels)
                parents = {row: int(parent_rows[row]) for row in members}
                self._leg_parents[(head, source)] = parents
            rows = [self.index_of[target]]
            while rows[-1] != source_row:
                parent = parents[rows[-1]]
                if parent < 0:
                    raise TopologyError(
                        f"cluster of {head!r} is internally disconnected")
                rows.append(parent)
            rows.reverse()
            ids = self.ids
            path = tuple(ids[row] for row in rows)
            self._leg_paths[key] = path
        return path

    def _gateway(self, here, there):
        key = (here, there)
        gateway = self._gateways.get(key)
        if gateway is None:
            gateway = gateway_for(self.overlay, here, there)
            self._gateways[key] = gateway
        return gateway

    # -- routing ------------------------------------------------------

    def route(self, source, destination):
        """``(route, head_path)``; ``(None, None)`` when unroutable.

        ``route`` equals ``hierarchical_route(hierarchy, source,
        destination)``; ``head_path`` is the overlay head sequence the
        route crossed (``(head,)`` for intra-cluster pairs).
        """
        head_src = self.head_of[source]
        head_dst = self.head_of[destination]
        if head_src == head_dst:
            return list(self._leg(head_src, source, destination)), (head_src,)
        if self.overlay is None:
            return None, None
        head_path = self.overlay_path(head_src, head_dst)
        if head_path is None:
            return None, None
        route = [source]
        current = source
        for hop in range(len(head_path) - 1):
            here, there = head_path[hop], head_path[hop + 1]
            exit_node, entry_node = self._gateway(here, there)
            route.extend(self._leg(here, current, exit_node)[1:])
            route.append(entry_node)
            current = entry_node
        route.extend(self._leg(head_path[-1], current, destination)[1:])
        return route, head_path

    def flat_hops(self, source, destination):
        """Flat shortest-path hops, or ``None`` when disconnected.

        BFS arrays are keyed by *destination* (hop distances are
        symmetric), which is exactly the axis skewed workloads
        concentrate on.
        """
        dist = self._flat.get(destination)
        if dist is None:
            dist = csr_bfs_distances(self.csr, self.index_of[destination])
            self._flat[destination] = dist
            if len(self._flat) > self._flat_cache:
                self._flat.popitem(last=False)
        hops = int(dist[self.index_of[source]])
        return None if hops < 0 else hops

    def serve(self, request, with_flat=False):
        """Route one request into a :class:`ServedRequest`."""
        route, head_path = self.route(request.source, request.destination)
        if route is None:
            return ServedRequest(request=request, route=None, head_path=None,
                                 hops=None)
        flat = None
        if with_flat:
            flat = self.flat_hops(request.source, request.destination)
        return ServedRequest(request=request, route=route,
                             head_path=head_path, hops=len(route) - 1,
                             flat_hops=flat)


def serve_workload(hierarchy, requests, collector, flat_every=1,
                   router=None):
    """Serve a request stream through ``hierarchy`` into ``collector``.

    ``flat_every=k`` computes the flat shortest-path length (the
    path-stretch denominator) for every ``k``-th request only --
    stretch is a sampled statistic, latency/load are exact over all
    requests.  ``flat_every=0`` disables stretch accounting entirely.
    Returns the collector.
    """
    if router is None:
        router = CachedRouter(hierarchy)
    index = 0
    for request in requests:
        with_flat = bool(flat_every) and index % flat_every == 0
        collector.process(router.serve(request, with_flat=with_flat))
        index += 1
    return collector
