"""Traffic-serving workloads over the cluster hierarchy.

Request *generators* (:mod:`repro.workload.generators`) produce lazy
streams of :class:`~repro.workload.generators.Request` events -- Poisson
arrivals with Zipf destination popularity, trace replay, YCSB-style
read/write mixes -- so a million-event schedule never materializes in
RAM.  The *serving* side (:mod:`repro.workload.serve`) routes every
request through the hierarchy with :class:`~repro.workload.serve.
CachedRouter` (bit-identical paths to
:func:`~repro.hierarchy.routing.hierarchical_route`, amortized across
requests) and feeds the per-request outcomes to a
:class:`~repro.collectors.base.DataCollector` pipeline.
"""

from repro.workload.generators import (
    Request,
    ZipfPopularity,
    poisson_requests,
    trace_requests,
    ycsb_requests,
)
from repro.workload.serve import CachedRouter, ServedRequest, serve_workload

__all__ = [
    "CachedRouter",
    "Request",
    "ServedRequest",
    "ZipfPopularity",
    "poisson_requests",
    "serve_workload",
    "trace_requests",
    "ycsb_requests",
]
