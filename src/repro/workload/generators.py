"""Lazy request-stream generators for the traffic-serving layer.

Every generator yields :class:`Request` events one at a time and draws
its randomness in fixed-size numpy batches, so memory stays bounded by
the batch size (a few thousand events) no matter how long the schedule
is -- a 10^6-request schedule never exists as a list.  Streams are a
pure function of their ``rng``: replaying with an equally seeded
generator reproduces the exact event sequence.

Three families, mirroring the shapes the serving literature uses:

* :func:`poisson_requests` -- Poisson arrivals (exponential
  inter-arrival gaps at ``rate`` events/second), uniformly random
  sources, destinations drawn uniformly or from a
  :class:`ZipfPopularity` (the skewed content/aggregator-popularity
  case);
* :func:`ycsb_requests` -- the YCSB-style read/write mix: each event is
  a read with probability ``read_fraction``, addressed to the owner of
  a Zipf-ranked key (keys are the nodes themselves: one object per
  node);
* :func:`trace_requests` -- replay of recorded ``(time, source,
  destination[, op[, size]])`` events from any iterable, validated
  lazily.
"""

from typing import NamedTuple

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng

READ = "read"
WRITE = "write"

# Randomness is drawn in batches of this many events; the only
# per-stream state is the current batch, so generator memory is O(1) in
# the schedule length.
BATCH = 8192


class Request(NamedTuple):
    """One serving event.

    ``time`` is seconds since the stream's start, ``source`` /
    ``destination`` are node identifiers, ``op`` is ``"read"`` or
    ``"write"``, ``size`` an abstract payload size (bytes; informative
    only -- the collectors count requests and hops, not bytes).
    """

    time: float
    source: int
    destination: int
    op: str = READ
    size: int = 1


class ZipfPopularity:
    """Zipf(``alpha``) popularity over a ranked item population.

    Item ``rank`` (0-based) carries weight ``1 / (rank + 1) ** alpha``;
    ``alpha = 0`` degenerates to uniform, ``alpha ~ 0.8-1.2`` covers the
    skews measured for web/CDN/IIoT traffic.  Sampling is one uniform
    draw plus a ``searchsorted`` against the precomputed CDF, so batch
    draws stay vectorized.
    """

    def __init__(self, items, alpha):
        self.items = np.asarray(list(items))
        if self.items.size == 0:
            raise ConfigurationError("popularity needs at least one item")
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)
        weights = 1.0 / np.power(
            np.arange(1, self.items.size + 1, dtype=float), self.alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample_ranks(self, rng, size):
        """``size`` item *ranks* (0-based), most popular = rank 0."""
        return np.searchsorted(self._cdf, rng.random(size), side="right")

    def sample(self, rng, size):
        """``size`` items drawn by popularity."""
        return self.items[self.sample_ranks(rng, size)]

    def pmf(self):
        """The exact probability of each rank (diagnostics/tests)."""
        probs = np.empty_like(self._cdf)
        probs[0] = self._cdf[0]
        probs[1:] = np.diff(self._cdf)
        return probs


def _node_array(nodes):
    nodes = np.asarray(list(nodes))
    if nodes.size == 0:
        raise ConfigurationError("a workload needs at least one node")
    return nodes


def poisson_requests(nodes, count, rng=None, rate=100.0, popularity=None,
                     op=READ, size=1, batch=BATCH):
    """Lazy Poisson-arrival request stream over ``nodes``.

    Arrivals are a Poisson process of ``rate`` events/second (timestamps
    are the cumulative exponential gaps); sources are uniform over
    ``nodes``; destinations are uniform too unless a
    :class:`ZipfPopularity` (or any object with ``sample(rng, size)``)
    is given.  Source and destination are drawn independently, so
    self-addressed requests occur with probability ~1/n and serve as
    zero-hop events.  Yields exactly ``count`` requests.
    """
    nodes = _node_array(nodes)
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    rng = as_rng(rng)
    clock = 0.0
    remaining = count
    while remaining > 0:
        draw = min(remaining, batch)
        gaps = rng.exponential(1.0 / rate, size=draw)
        times = clock + np.cumsum(gaps)
        clock = float(times[-1])
        sources = nodes[rng.integers(0, nodes.size, size=draw)]
        if popularity is None:
            destinations = nodes[rng.integers(0, nodes.size, size=draw)]
        else:
            destinations = popularity.sample(rng, draw)
        for i in range(draw):
            yield Request(time=float(times[i]), source=sources[i].item(),
                          destination=destinations[i].item(), op=op,
                          size=size)
        remaining -= draw


def ycsb_requests(nodes, count, rng=None, rate=100.0, read_fraction=0.95,
                  alpha=0.8, popularity=None, size=1, batch=BATCH):
    """YCSB-style read/write mix against node-owned objects.

    Each node owns one object, ranked by its position in ``nodes`` (rank
    0 = most popular) under Zipf(``alpha``) unless an explicit
    ``popularity`` is supplied.  Every event reads the object's owner
    with probability ``read_fraction`` and writes it otherwise --
    ``read_fraction=0.95`` is YCSB workload B, ``0.5`` workload A.
    Sources are uniform; arrivals are Poisson at ``rate``.
    """
    nodes = _node_array(nodes)
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigurationError(
            f"read_fraction must be in [0, 1], got {read_fraction}")
    rng = as_rng(rng)
    if popularity is None:
        popularity = ZipfPopularity(nodes, alpha)
    clock = 0.0
    remaining = count
    while remaining > 0:
        draw = min(remaining, batch)
        gaps = rng.exponential(1.0 / rate, size=draw)
        times = clock + np.cumsum(gaps)
        clock = float(times[-1])
        sources = nodes[rng.integers(0, nodes.size, size=draw)]
        destinations = popularity.sample(rng, draw)
        reads = rng.random(draw) < read_fraction
        for i in range(draw):
            yield Request(time=float(times[i]), source=sources[i].item(),
                          destination=destinations[i].item(),
                          op=READ if reads[i] else WRITE, size=size)
        remaining -= draw


def trace_requests(events):
    """Replay recorded events as a lazy :class:`Request` stream.

    ``events`` is any iterable of :class:`Request` instances or tuples
    ``(time, source, destination[, op[, size]])``.  Timestamps must be
    non-decreasing; violations raise :class:`ConfigurationError` at the
    offending event (lazily -- the trace is never materialized).
    """
    last = None
    for event in events:
        request = event if isinstance(event, Request) else Request(*event)
        if last is not None and request.time < last:
            raise ConfigurationError(
                f"trace times must be non-decreasing; {request.time} "
                f"follows {last}")
        last = request.time
        yield request
