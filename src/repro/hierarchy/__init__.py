"""Hierarchical clustering (the paper's announced future work)."""

from repro.hierarchy.hierarchy import (
    DEFAULT_MAX_LEVELS,
    Hierarchy,
    HierarchyLevel,
    build_hierarchy,
)
from repro.hierarchy.overlay import Overlay, gateway_for, overlay_topology
from repro.hierarchy.routing import (
    hierarchical_route,
    route_stretch,
    shortest_path,
)

__all__ = [
    "DEFAULT_MAX_LEVELS",
    "Hierarchy",
    "HierarchyLevel",
    "Overlay",
    "build_hierarchy",
    "gateway_for",
    "hierarchical_route",
    "overlay_topology",
    "route_stretch",
    "shortest_path",
]
