"""Hierarchical routing over a 2-level cluster hierarchy.

The up-over-down scheme every cluster-based routing paper assumes:

1. route inside the source's cluster to the gateway toward the next
   cluster on the overlay path;
2. cross the gateway edge;
3. repeat along the overlay path computed between the source's and
   destination's heads;
4. finish inside the destination's cluster.

Intra-cluster legs follow shortest paths in the cluster-induced subgraph,
overlay legs follow shortest paths in the overlay graph.  The *stretch*
(hierarchical length / flat shortest-path length) quantifies what the
routing-state savings cost; the scalability experiment reports both.

Traversal-heavy pieces ride the CSR kernel: the flat BFS distance of
:func:`route_stretch` is one array-frontier sweep, and the intra-cluster
legs are label-constrained path searches over the full-graph snapshot
(sharing the clustering's cached per-row labels), so no induced subgraph
is ever materialized.  Leg *lengths* are shortest-path lengths between
fixed endpoints, a tie-break-free quantity, so every reported hop count
and stretch is unchanged.  The overlay leg keeps the dict-backend
:func:`shortest_path`: overlay graphs are tiny, and preserving its
historical tie-breaks keeps the chosen head path (and hence the gateway
sequence) bit-identical.
"""

import math
from collections import deque

from repro.graph.traversal import csr_bfs_distances, csr_shortest_path
from repro.hierarchy.overlay import gateway_for
from repro.util.errors import ConfigurationError, TopologyError

#: Sentinel returned by :func:`route_stretch` for a disconnected pair:
#: infinitely many hops on both paths, infinite stretch.  Callers that
#: sample pairs filter with ``math.isinf(stretch)`` instead of catching
#: an exception.
UNREACHABLE = (math.inf, math.inf, math.inf)


def shortest_path(graph, source, target):
    """One shortest path (as a node list) or None when disconnected."""
    if source not in graph or target not in graph:
        raise TopologyError("endpoints must be in the graph")
    if source == target:
        return [source]
    parents = {source: None}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in parents:
                parents[neighbor] = node
                if neighbor == target:
                    return _unwind(parents, target)
                queue.append(neighbor)
    return None


def _unwind(parents, target):
    path = [target]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def _intra_cluster_path(level, head, source, target):
    """Shortest same-cluster path, label-constrained on the full-graph CSR."""
    csr, labels = level.clustering.cluster_rows()
    index_of = csr.index_of
    if source not in index_of or target not in index_of:
        raise TopologyError("endpoints must be in the graph")
    head_row = index_of.get(head)
    if head_row is None or labels[index_of[source]] != head_row \
            or labels[index_of[target]] != head_row:
        # Same contract as routing inside induced_subgraph(members(head)):
        # endpoints outside the cluster are errors, not detours.
        raise TopologyError("endpoints must be in the graph")
    rows = csr_shortest_path(csr, index_of[source], index_of[target],
                             labels=labels)
    if rows is None:
        raise TopologyError(
            f"cluster of {head!r} is internally disconnected")
    return [csr.ids[row] for row in rows]


def hierarchical_route(hierarchy, source, destination):
    """Physical node path from ``source`` to ``destination``; None when the
    overlay offers no route (disconnected network).

    Uses the level-0 clustering and the level-0 overlay; deeper levels
    refine the overlay search space but the expansion below is already the
    canonical 2-level scheme.
    """
    level = hierarchy.physical
    if level.overlay is None and \
            level.clustering.head(source) != level.clustering.head(destination):
        return None
    head_src = level.clustering.head(source)
    head_dst = level.clustering.head(destination)
    if head_src == head_dst:
        return _intra_cluster_path(level, head_src, source, destination)

    overlay = level.overlay
    head_path = shortest_path(overlay.topology.graph, head_src, head_dst)
    if head_path is None:
        return None

    route = [source]
    current = source
    for hop in range(len(head_path) - 1):
        here, there = head_path[hop], head_path[hop + 1]
        exit_node, entry_node = gateway_for(overlay, here, there)
        leg = _intra_cluster_path(level, here, current, exit_node)
        route.extend(leg[1:])
        route.append(entry_node)
        current = entry_node
    tail = _intra_cluster_path(level, head_dst, current, destination)
    route.extend(tail[1:])
    return route


def route_stretch(hierarchy, source, destination):
    """``(hierarchical hops, flat shortest hops, stretch)`` for one pair.

    Both endpoints must be physical nodes (:class:`TopologyError`
    otherwise).  A *disconnected* pair returns the documented
    :data:`UNREACHABLE` sentinel ``(inf, inf, inf)`` -- an expected
    outcome on sparse deployments, not an error.  A connected pair for
    which the hierarchy offers no route would be an internal
    inconsistency and still raises :class:`ConfigurationError`.
    """
    graph = hierarchy.physical.topology.graph
    if source not in graph:
        raise TopologyError(f"source {source!r} not in graph")
    if destination not in graph:
        raise TopologyError(f"destination {destination!r} not in graph")
    csr = graph.to_csr()
    dist = csr_bfs_distances(csr, csr.index_of[source])
    target_row = csr.index_of[destination]
    if dist[target_row] < 0:
        return UNREACHABLE
    flat = int(dist[target_row])
    if flat == 0:
        return (0, 0, 1.0)
    route = hierarchical_route(hierarchy, source, destination)
    if route is None:
        raise ConfigurationError("hierarchy offers no route for the pair")
    hops = len(route) - 1
    return (hops, flat, hops / flat)
