"""The cluster overlay graph: level l+1's topology.

Once clusters exist, hierarchical routing treats each cluster as one
super-node headed by its cluster-head.  Two heads are adjacent in the
overlay iff some member of one cluster is a physical neighbor of some
member of the other; the physical edge realizing the adjacency is the
*gateway* used to expand overlay hops back into physical paths.

This is the substrate for the paper's announced future work ("we also
plan to study hierarchical self-stabilization algorithms") and for the
scalability motivation of its introduction.
"""

from dataclasses import dataclass

from repro.graph.generators import Topology
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Overlay:
    """The overlay topology plus the gateway realizing each overlay edge.

    ``gateways`` maps a frozenset ``{head_a, head_b}`` to a physical edge
    ``(u, v)`` with ``u`` in ``head_a``'s cluster and ``v`` in
    ``head_b``'s (orientation normalized to the frozenset's sorted order).
    """

    topology: Topology
    gateways: dict


def overlay_topology(topology, clustering):
    """Build the overlay over ``clustering``'s heads.

    Head positions are inherited from the physical topology when known;
    head identifiers keep their physical tie identifiers, so another round
    of density clustering applies verbatim on the overlay.
    """
    if set(clustering.head_of) != set(topology.graph.nodes):
        raise ConfigurationError(
            "clustering does not cover the topology's nodes")
    # One hoisted dict lookup per endpoint; the edge scan stays in
    # ``Graph.edges`` order, which defines each overlay edge's gateway as
    # the first physical edge realizing it.
    head_of = clustering.head_of
    gateways = {}
    overlay_edges = []
    for u, v in topology.graph.edges:
        head_u = head_of[u]
        head_v = head_of[v]
        if head_u == head_v:
            continue
        key = frozenset((head_u, head_v))
        if key not in gateways:
            overlay_edges.append((head_u, head_v))
            # Normalize orientation: first endpoint belongs to min(key).
            first = min(key, key=repr)
            if head_u == first:
                gateways[key] = (u, v)
            else:
                gateways[key] = (v, u)
    graph = Graph(nodes=clustering.heads)
    graph.add_edges_from(overlay_edges)
    positions = None
    if topology.positions:
        positions = {head: topology.positions[head]
                     for head in clustering.heads}
    ids = {head: topology.ids[head] for head in clustering.heads}
    overlay = Topology(graph, positions=positions, ids=ids,
                       radius=topology.radius)
    return Overlay(topology=overlay, gateways=gateways)


def gateway_for(overlay, head_a, head_b):
    """The physical edge ``(u, v)`` realizing the overlay edge, oriented
    so ``u`` lies in ``head_a``'s cluster."""
    key = frozenset((head_a, head_b))
    if key not in overlay.gateways:
        raise ConfigurationError(
            f"heads {head_a!r} and {head_b!r} are not overlay neighbors")
    u, v = overlay.gateways[key]
    first = min(key, key=repr)
    if head_a == first:
        return (u, v)
    return (v, u)
