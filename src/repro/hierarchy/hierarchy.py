"""Multi-level cluster hierarchies.

Level 0 is the physical topology; level ``l + 1`` is the density-driven
clustering of level ``l``'s overlay.  Construction stops when one cluster
spans the level (or a level cap is hit).  Each physical node then has a
*hierarchical address*: the chain of heads it belongs to, one per level --
the structure hierarchical routing schemes (the paper's refs [14], [17])
assume some clustering layer provides.
"""

from dataclasses import dataclass

from repro.clustering.oracle import compute_clustering
from repro.naming.assign import assign_dag_ids
from repro.hierarchy.overlay import overlay_topology
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng

DEFAULT_MAX_LEVELS = 8


@dataclass(frozen=True)
class HierarchyLevel:
    """One level: its topology, its clustering, and the overlay above it."""

    index: int
    topology: object
    clustering: object
    overlay: object  # None for the top level


class Hierarchy:
    """An immutable stack of clustered levels over a physical topology."""

    def __init__(self, levels):
        if not levels:
            raise ConfigurationError("a hierarchy needs at least one level")
        self.levels = list(levels)

    @property
    def depth(self):
        """Number of clustered levels."""
        return len(self.levels)

    @property
    def physical(self):
        """The level-0 (physical) layer."""
        return self.levels[0]

    def heads_at(self, level):
        """The cluster-heads of the given level."""
        return self.levels[level].clustering.heads

    def address(self, node):
        """The hierarchical address: ``[node, H_0(node), H_1(...), ...]``.

        Consecutive duplicates collapse (a head addresses itself at the
        next level), so the address ends at the node's top-level head.
        """
        if node not in self.levels[0].topology.graph:
            raise ConfigurationError(f"{node!r} is not a physical node")
        chain = [node]
        current = node
        for level in self.levels:
            head = level.clustering.head(current)
            if head != chain[-1]:
                chain.append(head)
            current = head
        return chain

    def common_level(self, a, b):
        """The smallest level at which ``a`` and ``b`` share a head.

        Returns ``None`` when they never merge (disconnected networks).
        """
        current_a, current_b = a, b
        for index, level in enumerate(self.levels):
            current_a = level.clustering.head(current_a)
            current_b = level.clustering.head(current_b)
            if current_a == current_b:
                return index
        return None

    def routing_state(self, node):
        """Entries a hierarchical routing table at ``node`` holds.

        Standard cluster-routing accounting: a node keeps one route per
        other member of its cluster at every level it participates in (a
        node participates at level ``l + 1`` iff it heads its level-``l``
        cluster).  The flat-routing counterpart is ``n - 1`` routes at
        every node -- the scalability argument of the paper's
        introduction.
        """
        total = 0
        current = node
        for level in self.levels:
            if current not in level.topology.graph:
                break
            clustering = level.clustering
            head = clustering.head(current)
            total += len(clustering.members(head)) - 1
            if head != current:
                break  # not a head here: participates no further up
        return total


def build_hierarchy(topology, rng=None, use_dag=True, order="basic",
                    fusion=False, max_levels=DEFAULT_MAX_LEVELS,
                    physical_clustering=None):
    """Cluster repeatedly until a single cluster (or ``max_levels``).

    Each level gets fresh DAG names sized to its own maximum degree when
    ``use_dag`` is set, exactly as the flat algorithm prescribes.

    ``physical_clustering`` supplies a precomputed level-0 clustering
    (e.g. maintained by an incremental engine across mobility windows);
    the caller is then responsible for having drawn that level's DAG
    names from ``rng`` (when ``use_dag``) so the higher levels see the
    exact stream a full build would.
    """
    if max_levels < 1:
        raise ConfigurationError(f"max_levels must be >= 1, got {max_levels}")
    rng = as_rng(rng)
    levels = []
    current = topology
    for index in range(max_levels):
        if index == 0 and physical_clustering is not None:
            clustering = physical_clustering
        else:
            dag_ids = None
            if use_dag and current.graph.edge_count() > 0:
                dag_ids, _rounds = assign_dag_ids(current, rng)
            clustering = compute_clustering(current.graph,
                                            tie_ids=current.ids,
                                            dag_ids=dag_ids, order=order,
                                            fusion=fusion)
        done = clustering.cluster_count <= 1 or index == max_levels - 1
        overlay = None if done else overlay_topology(current, clustering)
        levels.append(HierarchyLevel(index=index, topology=current,
                                     clustering=clustering, overlay=overlay))
        if done:
            break
        current = overlay.topology
    return Hierarchy(levels)
