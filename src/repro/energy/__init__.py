"""Energy-aware organization (the paper's announced future work)."""

from repro.energy.battery import BatteryModel
from repro.energy.lifetime import LifetimeResult, simulate_lifetime
from repro.energy.policy import (
    POLICIES,
    clustering_for_policy,
    energy_aware_clustering,
    energy_keys,
)

__all__ = [
    "BatteryModel",
    "LifetimeResult",
    "POLICIES",
    "clustering_for_policy",
    "energy_aware_clustering",
    "energy_keys",
    "simulate_lifetime",
]
