"""Network-lifetime simulation: how long until batteries die.

Runs clustering windows over a static deployment, draining batteries by
role each window and removing dead nodes from the topology.  The standard
lifetime metrics:

* ``first_death`` -- windows until the first node dies (the conservative
  "network lifetime" definition);
* ``half_life`` -- windows until half the nodes are dead;
* the full survival curve for plotting.

The experiment's claim: rotating headship toward energy-rich nodes
(``energy-aware``) beats the paper's incumbent rule (``static``), which
deliberately keeps heads in place and therefore drains them first.
"""

from dataclasses import dataclass, field

from repro.energy.battery import BatteryModel
from repro.energy.policy import clustering_for_policy
from repro.util.errors import ConfigurationError


@dataclass
class LifetimeResult:
    """Outcome of one lifetime simulation."""

    policy: str
    windows_run: int
    first_death: int          # window index; windows_run + 1 if none died
    half_life: int            # likewise
    survival: list = field(default_factory=list)  # fraction alive per window
    head_changes: int = 0

    @property
    def final_alive_fraction(self):
        return self.survival[-1] if self.survival else 1.0


def simulate_lifetime(topology, policy, windows, battery=None,
                      head_cost=4.0, member_cost=1.0, capacity=100.0):
    """Run ``windows`` clustering windows under ``policy``.

    Dead nodes drop out of the clustered subgraph (their neighbors stop
    hearing their beacons); the clustering each window covers the alive
    subgraph only.
    """
    if windows < 1:
        raise ConfigurationError(f"windows must be >= 1, got {windows}")
    if battery is None:
        battery = BatteryModel(topology.graph.nodes, capacity=capacity,
                               head_cost=head_cost, member_cost=member_cost)
    total = len(topology.graph)
    result = LifetimeResult(policy=policy, windows_run=windows,
                            first_death=windows + 1, half_life=windows + 1)
    previous = None
    previous_heads = None
    subgraph = None
    subgraph_alive = None
    for window in range(1, windows + 1):
        alive = battery.alive()
        if not alive:
            result.survival.append(0.0)
            continue
        if subgraph is None or alive != subgraph_alive:
            # Only rebuild the alive subgraph when a node actually died;
            # while it survives unchanged, its cached CSR snapshot (and
            # memoized triangle counts) make the per-window density pass
            # an O(n) dictionary rebuild instead of a triangle recount.
            subgraph = topology.graph.induced_subgraph(alive)
            subgraph_alive = alive
        tie_ids = {node: topology.ids[node] for node in alive}
        clustering = clustering_for_policy(policy, subgraph, battery,
                                           tie_ids, previous=previous)
        battery.drain(clustering)
        if previous_heads is not None:
            result.head_changes += len(previous_heads - clustering.heads)
        previous_heads = set(clustering.heads)
        previous = clustering
        fraction = battery.fraction_alive()
        result.survival.append(fraction)
        if battery.dead() and result.first_death > windows:
            result.first_death = window
        if fraction <= 0.5 and result.half_life > windows:
            result.half_life = window
    return result
