"""Battery model for energy-aware organization.

The paper's conclusion announces energy as future work: *"we also want to
consider energy constraints in the stabilization algorithm and we are
investigating energy-efficient organization algorithms."*  This module
provides the substrate: per-node batteries that drain asymmetrically --
cluster-heads pay for aggregation, synchronization and inter-cluster
traffic, members only for their periodic beacons.
"""

from repro.util.errors import ConfigurationError


class BatteryModel:
    """Tracks per-node residual energy through clustering windows."""

    def __init__(self, nodes, capacity=100.0, head_cost=4.0,
                 member_cost=1.0):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if head_cost < member_cost:
            raise ConfigurationError(
                "head_cost below member_cost makes headship free; the "
                "energy experiment would be vacuous")
        if member_cost < 0:
            raise ConfigurationError(
                f"member_cost must be non-negative, got {member_cost}")
        self.capacity = float(capacity)
        self.head_cost = float(head_cost)
        self.member_cost = float(member_cost)
        self.energy = {node: self.capacity for node in nodes}

    def drain(self, clustering):
        """Charge one window's cost to every *alive* node by role."""
        for node, level in self.energy.items():
            if level <= 0 or node not in clustering.head_of:
                continue
            cost = self.head_cost if clustering.is_head(node) \
                else self.member_cost
            self.energy[node] = max(0.0, level - cost)

    def alive(self):
        """Nodes with residual energy."""
        return {node for node, level in self.energy.items() if level > 0}

    def dead(self):
        """Nodes that exhausted their battery."""
        return {node for node, level in self.energy.items() if level <= 0}

    def fraction_alive(self):
        return len(self.alive()) / len(self.energy)

    def residual(self, node):
        return self.energy[node]

    def bucket(self, node, buckets=5):
        """Coarse energy level in ``0..buckets`` (dead nodes get 0).

        Coarseness is deliberate: if raw energy entered the order, heads
        would thrash every window; with buckets a head serves until it
        drops one bucket below a neighbor, amortizing re-elections.
        """
        if buckets < 1:
            raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
        level = self.energy[node]
        if level <= 0:
            return 0
        return 1 + int((buckets - 1) * (level / self.capacity))
