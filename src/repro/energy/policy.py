"""Energy-aware cluster-head selection.

The energy-aware order prepends a coarse residual-energy bucket to the
paper's key: among nodes of comparable energy, density and identifiers
decide exactly as in Section 4; a node one bucket lower loses headship to
a fresher neighbor.  This slots into the fixpoint machinery through
:func:`repro.clustering.oracle.clustering_from_keys` -- the extension
point the paper's conclusion gestures at ("could be applied to several
clusterization metrics").

Density evaluation runs on the graph's frozen CSR snapshot
(:meth:`~repro.graph.graph.Graph.to_csr`): repeated windows over an
unchanged graph reuse the snapshot and its memoized triangle counts, so
only the first window of a lifetime simulation pays for triangle
counting.  Callers that already hold the window's densities can pass
them through ``densities=`` to skip even the dictionary rebuild.
"""

from repro.clustering.density import all_densities
from repro.clustering.oracle import clustering_from_keys, compute_clustering
from repro.util.errors import ConfigurationError

POLICIES = ("energy-aware", "static")


def energy_keys(graph, battery, tie_ids, dag_ids=None, buckets=5,
                densities=None):
    """Per-node keys ``(energy bucket, density, -dag, -tie)``."""
    if densities is None:
        densities = all_densities(graph, exact=True)
    keys = {}
    for node in graph:
        components = [battery.bucket(node, buckets=buckets),
                      densities[node]]
        if dag_ids is not None:
            components.append(-dag_ids[node])
        components.append(-tie_ids[node])
        keys[node] = tuple(components)
    return keys


def energy_aware_clustering(graph, battery, tie_ids=None, dag_ids=None,
                            buckets=5, fusion=False, densities=None):
    """Density clustering biased toward energy-rich heads."""
    if tie_ids is None:
        tie_ids = {node: node for node in graph}
    if densities is None:
        densities = all_densities(graph, exact=True)
    keys = energy_keys(graph, battery, tie_ids, dag_ids=dag_ids,
                       buckets=buckets, densities=densities)
    return clustering_from_keys(graph, keys, fusion=fusion,
                                densities=densities, dag_ids=dag_ids,
                                order_name="energy-aware")


def clustering_for_policy(policy, graph, battery, tie_ids, dag_ids=None,
                          previous=None):
    """One window's clustering under the given policy.

    ``"static"`` is the paper's improved algorithm (incumbent order: heads
    serve as long as possible, the worst case for battery fairness);
    ``"energy-aware"`` rotates headship toward energy-rich nodes.
    """
    if policy == "energy-aware":
        return energy_aware_clustering(graph, battery, tie_ids=tie_ids,
                                       dag_ids=dag_ids)
    if policy == "static":
        return compute_clustering(graph, tie_ids=tie_ids, dag_ids=dag_ids,
                                  order="incumbent", previous=previous)
    raise ConfigurationError(
        f"unknown policy {policy!r}; expected one of {POLICIES}")
