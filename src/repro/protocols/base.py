"""Protocol interface and composition.

A *protocol layer* contributes three things:

* initial shared-variable values (a legitimate fresh boot -- stabilization
  tests overwrite them with arbitrary garbage afterwards);
* a payload: the slice of the node's shared variables it broadcasts each
  step;
* a :class:`~repro.runtime.guarded.Program` of guarded commands.

Layers compose with :class:`ProtocolStack`: payloads merge (key collisions
are configuration errors) and programs concatenate in stack order, which
realizes the paper's round-robin execution across layers (discovery before
naming before clustering).
"""

from repro.runtime.guarded import Program
from repro.util.errors import ConfigurationError


class Protocol:
    """Base class: a protocol that shares nothing and does nothing."""

    def initialize(self, runtime, rng):
        """Set this layer's shared variables to legitimate boot values."""

    def payload(self, runtime):
        """The slice of ``runtime.shared`` this layer broadcasts."""
        return {}

    def program(self):
        """This layer's guarded commands."""
        return Program([])


class ProtocolStack(Protocol):
    """Composition of protocol layers into one node program."""

    def __init__(self, layers):
        self.layers = list(layers)
        if not self.layers:
            raise ConfigurationError("a protocol stack needs at least one layer")

    def initialize(self, runtime, rng):
        for layer in self.layers:
            layer.initialize(runtime, rng)

    def payload(self, runtime):
        merged = {}
        for layer in self.layers:
            part = layer.payload(runtime)
            overlap = set(part) & set(merged)
            if overlap:
                raise ConfigurationError(
                    f"payload key collision across layers: {sorted(overlap)}")
            merged.update(part)
        return merged

    def program(self):
        commands = []
        for layer in self.layers:
            commands.extend(layer.program())
        return Program(commands)
