"""The full paper stack and state-extraction helpers."""

from repro.clustering.result import Clustering
from repro.naming.namespace import NameSpace, recommended_size
from repro.protocols.base import ProtocolStack
from repro.protocols.clustering import DensityClusteringProtocol
from repro.protocols.discovery import HelloProtocol
from repro.protocols.naming import DagNamingProtocol
from repro.util.errors import ConfigurationError


def standard_stack(namespace=None, topology=None, use_dag=True, order="basic",
                   fusion=False, variant="polite"):
    """Hello + (optionally) DAG naming + density clustering.

    ``namespace`` may be a :class:`~repro.naming.namespace.NameSpace`, an
    integer size, or ``None`` -- in which case ``topology`` must be given
    and the recommended ``δ**2`` space for its maximum degree is used.
    With ``use_dag=False`` the naming layer is omitted entirely and the
    clustering order falls back to normal identifiers (the "No DAG"
    columns of Tables 4 and 5).
    """
    layers = [HelloProtocol()]
    if use_dag:
        if namespace is None:
            if topology is None:
                raise ConfigurationError(
                    "need a namespace or a topology to size it from")
            namespace = NameSpace(recommended_size(topology.graph.max_degree()))
        elif not isinstance(namespace, NameSpace):
            namespace = NameSpace(namespace)
        layers.append(DagNamingProtocol(namespace, variant=variant))
    layers.append(DensityClusteringProtocol(order=order, fusion=fusion,
                                            use_dag=use_dag))
    return ProtocolStack(layers)


def extract_clustering(simulator, fusion=False):
    """Build a :class:`~repro.clustering.result.Clustering` from the
    protocol's shared ``parent`` variables.

    Only meaningful once the protocol has stabilized; raises
    :class:`~repro.util.errors.TopologyError` if the parent pointers do not
    form a valid joining forest over the current graph (e.g. mid-convergence).
    """
    parents = {}
    for node, runtime in simulator.runtimes.items():
        parent = runtime.shared.get("parent")
        parents[node] = node if parent is None else parent
    densities = simulator.shared_map("density")
    dag_ids = simulator.shared_map("dag_id")
    if all(value is None for value in dag_ids.values()):
        dag_ids = None
    return Clustering(simulator.graph, parents, densities=densities,
                      dag_ids=dag_ids, fusion=fusion)


def claimed_heads(simulator):
    """Nodes whose shared ``head`` names themselves."""
    return {node for node, runtime in simulator.runtimes.items()
            if runtime.shared.get("head") == node}
