"""Protocol layers: discovery, DAG naming, density clustering, stacks."""

from repro.protocols.base import Protocol, ProtocolStack
from repro.protocols.clustering import DensityClusteringProtocol
from repro.protocols.discovery import HelloProtocol
from repro.protocols.naming import DagNamingProtocol
from repro.protocols.stack import claimed_heads, extract_clustering, standard_stack

__all__ = [
    "DagNamingProtocol",
    "DensityClusteringProtocol",
    "HelloProtocol",
    "Protocol",
    "ProtocolStack",
    "claimed_heads",
    "extract_clustering",
    "standard_stack",
]
