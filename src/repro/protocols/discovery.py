"""Neighborhood discovery (the hello layer).

Step 1 of Table 2: after one step of hello frames a node knows its
1-neighbors; because each hello also carries the sender's *current belief*
about its own neighborhood, a second step teaches every node its
2-neighborhood.  The believed neighbor set is re-derived from the cache
each step, so departed neighbors disappear after the cache timeout and
corrupted beliefs heal -- no state survives that incoming frames do not
refresh.
"""

from repro.runtime.guarded import GuardedCommand, Program, always


class HelloProtocol:
    """Broadcasts identity plus believed neighbor set."""

    def initialize(self, runtime, rng):
        runtime.shared.setdefault("neighbors", frozenset())

    def payload(self, runtime):
        return {
            "tie_id": runtime.tie_id,
            "neighbors": runtime.shared.get("neighbors", frozenset()),
        }

    def program(self):
        return Program([
            GuardedCommand(
                name="hello:update-neighborhood",
                guard=always,
                action=self._update_neighborhood,
            ),
        ])

    @staticmethod
    def _update_neighborhood(runtime, _rng):
        runtime.shared["neighbors"] = frozenset(runtime.known_neighbors())
