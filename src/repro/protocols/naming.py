"""Distributed DAG renaming protocol (algorithm ``N1`` over the runtime).

The message-passing counterpart of :mod:`repro.naming.renaming`: each node
broadcasts its DAG name as a shared variable; the single guarded command
``N1: true -> Id_p := newId(Id_p)`` re-evaluates the name against the
cached neighbor names each step.

Two conflict-resolution variants (mirroring the offline simulators):

* ``"randomized"`` -- algorithm N1 exactly: any node that sees its own
  name among its cached neighbor names re-draws;
* ``"polite"`` -- the Section 5 simulation variant: on a collision only
  the endpoint with the smaller normal identifier re-draws.
"""

from repro.naming.namespace import NameSpace
from repro.naming.renaming import new_id
from repro.runtime.guarded import GuardedCommand, Program, always
from repro.util.errors import ConfigurationError

VARIANTS = ("randomized", "polite")


class DagNamingProtocol:
    """Maintains the locally unique shared variable ``dag_id``."""

    def __init__(self, namespace, variant="polite"):
        if not isinstance(namespace, NameSpace):
            namespace = NameSpace(namespace)
        if variant not in VARIANTS:
            raise ConfigurationError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}")
        self.namespace = namespace
        self.variant = variant

    def initialize(self, runtime, rng):
        runtime.shared.setdefault("dag_id", self.namespace.sample(rng))

    def payload(self, runtime):
        return {"dag_id": runtime.shared.get("dag_id")}

    def program(self):
        return Program([
            GuardedCommand(name="naming:N1", guard=always, action=self._n1),
        ])

    def _n1(self, runtime, rng):
        current = runtime.shared.get("dag_id")
        cached_ids = [value for value in runtime.cached_all("dag_id").values()
                      if value is not None]
        if self.variant == "randomized":
            runtime.shared["dag_id"] = new_id(current, cached_ids,
                                              self.namespace, rng)
            return
        # Polite variant: re-draw only when conflicting with a neighbor of
        # larger normal identifier (or when the name is invalid).
        if current not in self.namespace:
            runtime.shared["dag_id"] = self.namespace.sample(
                rng, exclude=cached_ids)
            return
        colliders = [q for q, value in runtime.cached_all("dag_id").items()
                     if value == current]
        if any(runtime.cached(q, "tie_id", q) > runtime.tie_id
               for q in colliders):
            runtime.shared["dag_id"] = self.namespace.sample(
                rng, exclude=cached_ids)
