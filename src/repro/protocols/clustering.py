"""Distributed density-driven clustering protocol (rules ``R1`` and ``R2``).

The protocol of Section 4.2 with the optional Section 4.3 refinements:

* ``R1: true -> d_p := density`` -- recompute the density from the cached
  2-neighborhood (neighbor sets reported by hello frames);
* ``R2: true -> H(p) := clusterHead`` -- re-evaluate headship / parent from
  the cached densities, names and head values.

Shared variables: ``density``, ``head``, ``parent``, plus (with fusion) a
``summary`` of cached neighbor states so 2-hop head claims propagate.

Every comparison funnels through the same per-node key shape the
centralized oracle uses -- ``(density, [is_head,] -dag_id, -tie_id)`` --
so the protocol's stable state coincides with the oracle's fixpoint, which
the integration suite asserts on random topologies.  Values a node has not
learned yet rank below everything (unknown density below isolated's 0,
unknown DAG name loses every tie): a node acts on its best current
knowledge and revises as caches fill, which is exactly the transient
behaviour self-stabilization tolerates.
"""

from fractions import Fraction

from repro.runtime.guarded import GuardedCommand, Program, always
from repro.util.errors import ConfigurationError

UNKNOWN_DENSITY = Fraction(-1)
_UNKNOWN_DAG = float("-inf")  # negated component: loses all ties
_ORDERS = ("basic", "incumbent")


class DensityClusteringProtocol:
    """Maintains shared variables ``density``, ``head`` and ``parent``."""

    def __init__(self, order="basic", fusion=False, use_dag=True):
        if order not in _ORDERS:
            raise ConfigurationError(
                f"unknown order {order!r}; expected one of {_ORDERS}")
        self.order = order
        self.fusion = fusion
        self.use_dag = use_dag

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------

    def initialize(self, runtime, rng):
        runtime.shared.setdefault("density", None)
        runtime.shared.setdefault("head", None)
        runtime.shared.setdefault("parent", None)

    def payload(self, runtime):
        payload = {
            "density": runtime.shared.get("density"),
            "head": runtime.shared.get("head"),
        }
        if self.fusion:
            payload["summary"] = self._summary(runtime)
        return payload

    def program(self):
        return Program([
            GuardedCommand(name="clustering:R1-density", guard=always,
                           action=self._r1_density),
            GuardedCommand(name="clustering:R2-head", guard=always,
                           action=self._r2_head),
        ])

    # ------------------------------------------------------------------
    # R1: density from the cached 2-neighborhood
    # ------------------------------------------------------------------

    def _r1_density(self, runtime, _rng):
        neighbors = runtime.known_neighbors()
        if not neighbors:
            runtime.shared["density"] = Fraction(0)
            return
        links = len(neighbors)
        counted = set()
        for q in neighbors:
            reported = runtime.cached(q, "neighbors") or frozenset()
            for r in reported:
                if r in neighbors and r != q:
                    counted.add(frozenset((q, r)))
        runtime.shared["density"] = Fraction(len(neighbors) + len(counted),
                                             len(neighbors))

    # ------------------------------------------------------------------
    # R2: cluster-head choice
    # ------------------------------------------------------------------

    def _r2_head(self, runtime, _rng):
        own_key = self._own_key(runtime)
        neighbor_keys = {q: self._neighbor_key(runtime, q)
                         for q in runtime.known_neighbors()}
        if all(key < own_key for key in neighbor_keys.values()):
            if not self.fusion:
                self._become_head(runtime)
                return
            dominator = self._strongest_dominator(runtime, own_key)
            if dominator is None:
                self._become_head(runtime)
                return
            self._join_toward(runtime, dominator, neighbor_keys)
            return
        best = max(neighbor_keys, key=neighbor_keys.get)
        self._join(runtime, best)

    def _become_head(self, runtime):
        runtime.shared["head"] = runtime.node_id
        runtime.shared["parent"] = runtime.node_id

    def _join(self, runtime, parent):
        runtime.shared["parent"] = parent
        runtime.shared["head"] = runtime.cached(parent, "head")

    def _join_toward(self, runtime, dominator, neighbor_keys):
        """Fusion: a deposed local maximum joins the strongest neighbor that
        reports the dominating 2-hop head as its own neighbor."""
        gateways = {q: key for q, key in neighbor_keys.items()
                    if dominator in (runtime.cached(q, "neighbors")
                                     or frozenset())}
        if not gateways:
            # The claim was heard through a now-stale summary; keep headship
            # until the topology view is consistent again.
            self._become_head(runtime)
            return
        best = max(gateways, key=gateways.get)
        self._join(runtime, best)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    def _key(self, density, is_head, dag_id, tie_id):
        components = [density if density is not None else UNKNOWN_DENSITY]
        if self.order == "incumbent":
            components.append(bool(is_head))
        if self.use_dag:
            components.append(-dag_id if dag_id is not None else _UNKNOWN_DAG)
        components.append(-tie_id)
        return tuple(components)

    def _own_key(self, runtime):
        return self._key(
            density=runtime.shared.get("density"),
            is_head=runtime.shared.get("head") == runtime.node_id,
            dag_id=runtime.shared.get("dag_id") if self.use_dag else None,
            tie_id=runtime.tie_id,
        )

    def _neighbor_key(self, runtime, q):
        return self._key(
            density=runtime.cached(q, "density"),
            is_head=runtime.cached(q, "head") == q,
            dag_id=runtime.cached(q, "dag_id") if self.use_dag else None,
            tie_id=runtime.cached(q, "tie_id", q),
        )

    # ------------------------------------------------------------------
    # fusion support: 2-hop head claims via summaries
    # ------------------------------------------------------------------

    def _summary(self, runtime):
        """What this node relays about each cached neighbor: the fields a
        2-hop observer needs to evaluate the fusion guard."""
        summary = {}
        for q in runtime.known_neighbors():
            summary[q] = {
                "density": runtime.cached(q, "density"),
                "head": runtime.cached(q, "head"),
                "dag_id": runtime.cached(q, "dag_id"),
                "tie_id": runtime.cached(q, "tie_id", q),
            }
        return summary

    def _claimed_two_hop_heads(self, runtime):
        """Keys of nodes in the believed 2-neighborhood claiming headship."""
        claims = {}
        for q in runtime.known_neighbors():
            if runtime.cached(q, "head") == q:
                claims[q] = self._neighbor_key(runtime, q)
            relayed = runtime.cached(q, "summary") or {}
            for r, fields in relayed.items():
                if r == runtime.node_id or r in claims:
                    continue
                if fields.get("head") == r:
                    claims[r] = self._key(
                        density=fields.get("density"),
                        is_head=True,
                        dag_id=fields.get("dag_id") if self.use_dag else None,
                        tie_id=fields.get("tie_id", r),
                    )
        return claims

    def _strongest_dominator(self, runtime, own_key):
        """The strongest 2-hop head claim exceeding ``own_key``, if any."""
        claims = self._claimed_two_hop_heads(runtime)
        dominating = {r: key for r, key in claims.items() if key > own_key}
        if not dominating:
            return None
        return max(dominating, key=dominating.get)
