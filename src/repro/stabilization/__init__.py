"""Self-stabilization toolkit: legitimacy predicates, faults, monitoring."""

from repro.stabilization.faults import (
    clear_caches,
    clear_shared,
    duplicate_dag_ids,
    fabricate_caches,
    garbage_shared,
    random_subset,
    total_corruption,
)
from repro.stabilization.monitor import (
    StabilizationReport,
    recovery_time,
    steps_to_legitimacy,
    verify_closure,
)
from repro.stabilization.predicates import (
    clustering_legitimate,
    densities_legitimate,
    make_stack_predicate,
    naming_legitimate,
    neighborhood_accurate,
    stack_legitimate,
    two_hop_accurate,
)

__all__ = [
    "StabilizationReport",
    "clear_caches",
    "clear_shared",
    "clustering_legitimate",
    "densities_legitimate",
    "duplicate_dag_ids",
    "fabricate_caches",
    "garbage_shared",
    "make_stack_predicate",
    "naming_legitimate",
    "neighborhood_accurate",
    "random_subset",
    "recovery_time",
    "stack_legitimate",
    "steps_to_legitimacy",
    "total_corruption",
    "two_hop_accurate",
    "verify_closure",
]
