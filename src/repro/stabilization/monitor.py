"""Convergence and closure measurement.

``steps_to_legitimacy`` measures the stabilization time (the quantity
Lemma 2 bounds by the height of ``DAG≺``); ``verify_closure`` checks the
other half of self-stabilization: once legitimate, the system stays
legitimate as long as no fault occurs (under a lossless channel -- with a
lossy channel legitimacy of *caches* can flicker, which is why the paper
states convergence in expectation).
"""

from dataclasses import dataclass

from repro.util.errors import ConvergenceError


@dataclass(frozen=True)
class StabilizationReport:
    """Outcome of one stabilization measurement."""

    steps: int
    converged: bool
    budget: int

    def __str__(self):
        status = "converged" if self.converged else "DID NOT CONVERGE"
        return f"{status} in {self.steps}/{self.budget} steps"


def steps_to_legitimacy(simulator, predicate, max_steps, settle=2):
    """Steps until ``predicate`` first holds and keeps holding ``settle``
    consecutive steps.  Returns a :class:`StabilizationReport`; never raises
    on budget exhaustion (callers inspect ``converged``)."""
    start = simulator.now
    try:
        reached = simulator.run_until(predicate, max_steps, settle=settle)
        return StabilizationReport(steps=reached - start, converged=True,
                                   budget=max_steps)
    except ConvergenceError:
        return StabilizationReport(steps=max_steps, converged=False,
                                   budget=max_steps)


def verify_closure(simulator, predicate, steps):
    """Assert the predicate holds after each of ``steps`` further steps.

    Returns the number of steps verified; raises ``AssertionError`` with
    the failing step on violation.  Meaningful only under a lossless
    channel (see module docstring).
    """
    if not predicate(simulator):
        raise AssertionError("closure check requires a legitimate start state")
    for i in range(steps):
        simulator.step()
        if not predicate(simulator):
            raise AssertionError(
                f"closure violated at step {simulator.now} "
                f"({i + 1} steps after a legitimate state)")
    return steps


def recovery_time(simulator, fault, predicate, max_steps, settle=2,
                  nodes=None):
    """Inject ``fault`` and measure re-stabilization.

    Convenience wrapper used by the fault-injection benches: corrupts,
    then delegates to :func:`steps_to_legitimacy`.
    """
    simulator.corrupt(fault, nodes=nodes)
    return steps_to_legitimacy(simulator, predicate, max_steps, settle=settle)
