"""Transient-fault injectors.

Self-stabilization quantifies over *arbitrary* initial states: any
combination of corrupted shared variables and caches must be recovered
from.  These mutators plug into
:meth:`~repro.runtime.simulator.StepSimulator.corrupt` and cover the fault
classes the proofs must tolerate: garbage shared values, stale or
fabricated caches, duplicated DAG names, and cold restarts.
"""

from fractions import Fraction

from repro.runtime.node import CacheEntry
from repro.util.rng import as_rng


def clear_caches(runtime, _rng):
    """Drop every cached neighbor (models a cold cache after restart)."""
    runtime.caches.clear()


def clear_shared(runtime, _rng):
    """Reset every shared variable to None (crash-and-restart with RAM loss)."""
    for name in list(runtime.shared):
        runtime.shared[name] = None


def duplicate_dag_ids(runtime, _rng):
    """Force every node's DAG name to 0: maximal naming conflict."""
    runtime.shared["dag_id"] = 0


def garbage_shared(runtime, rng):
    """Overwrite shared variables with type-correct but wrong values.

    Type-correct garbage is the adversarial case: it survives parsing and
    can only be eliminated by the algorithm's own corrective rules.
    """
    rng = as_rng(rng)
    if "dag_id" in runtime.shared:
        runtime.shared["dag_id"] = int(rng.integers(0, 10))
    if "density" in runtime.shared:
        runtime.shared["density"] = Fraction(int(rng.integers(0, 50)), 7)
    if "head" in runtime.shared:
        runtime.shared["head"] = runtime.node_id if rng.random() < 0.5 else None
    if "parent" in runtime.shared:
        runtime.shared["parent"] = runtime.node_id
    if "neighbors" in runtime.shared:
        runtime.shared["neighbors"] = frozenset()


def fabricate_caches(ghost_ids, payload=None):
    """Mutator factory: plant cache entries for non-existent neighbors.

    Tests the discovery layer's reliance on cache expiry -- ghosts must
    fade out within ``cache_timeout`` steps because no frame refreshes them.
    """
    payload = payload if payload is not None else {"dag_id": 0,
                                                   "density": Fraction(99),
                                                   "head": None,
                                                   "neighbors": frozenset()}

    def mutate(runtime, _rng):
        for ghost in ghost_ids:
            runtime.caches[ghost] = CacheEntry(payload=dict(payload),
                                               refreshed_at=-10**9)
    return mutate


def total_corruption(runtime, rng):
    """Everything at once: garbage shared state and cleared caches."""
    garbage_shared(runtime, rng)
    clear_caches(runtime, rng)


def random_subset(nodes, fraction, rng):
    """Pick a random subset of ``nodes`` of the given fraction (>= 1 node)."""
    rng = as_rng(rng)
    nodes = list(nodes)
    count = max(1, int(round(fraction * len(nodes))))
    picked = rng.choice(len(nodes), size=min(count, len(nodes)), replace=False)
    return [nodes[i] for i in picked]
