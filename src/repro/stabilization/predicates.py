"""Legitimacy predicates.

Self-stabilization is defined against a *legitimacy predicate* over global
states: from any initial state, every execution reaches a state satisfying
the predicate (convergence) and stays there (closure).  These predicates
compare protocol state -- which nodes built purely from received frames --
against ground truth computed from the real graph.  Each layer has its own
predicate, composed by :func:`clustering_legitimate` /
:func:`stack_legitimate`, mirroring the paper's proof structure (Lemma 1:
densities correct; Lemma 2: heads correct, by induction over ``DAG≺``).
"""

from repro.clustering.density import all_densities
from repro.clustering.oracle import compute_clustering
from repro.naming.renaming import is_locally_unique


def neighborhood_accurate(simulator):
    """Every node's believed 1-neighborhood equals its true neighborhood."""
    graph = simulator.graph
    return all(simulator.runtime(node).known_neighbors() == graph.neighbors(node)
               for node in graph)


def two_hop_accurate(simulator):
    """Every node's believed 2-neighborhood equals the true one.

    Requires the *shared* neighbor sets (what neighbors reported) to be
    accurate, i.e. one more propagation step than 1-hop accuracy.
    """
    graph = simulator.graph
    for node in graph:
        runtime = simulator.runtime(node)
        if runtime.two_hop_view() != graph.k_neighborhood(node, 2):
            return False
    return True


def naming_legitimate(simulator):
    """All DAG names are set and no two true neighbors share one."""
    ids = simulator.shared_map("dag_id")
    if any(value is None for value in ids.values()):
        return False
    return is_locally_unique(simulator.graph, ids)


def densities_legitimate(simulator):
    """Every shared density equals Definition 1 on the true graph (Lemma 1)."""
    truth = all_densities(simulator.graph, exact=True)
    shared = simulator.shared_map("density")
    return all(shared[node] == truth[node] for node in simulator.graph)


def clustering_legitimate(simulator, order="basic", fusion=False,
                          use_dag=True):
    """Shared parents and heads equal the oracle fixpoint (Lemma 2).

    The oracle is evaluated with the protocol's *current* DAG names (names
    are part of the configuration; legitimacy of the clustering layer is
    relative to them), so this predicate composes with
    :func:`naming_legitimate` rather than subsuming it.
    """
    tie_ids = {node: simulator.runtime(node).tie_id for node in simulator.graph}
    dag_ids = simulator.shared_map("dag_id") if use_dag else None
    if use_dag and any(value is None for value in dag_ids.values()):
        return False
    previous = None
    if order == "incumbent":
        # The incumbent order has many fixpoints by design (hysteresis), so
        # legitimacy means *stationarity*: re-solving with the currently
        # claimed heads as incumbents must reproduce the current state.
        shared_heads = simulator.shared_map("head")
        previous = {node for node, head in shared_heads.items() if head == node}
    oracle = compute_clustering(simulator.graph, tie_ids=tie_ids,
                                dag_ids=dag_ids, order=order, fusion=fusion,
                                previous=previous)
    parents = simulator.shared_map("parent")
    heads = simulator.shared_map("head")
    for node in simulator.graph:
        if parents[node] != oracle.parent(node):
            return False
        if heads[node] != oracle.head(node):
            return False
    return True


def stack_legitimate(simulator, order="basic", fusion=False, use_dag=True):
    """Full-stack legitimacy: neighborhoods, names, densities, clustering."""
    if not neighborhood_accurate(simulator):
        return False
    if not two_hop_accurate(simulator):
        return False
    if use_dag and not naming_legitimate(simulator):
        return False
    if not densities_legitimate(simulator):
        return False
    return clustering_legitimate(simulator, order=order, fusion=fusion,
                                 use_dag=use_dag)


def make_stack_predicate(order="basic", fusion=False, use_dag=True):
    """Bind :func:`stack_legitimate`'s configuration into a 1-arg predicate."""
    def predicate(simulator):
        return stack_legitimate(simulator, order=order, fusion=fusion,
                                use_dag=use_dag)
    predicate.__name__ = f"stack_legitimate[{order}, fusion={fusion}]"
    return predicate
