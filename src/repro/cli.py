"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro table3 --preset quick --seed 2024
    python -m repro table4 --preset paper --jobs 8
    python -m repro table5 --preset paper --jobs auto
    python -m repro figure3
    python -m repro mobility --preset quick
    python -m repro scalability
    python -m repro energy
    python -m repro table2 --backend distributed --workers 4
    python -m repro worker --connect host:5555
    python -m repro doctor --clean-shm

Experiment output is printed as the same plain-text tables the benchmark
suite shows.  ``--jobs`` fans the Monte-Carlo runs out over worker
processes and ``--backend`` selects how (serial, multiprocessing pool,
or the distributed TCP backend -- optionally with remote workers via
``--bind`` and ``python -m repro worker --connect``); results are
identical for every backend and worker count (see
``repro.experiments.engine``).  Backend status lines go to stderr so
stdout stays byte-comparable across backends.
"""

import argparse
import sys

from repro.experiments.churn import run_churn_experiment
from repro.experiments.comparison import run_comparison
from repro.experiments.energy_lifetime import run_energy_lifetime
from repro.experiments.engine import (
    BACKENDS,
    make_executor,
    resolve_jobs,
    use_executor,
)
from repro.experiments.figures import run_figure1, run_figure2, run_figure3
from repro.experiments.intensity_sweep import run_intensity_sweep
from repro.experiments.mobility import run_mobility_experiment
from repro.experiments.overhead import run_beacon_cost, \
    run_reaffiliation_churn
from repro.experiments.scalability import run_scalability
from repro.experiments.stabilization_time import (
    run_recovery_experiment,
    run_scaling_experiment,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.workload import run_workload
from repro.util.errors import ConfigurationError


def _jobs_arg(value):
    try:
        return resolve_jobs(value)
    except ConfigurationError as error:
        raise argparse.ArgumentTypeError(str(error))


def _single_topology(args):
    """The lone ``--topology`` spec, or None (multi-spec is an error
    for families that evaluate one topology)."""
    if not args.topology:
        return None
    if len(args.topology) > 1:
        raise ConfigurationError(
            "this experiment evaluates a single topology; give one "
            "--topology (the comparison family accepts several)")
    return args.topology[0]


def _table1(args):
    table, exact = run_table1(jobs=args.jobs,
                              topology=_single_topology(args))
    print(table)
    if not args.topology:
        print("exact match with the paper:", exact)


def _preset_runner(runner):
    def run(args):
        print(runner(args.preset, rng=args.seed, jobs=args.jobs))
    return run


def _preset_topology_runner(runner):
    """Like :func:`_preset_runner`, also forwarding one ``--topology``."""
    def run(args):
        print(runner(args.preset, rng=args.seed, jobs=args.jobs,
                     topology=_single_topology(args)))
    return run


def _seed_runner(runner):
    def run(args):
        print(runner(rng=args.seed, jobs=args.jobs))
    return run


def _workload_runner(args):
    """``repro workload``: also forwards ``--metric`` and ``--serving``."""
    print(run_workload(args.preset, rng=args.seed, jobs=args.jobs,
                       dynamics=args.dynamics, metric=args.metric,
                       serving=args.serving,
                       topology=_single_topology(args)))


def _comparison_runner(args):
    """``repro comparison``: any number of ``--topology`` specs switches
    the family to the off-UDG robustness table."""
    print(run_comparison(args.preset, rng=args.seed, jobs=args.jobs,
                         dynamics=args.dynamics, topology=args.topology))


def _churn_runner(args):
    print(run_reaffiliation_churn(args.preset, rng=args.seed, jobs=args.jobs,
                                  dynamics=args.dynamics,
                                  topology=_single_topology(args)))


EXPERIMENTS = {
    "table1": ("Table 1: densities on the Figure 1 example", _table1),
    "table2": ("Table 2: the step-model learning schedule",
               _preset_topology_runner(run_table2)),
    "table3": ("Table 3: steps to build the DAG",
               _preset_runner(run_table3)),
    "table4": ("Table 4: clusters on random geometric graphs",
               _preset_topology_runner(run_table4)),
    "table5": ("Table 5: clusters on the adversarial grid",
               _preset_topology_runner(run_table5)),
    "figure1": ("Figure 1: the clustered example",
                lambda args: print(run_figure1())),
    "figure2": ("Figure 2: grid without DAG (one giant cluster)",
                lambda args: print(run_figure2())),
    "figure3": ("Figure 3: grid with DAG (many compact clusters)",
                lambda args: print(run_figure3(rng=args.seed))),
    "mobility": ("Section 5 mobility: head re-election stability",
                 _preset_runner(lambda p, rng, jobs: run_mobility_experiment(
                     p, rng=rng, runs=2, jobs=jobs))),
    "comparison": ("Density vs degree vs lowest-ID vs max-min stability",
                   _comparison_runner),
    "scaling": ("Stabilization steps vs grid side (Lemma 2, empirically)",
                _seed_runner(lambda rng, jobs: run_scaling_experiment(
                    rng=rng, jobs=jobs))),
    "recovery": ("Fault-injection recovery times",
                 _preset_runner(lambda p, rng, jobs: run_recovery_experiment(
                     p, rng=rng, jobs=jobs))),
    "scalability": ("Extension: routing state, flat vs hierarchical",
                    _seed_runner(lambda rng, jobs: run_scalability(
                        rng=rng, jobs=jobs))),
    "energy": ("Extension: network lifetime, static vs energy-aware",
               _seed_runner(lambda rng, jobs: run_energy_lifetime(
                   rng=rng, jobs=jobs))),
    "intensity": ("Section 3 claim: head count falls as lambda grows",
                  _seed_runner(lambda rng, jobs: run_intensity_sweep(
                      rng=rng, jobs=jobs))),
    "churn": ("Re-affiliation traffic per metric under mobility",
              _churn_runner),
    "beacons": ("Steady-state beacon bytes per protocol configuration",
                _seed_runner(lambda rng, jobs: run_beacon_cost(
                    rng=rng, jobs=jobs))),
    "node-churn": ("Recovery under node arrivals and departures",
                   _seed_runner(lambda rng, jobs: run_churn_experiment(
                       rng=rng, jobs=jobs))),
    "workload": ("Serve traffic: latency, link load, head hot-spotting",
                 _workload_runner),
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["doctor", "list",
                                                       "worker"],
                        help="experiment to run, 'list' to enumerate, "
                             "'worker' to serve a remote coordinator, or "
                             "'doctor' to inspect host state")
    parser.add_argument("--preset", default="quick",
                        help="workload preset: quick (default), paper, smoke")
    parser.add_argument("--seed", type=int, default=2024,
                        help="root RNG seed (default 2024)")
    parser.add_argument("--topology", action="append", default=None,
                        metavar="SPEC",
                        help="topology generator spec "
                             "'name:param=val,...' (e.g. "
                             "erdos_renyi:degree=8 or file:trace.gml); "
                             "absent parameters get family defaults "
                             "(node count from the preset, matched mean "
                             "degree from --radius equivalents); repeat "
                             "the flag for the comparison sweep")
    parser.add_argument("--dynamics", choices=("delta", "rebuild"),
                        default="delta",
                        help="how mobility experiments advance windows: "
                             "incremental engines on the exact edge-delta "
                             "stream (delta, default) or per-window "
                             "scratch rebuilds (rebuild); output is "
                             "identical either way")
    parser.add_argument("--metric", default="density",
                        choices=("density", "degree", "lowest_id", "maxmin"),
                        help="workload mode: clustering metric maintained "
                             "under mobility traffic (default density)")
    parser.add_argument("--serving", choices=("batch", "request"),
                        default="batch",
                        help="workload mode: route requests in grouped "
                             "batches (default) or one at a time; the "
                             "served stream is identical either way")
    parser.add_argument("--jobs", default=1, type=_jobs_arg,
                        help="worker processes for Monte-Carlo runs "
                             "(default 1; 0 or 'auto' = all cores); "
                             "results are identical for every value")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="execution backend (default: serial for "
                             "--jobs 1, pool otherwise); results are "
                             "identical for every backend")
    parser.add_argument("--workers", type=int, default=None,
                        help="distributed backend: loopback worker "
                             "processes to spawn (default 2; 0 = rely on "
                             "remote workers connecting to --bind)")
    parser.add_argument("--bind", default="127.0.0.1:0",
                        help="distributed backend: coordinator bind "
                             "address (use 0.0.0.0:PORT to accept remote "
                             "workers)")
    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="distributed backend: journal completed "
                             "chunks under DIR and resume interrupted "
                             "runs from it")
    parser.add_argument("--heartbeat-timeout", type=float, default=10.0,
                        help="distributed backend: seconds of worker "
                             "silence before its chunk is re-queued "
                             "(default 10; raise it when single runs "
                             "outlast it and workers heartbeat slower)")
    parser.add_argument("--clean-shm", action="store_true",
                        help="doctor mode: remove shared-memory segments "
                             "whose publisher process is dead (the "
                             "leftovers of a SIGKILLed run)")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="worker mode: coordinator address to serve")
    parser.add_argument("--heartbeat", type=float, default=1.0,
                        help="worker mode: heartbeat interval in seconds "
                             "while computing (default 1.0; must stay "
                             "well below the coordinator's "
                             "--heartbeat-timeout, default 10)")
    return parser


def _worker_main(args, parser):
    if not args.connect:
        parser.error("worker mode requires --connect HOST:PORT")
    from repro.experiments.distributed.worker import serve
    print(f"worker serving coordinator at {args.connect}", file=sys.stderr)
    served = serve(args.connect, heartbeat_interval=args.heartbeat)
    print(f"worker done ({served} chunk(s) served)", file=sys.stderr)
    return 0


def _doctor_main(args):
    """Report (and optionally clean) this host's repro shared memory.

    Sessions unlink their segments on exit and an ``atexit`` hook covers
    crashes that still run Python teardown, but a SIGKILLed publisher
    leaves its segments holding kernel memory until reboot.  ``doctor``
    lists what is visible and ``--clean-shm`` removes the orphans (live
    publishers are never touched).  It also reports which traversal
    kernel backend ``REPRO_KERNELS`` resolved to at import.
    """
    from repro.graph import kernels
    from repro.graph.io import FORMATS
    from repro.graph.models.registry import (
        accepted_parameters,
        is_geometric,
        registered_topologies,
    )
    from repro.graph.shm import clean_orphans, list_segments
    info = kernels.backend_info()
    print(f"kernel backend: {info['active']} "
          f"(requested {info['requested']}, numba "
          + ("available" if info["numba_available"] else "not installed")
          + ")")
    if "numba_error" in info:
        print(f"  numba import failed: {info['numba_error']}")
    names = registered_topologies()
    print(f"{len(names)} registered topology generator(s):")
    for name in names:
        kind = "geometric" if is_geometric(name) else "combinatorial"
        params = ", ".join(accepted_parameters(name)) or "-"
        print(f"  {name} ({kind}; params: {params})")
    print("graph I/O formats: " + ", ".join(FORMATS)
          + " (load via --topology file:PATH, save via repro.graph.io)")
    removed = clean_orphans() if args.clean_shm else []
    for name in removed:
        print(f"removed orphaned segment {name}")
    remaining = list_segments()
    print(f"{len(remaining)} repro shared-memory segment(s) present"
          + (f" after removing {len(removed)} orphan(s)"
             if args.clean_shm else ""))
    for name in remaining:
        print(f"  {name}")
    return 0


def _build_executor(args):
    """The executor implied by ``--backend`` (None = historical --jobs)."""
    if args.backend is None:
        return None
    if args.backend == "distributed":
        workers = 2 if args.workers is None else args.workers
        return make_executor("distributed", workers=workers, bind=args.bind,
                             checkpoint=args.checkpoint,
                             heartbeat_timeout=args.heartbeat_timeout)
    return make_executor(args.backend, jobs=args.jobs)


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "worker":
        return _worker_main(args, parser)
    if args.experiment == "doctor":
        return _doctor_main(args)
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name.ljust(width)}  {EXPERIMENTS[name][0]}")
        return 0
    try:
        executor = _build_executor(args)
        if executor is None:
            EXPERIMENTS[args.experiment][1](args)
            return 0
        with executor, use_executor(executor):
            if executor.name == "distributed":
                host, port = executor.start()
                print(f"coordinator listening on {host}:{port} "
                      f"({executor.workers or 0} loopback worker(s))",
                      file=sys.stderr)
            EXPERIMENTS[args.experiment][1](args)
    except ConfigurationError as error:
        parser.error(str(error))
    return 0


if __name__ == "__main__":
    sys.exit(main())
