"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro table3 --preset quick --seed 2024
    python -m repro table4 --preset paper --jobs 8
    python -m repro table5 --preset paper --jobs auto
    python -m repro figure3
    python -m repro mobility --preset quick
    python -m repro scalability
    python -m repro energy

Experiment output is printed as the same plain-text tables the benchmark
suite shows.  ``--jobs`` fans the Monte-Carlo runs out over worker
processes; results are identical for every value (see
``repro.experiments.engine``).
"""

import argparse
import sys

from repro.experiments.churn import run_churn_experiment
from repro.experiments.comparison import run_comparison
from repro.experiments.energy_lifetime import run_energy_lifetime
from repro.experiments.engine import resolve_jobs
from repro.experiments.figures import run_figure1, run_figure2, run_figure3
from repro.experiments.intensity_sweep import run_intensity_sweep
from repro.experiments.mobility import run_mobility_experiment
from repro.experiments.overhead import run_beacon_cost, \
    run_reaffiliation_churn
from repro.experiments.scalability import run_scalability
from repro.experiments.stabilization_time import (
    run_recovery_experiment,
    run_scaling_experiment,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.util.errors import ConfigurationError


def _jobs_arg(value):
    try:
        return resolve_jobs(value)
    except ConfigurationError as error:
        raise argparse.ArgumentTypeError(str(error))


def _table1(args):
    table, exact = run_table1(jobs=args.jobs)
    print(table)
    print("exact match with the paper:", exact)


def _preset_runner(runner):
    def run(args):
        print(runner(args.preset, rng=args.seed, jobs=args.jobs))
    return run


def _seed_runner(runner):
    def run(args):
        print(runner(rng=args.seed, jobs=args.jobs))
    return run


EXPERIMENTS = {
    "table1": ("Table 1: densities on the Figure 1 example", _table1),
    "table2": ("Table 2: the step-model learning schedule",
               _preset_runner(lambda p, rng, jobs: run_table2(
                   p, rng=rng, jobs=jobs))),
    "table3": ("Table 3: steps to build the DAG",
               _preset_runner(run_table3)),
    "table4": ("Table 4: clusters on random geometric graphs",
               _preset_runner(run_table4)),
    "table5": ("Table 5: clusters on the adversarial grid",
               _preset_runner(run_table5)),
    "figure1": ("Figure 1: the clustered example",
                lambda args: print(run_figure1())),
    "figure2": ("Figure 2: grid without DAG (one giant cluster)",
                lambda args: print(run_figure2())),
    "figure3": ("Figure 3: grid with DAG (many compact clusters)",
                lambda args: print(run_figure3(rng=args.seed))),
    "mobility": ("Section 5 mobility: head re-election stability",
                 _preset_runner(lambda p, rng, jobs: run_mobility_experiment(
                     p, rng=rng, runs=2, jobs=jobs))),
    "comparison": ("Density vs degree vs lowest-ID vs max-min stability",
                   _preset_runner(lambda p, rng, jobs: run_comparison(
                       p, rng=rng, jobs=jobs))),
    "scaling": ("Stabilization steps vs grid side (Lemma 2, empirically)",
                _seed_runner(lambda rng, jobs: run_scaling_experiment(
                    rng=rng, jobs=jobs))),
    "recovery": ("Fault-injection recovery times",
                 _preset_runner(lambda p, rng, jobs: run_recovery_experiment(
                     p, rng=rng, jobs=jobs))),
    "scalability": ("Extension: routing state, flat vs hierarchical",
                    _seed_runner(lambda rng, jobs: run_scalability(
                        rng=rng, jobs=jobs))),
    "energy": ("Extension: network lifetime, static vs energy-aware",
               _seed_runner(lambda rng, jobs: run_energy_lifetime(
                   rng=rng, jobs=jobs))),
    "intensity": ("Section 3 claim: head count falls as lambda grows",
                  _seed_runner(lambda rng, jobs: run_intensity_sweep(
                      rng=rng, jobs=jobs))),
    "churn": ("Re-affiliation traffic per metric under mobility",
              _preset_runner(lambda p, rng, jobs: run_reaffiliation_churn(
                  p, rng=rng, jobs=jobs))),
    "beacons": ("Steady-state beacon bytes per protocol configuration",
                _seed_runner(lambda rng, jobs: run_beacon_cost(
                    rng=rng, jobs=jobs))),
    "node-churn": ("Recovery under node arrivals and departures",
                   _seed_runner(lambda rng, jobs: run_churn_experiment(
                       rng=rng, jobs=jobs))),
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["list"],
                        help="experiment to run, or 'list' to enumerate")
    parser.add_argument("--preset", default="quick",
                        help="workload preset: quick (default), paper, smoke")
    parser.add_argument("--seed", type=int, default=2024,
                        help="root RNG seed (default 2024)")
    parser.add_argument("--jobs", default=1, type=_jobs_arg,
                        help="worker processes for Monte-Carlo runs "
                             "(default 1; 0 or 'auto' = all cores); "
                             "results are identical for every value")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name.ljust(width)}  {EXPERIMENTS[name][0]}")
        return 0
    EXPERIMENTS[args.experiment][1](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
