"""Wireless-network graph substrate: graphs, geometry, generators, paths."""

from repro.graph.generators import (
    Topology,
    complete_topology,
    figure1_topology,
    grid_topology,
    line_topology,
    poisson_topology,
    ring_topology,
    square_grid_topology,
    star_topology,
    uniform_topology,
)
from repro.graph.geometry import (
    chunk_pairs,
    pairs_within_range,
    pairwise_within_range,
    unit_disk_graph,
)
from repro.graph.csr import CSRAdjacency
from repro.graph.dynamic import (
    DynamicTopology,
    DynamicUnitDisk,
    EdgeDelta,
    TriangleCounter,
    WindowUpdate,
)
from repro.graph.graph import Graph
from repro.graph.quasi_udg import quasi_uniform_topology, quasi_unit_disk_graph
from repro.graph.paths import (
    INFINITY,
    bfs_distances,
    bfs_distances_reference,
    connected_components,
    connected_components_reference,
    diameter,
    eccentricity,
    hop_distance,
    is_connected,
)
from repro.graph.traversal import (
    csr_bfs_distances,
    csr_component_labels,
    csr_multi_source_distances,
    csr_shortest_path,
    resolve_forest,
)

__all__ = [
    "CSRAdjacency",
    "DynamicTopology",
    "DynamicUnitDisk",
    "EdgeDelta",
    "Graph",
    "Topology",
    "TriangleCounter",
    "WindowUpdate",
    "INFINITY",
    "bfs_distances",
    "bfs_distances_reference",
    "chunk_pairs",
    "complete_topology",
    "connected_components",
    "connected_components_reference",
    "csr_bfs_distances",
    "csr_component_labels",
    "csr_multi_source_distances",
    "csr_shortest_path",
    "diameter",
    "eccentricity",
    "figure1_topology",
    "grid_topology",
    "hop_distance",
    "is_connected",
    "line_topology",
    "pairs_within_range",
    "pairwise_within_range",
    "poisson_topology",
    "quasi_uniform_topology",
    "quasi_unit_disk_graph",
    "resolve_forest",
    "ring_topology",
    "square_grid_topology",
    "star_topology",
    "uniform_topology",
    "unit_disk_graph",
]
