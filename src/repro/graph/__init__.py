"""Wireless-network graph substrate: graphs, geometry, generators, paths."""

from repro.graph.generators import (
    Topology,
    complete_topology,
    figure1_topology,
    grid_topology,
    line_topology,
    poisson_topology,
    ring_topology,
    square_grid_topology,
    star_topology,
    uniform_topology,
)
from repro.graph.geometry import (
    pairs_within_range,
    pairwise_within_range,
    unit_disk_graph,
)
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph
from repro.graph.quasi_udg import quasi_uniform_topology, quasi_unit_disk_graph
from repro.graph.paths import (
    INFINITY,
    bfs_distances,
    connected_components,
    diameter,
    eccentricity,
    hop_distance,
    is_connected,
)

__all__ = [
    "CSRAdjacency",
    "Graph",
    "Topology",
    "INFINITY",
    "bfs_distances",
    "complete_topology",
    "connected_components",
    "diameter",
    "eccentricity",
    "figure1_topology",
    "grid_topology",
    "hop_distance",
    "is_connected",
    "line_topology",
    "pairs_within_range",
    "pairwise_within_range",
    "poisson_topology",
    "quasi_uniform_topology",
    "quasi_unit_disk_graph",
    "ring_topology",
    "square_grid_topology",
    "star_topology",
    "uniform_topology",
    "unit_disk_graph",
]
