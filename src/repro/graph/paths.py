"""Hop-distance computations: BFS, eccentricity, diameter, components.

The paper's metrics are hop-based: ``d(u, v)`` is the minimum number of hops
and ``e(H(u)/C) = max_{v in C(u)} d(H(u), v)`` is the eccentricity of a
cluster-head inside its cluster.  All functions here operate on
:class:`~repro.graph.graph.Graph` instances.
"""

from collections import deque

from repro.util.errors import TopologyError

INFINITY = float("inf")


def bfs_distances(graph, source):
    """Hop distance from ``source`` to every reachable node (source -> 0)."""
    if source not in graph:
        raise TopologyError(f"source {source!r} not in graph")
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def hop_distance(graph, u, v):
    """Minimum hop count from ``u`` to ``v``; ``inf`` if disconnected."""
    if v not in graph:
        raise TopologyError(f"node {v!r} not in graph")
    return bfs_distances(graph, u).get(v, INFINITY)


def eccentricity(graph, node, within=None):
    """Max hop distance from ``node`` to the nodes of ``within``.

    ``within`` defaults to all of ``graph``.  If some target is unreachable
    the eccentricity is ``inf``.
    """
    targets = set(within) if within is not None else set(graph.nodes)
    missing = targets - set(graph.nodes)
    if missing:
        raise TopologyError(f"targets not in graph: {sorted(missing, key=repr)}")
    if not targets:
        raise TopologyError("eccentricity over an empty target set")
    distances = bfs_distances(graph, node)
    return max(distances.get(target, INFINITY) for target in targets)


def diameter(graph):
    """Max eccentricity over all nodes; ``inf`` if disconnected, 0 if empty."""
    if len(graph) == 0:
        return 0
    return max(eccentricity(graph, node) for node in graph)


def connected_components(graph):
    """List of node sets, one per connected component."""
    remaining = set(graph.nodes)
    components = []
    while remaining:
        start = next(iter(remaining))
        component = set(bfs_distances(graph, start))
        components.append(component)
        remaining -= component
    return components


def is_connected(graph):
    """True iff the graph has at most one connected component."""
    return len(connected_components(graph)) <= 1
