"""Hop-distance computations: BFS, eccentricity, diameter, components.

The paper's metrics are hop-based: ``d(u, v)`` is the minimum number of hops
and ``e(H(u)/C) = max_{v in C(u)} d(H(u), v)`` is the eccentricity of a
cluster-head inside its cluster.  All functions here operate on
:class:`~repro.graph.graph.Graph` instances.

Since the traversal-kernel refactor these functions ride the graph's
cached CSR snapshot (:mod:`repro.graph.traversal`): frontiers are numpy
index arrays, so a BFS is a handful of vectorized gathers per level
instead of a Python loop per edge.  Distances and component partitions
are tie-break-free, so results are identical to the dict backend; the
original deque implementations survive as ``bfs_distances_reference`` /
``connected_components_reference``, the equivalence oracles used by the
property tests.
"""

from collections import deque

import numpy as np

from repro.graph.traversal import csr_bfs_distances, csr_component_labels
from repro.util.errors import TopologyError

INFINITY = float("inf")


def bfs_distances(graph, source):
    """Hop distance from ``source`` to every reachable node (source -> 0)."""
    if source not in graph:
        raise TopologyError(f"source {source!r} not in graph")
    csr = graph.to_csr()
    dist = csr_bfs_distances(csr, csr.index_of[source])
    ids = csr.ids
    return {ids[row]: int(dist[row])
            for row in np.flatnonzero(dist >= 0).tolist()}


def bfs_distances_reference(graph, source):
    """The original dict-backend BFS (equivalence oracle for the kernel)."""
    if source not in graph:
        raise TopologyError(f"source {source!r} not in graph")
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def hop_distance(graph, u, v):
    """Minimum hop count from ``u`` to ``v``; ``inf`` if disconnected."""
    if v not in graph:
        raise TopologyError(f"node {v!r} not in graph")
    return bfs_distances(graph, u).get(v, INFINITY)


def eccentricity(graph, node, within=None):
    """Max hop distance from ``node`` to the nodes of ``within``.

    ``within`` defaults to all of ``graph``.  If some target is unreachable
    the eccentricity is ``inf``.  The default path works directly on the
    kernel's distance array -- no node-set or target-set copies.
    """
    if node not in graph:
        raise TopologyError(f"source {node!r} not in graph")
    csr = graph.to_csr()
    dist = csr_bfs_distances(csr, csr.index_of[node])
    if within is None:
        if bool((dist < 0).any()):
            return INFINITY
        return int(dist.max())
    targets = set(within)
    missing = targets - set(graph.nodes)
    if missing:
        raise TopologyError(f"targets not in graph: {sorted(missing, key=repr)}")
    if not targets:
        raise TopologyError("eccentricity over an empty target set")
    index_of = csr.index_of
    rows = np.fromiter((index_of[target] for target in targets),
                       dtype=np.int64, count=len(targets))
    target_dist = dist[rows]
    if bool((target_dist < 0).any()):
        return INFINITY
    return int(target_dist.max())


def diameter(graph):
    """Max eccentricity over all nodes; ``inf`` if disconnected, 0 if empty."""
    if len(graph) == 0:
        return 0
    csr = graph.to_csr()
    best = 0
    for row in range(len(csr)):
        dist = csr_bfs_distances(csr, row)
        if bool((dist < 0).any()):
            # Some node is unreachable, so *every* eccentricity is inf.
            return INFINITY
        best = max(best, int(dist.max()))
    return best


def connected_components(graph):
    """List of node sets, one per connected component.

    Components are ordered by their first node in graph insertion order.
    """
    n = len(graph)
    if n == 0:
        return []
    csr = graph.to_csr()
    labels = csr_component_labels(csr)
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    starts = np.flatnonzero(np.r_[True, sorted_labels[1:] != sorted_labels[:-1]])
    bounds = np.r_[starts, n].tolist()
    ids = csr.ids
    members = order.tolist()
    return [{ids[i] for i in members[lo:hi]}
            for lo, hi in zip(bounds, bounds[1:])]


def connected_components_reference(graph):
    """The original per-component BFS sweep (equivalence oracle)."""
    remaining = set(graph.nodes)
    components = []
    while remaining:
        start = next(iter(remaining))
        component = set(bfs_distances_reference(graph, start))
        components.append(component)
        remaining -= component
    return components


def is_connected(graph):
    """True iff the graph has at most one connected component."""
    if len(graph) <= 1:
        return True
    csr = graph.to_csr()
    return bool((csr_bfs_distances(csr, 0) >= 0).all())
