"""Topology generators used by the paper's evaluation.

Three workloads appear in Section 5:

* random geometric graphs: nodes from a Poisson point process of intensity
  ``λ`` in the unit square, linked within transmission range ``R``
  (:func:`poisson_topology`);
* a regular grid whose identifiers increase left-to-right and bottom-to-top,
  the adversarial case for identifier tie-breaking (:func:`grid_topology`);
* the 9-node illustrative example of Figure 1 / Table 1
  (:func:`figure1_topology`).

Small deterministic shapes (line, ring, star, complete) are provided for
tests and examples.

All geometric generators funnel through :func:`~repro.graph.geometry.
unit_disk_graph`, which ingests the vectorized ``pairs_within_range``
array with ``Graph.from_pair_array`` -- graphs arrive with their CSR
snapshot already attached, so the density pass that follows in every
evaluation workload starts at array speed.
"""

import math
import warnings

import numpy as np

from repro.graph.geometry import unit_disk_graph
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng

_POSITIONAL_RNG_WARNED = set()


def positional_rng_shim(name, extras, rng, side):
    """Map legacy positional ``(rng, side)`` arguments to keywords.

    The generator suite takes ``rng=`` keyword-only so every topology
    factory shares one calling convention; the historical geometric
    generators accepted ``rng`` (and ``side``) positionally.  This shim
    keeps those call sites working, with a once-per-function
    ``DeprecationWarning``.
    """
    if not extras:
        return rng, side
    if len(extras) > 2:
        raise TypeError(
            f"{name}() takes at most 2 optional positional arguments "
            f"({len(extras)} given)"
        )
    if rng is not None or (len(extras) == 2 and side != 1.0):
        raise TypeError(
            f"{name}() got positional and keyword values for rng/side"
        )
    if name not in _POSITIONAL_RNG_WARNED:
        _POSITIONAL_RNG_WARNED.add(name)
        warnings.warn(
            f"passing rng (and side) positionally to {name}() is "
            "deprecated; use the rng= and side= keywords",
            DeprecationWarning,
            stacklevel=3,
        )
    rng = extras[0]
    if len(extras) == 2:
        side = extras[1]
    return rng, side


class Topology:
    """A graph plus the geometric and naming context it was built in.

    Attributes
    ----------
    graph:
        The connectivity :class:`~repro.graph.graph.Graph`.
    positions:
        ``dict[node, (x, y)]``; empty for purely combinatorial shapes.
    ids:
        ``dict[node, int]`` -- the "normal" unique identifier of each node,
        used for tie-breaking.  For integer-labeled topologies this is the
        identity mapping.
    radius:
        Transmission range used to build the unit-disk edges (``None`` for
        combinatorial shapes).
    spec:
        The :class:`~repro.graph.models.registry.TopologySpec` this
        topology was built from, when it came through the registry
        (``None`` for directly constructed topologies).
    """

    def __init__(self, graph, positions=None, ids=None, radius=None,
                 spec=None):
        self.graph = graph
        self.positions = dict(positions or {})
        if ids is None:
            ids = {node: node for node in graph}
        self.ids = dict(ids)
        self.radius = radius
        self.spec = spec
        self._validate()

    @classmethod
    def build(cls, spec, rng=None):
        """Build a topology from a spec string or ``TopologySpec``.

        ``spec`` is anything ``TopologySpec.parse`` accepts (e.g.
        ``"erdos_renyi:count=300,degree=6,seed=7"``); ``rng`` overrides
        the spec's own seed when given.  The built topology carries the
        resolved spec on its ``spec`` attribute.
        """
        from repro.graph.models.registry import build_topology_spec

        return build_topology_spec(spec, rng=rng)

    def _validate(self):
        if set(self.ids) != set(self.graph.nodes):
            raise ConfigurationError("ids must cover exactly the graph's nodes")
        if len(set(self.ids.values())) != len(self.ids):
            raise ConfigurationError("normal identifiers must be unique")
        if self.positions and set(self.positions) != set(self.graph.nodes):
            raise ConfigurationError("positions must cover exactly the graph's nodes")

    def __repr__(self):
        return (f"Topology(n={len(self.graph)}, m={self.graph.edge_count()}, "
                f"radius={self.radius})")


# ----------------------------------------------------------------------
# Paper workloads
# ----------------------------------------------------------------------

def poisson_topology(intensity, radius, *deprecated, rng=None, side=1.0):
    """Random geometric graph from a Poisson point process.

    The number of nodes is drawn from ``Poisson(intensity * side**2)`` and
    positions are i.i.d. uniform in the ``side x side`` square, which is the
    standard construction of a Poisson process restricted to a window.
    Identifiers ``0..n-1`` are assigned in draw order, so they are
    homogeneously distributed with respect to geometry (the "well
    distributed" case of Section 5).
    """
    rng, side = positional_rng_shim("poisson_topology", deprecated, rng, side)
    if intensity <= 0:
        raise ConfigurationError(f"intensity must be positive, got {intensity}")
    rng = as_rng(rng)
    count = int(rng.poisson(intensity * side * side))
    return uniform_topology(count, radius, rng=rng, side=side)


def uniform_topology(count, radius, *deprecated, rng=None, side=1.0):
    """``count`` uniformly placed nodes in a ``side x side`` square."""
    rng, side = positional_rng_shim("uniform_topology", deprecated, rng, side)
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    rng = as_rng(rng)
    positions = rng.uniform(0.0, side, size=(count, 2))
    graph, positions_by_id = unit_disk_graph(positions, radius)
    return Topology(graph, positions=positions_by_id, radius=radius)


def grid_topology(rows, cols, radius, side=1.0):
    """Regular grid in the unit square with row-major increasing ids.

    Node ``(col, row)`` sits at ``(col * sx, row * sy)`` where the spacings
    stretch the grid across the ``side x side`` square, and carries identifier
    ``row * cols + col`` -- i.e. ids increase left to right and bottom to top,
    exactly the adversarial distribution of Section 5 / Table 5.
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid needs at least one row and one column")
    sx = side / (cols - 1) if cols > 1 else 0.0
    sy = side / (rows - 1) if rows > 1 else 0.0
    positions = np.array([(col * sx, row * sy)
                          for row in range(rows) for col in range(cols)])
    node_ids = [row * cols + col for row in range(rows) for col in range(cols)]
    graph, positions_by_id = unit_disk_graph(positions, radius, node_ids=node_ids)
    return Topology(graph, positions=positions_by_id, radius=radius)


def square_grid_topology(approx_count, radius, side=1.0):
    """The most-square grid with roughly ``approx_count`` nodes.

    Table 5 uses "1000 nodes on a grid"; ``square_grid_topology(1000, R)``
    yields a 32x31 = 992-node grid, the closest near-square factorization.
    """
    if approx_count < 1:
        raise ConfigurationError("approx_count must be >= 1")
    rows = max(int(round(math.sqrt(approx_count))), 1)
    # The floor on cols guards the rounding: a request for >= 2 nodes
    # must never collapse to a single-node grid.
    min_cols = 2 if approx_count >= 2 and rows == 1 else 1
    cols = max(int(round(approx_count / rows)), min_cols)
    return grid_topology(rows, cols, radius, side=side)


_FIGURE1_EDGES = (
    ("a", "d"), ("a", "i"),
    ("b", "c"), ("b", "d"), ("b", "h"), ("b", "i"),
    ("h", "i"),
    ("d", "f"), ("d", "j"),
    ("f", "j"),
    ("e", "i"),
)

# The paper assumes node j's identifier is smaller than node f's ("Let's
# assume that node j has the smallest Id"); every other tie is unconstrained,
# so the remaining letters keep alphabetical order.
_FIGURE1_IDS = {"a": 0, "b": 1, "c": 2, "d": 3, "e": 4, "j": 5, "f": 6,
                "h": 7, "i": 8}

# Hand layout mirroring Figure 1 (used only for ASCII rendering).
_FIGURE1_POSITIONS = {
    "h": (0.15, 0.90), "b": (0.30, 0.90), "e": (0.70, 0.90),
    "d": (0.45, 0.70),
    "i": (0.25, 0.55), "a": (0.40, 0.55),
    "f": (0.30, 0.35),
    "j": (0.25, 0.15),
    "c": (0.60, 0.10),
}


def figure1_topology():
    """The illustrative 9-node example of Figure 1 / Table 1.

    The paper gives per-node neighbor and link counts rather than an edge
    list; this edge set is the (unique up to relabeling) reconstruction that
    reproduces every row of Table 1, which the test suite checks exactly.
    """
    graph = Graph(nodes=_FIGURE1_IDS, edges=_FIGURE1_EDGES)
    return Topology(graph, positions=_FIGURE1_POSITIONS, ids=_FIGURE1_IDS)


# ----------------------------------------------------------------------
# Deterministic shapes for tests and examples
# ----------------------------------------------------------------------

def line_topology(count):
    """A path ``0 - 1 - ... - count-1``."""
    if count < 1:
        raise ConfigurationError("line needs at least one node")
    edges = [(i, i + 1) for i in range(count - 1)]
    return Topology(Graph(nodes=range(count), edges=edges))


def ring_topology(count):
    """A cycle over ``count >= 3`` nodes."""
    if count < 3:
        raise ConfigurationError("ring needs at least three nodes")
    edges = [(i, (i + 1) % count) for i in range(count)]
    return Topology(Graph(nodes=range(count), edges=edges))


def star_topology(leaves):
    """Node 0 linked to ``leaves`` leaf nodes ``1..leaves``."""
    if leaves < 1:
        raise ConfigurationError("star needs at least one leaf")
    edges = [(0, i) for i in range(1, leaves + 1)]
    return Topology(Graph(nodes=range(leaves + 1), edges=edges))


def complete_topology(count):
    """The complete graph on ``count`` nodes."""
    if count < 1:
        raise ConfigurationError("complete graph needs at least one node")
    pairs = np.column_stack(np.triu_indices(count, k=1))
    return Topology(Graph.from_pair_array(pairs, count))
