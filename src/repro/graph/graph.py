"""Undirected graph with the neighborhood vocabulary of the paper.

The paper's model (Section 3): a set ``V`` of nodes with unique identifiers;
``Np`` is the 1-neighborhood of ``p`` (``p`` itself excluded); communication
is bidirectional; ``N^i_p`` is the i-neighborhood.  This module implements
that model directly, with the symmetry invariant enforced on every mutation.

Two construction regimes coexist:

* incremental (``add_node`` / ``add_edge``), for the protocol simulations
  that churn single edges;
* bulk (``add_edges_from`` / ``from_pair_array``), for the evaluation
  workloads that ingest the whole ``pairs_within_range`` array at once --
  adjacency sets are filled per *node* with vectorized grouping, never
  per edge, and self-loop rejection plus the symmetry invariant hold
  exactly as on the incremental path;
* streamed (``from_pair_chunks``), for million-node builds: only compact
  ``int32`` pair arrays are accumulated and the dict adjacency is
  materialized *lazily* from the CSR snapshot on first dict-shaped
  access, so read-only consumers never pay for per-node Python sets.

``to_csr`` exposes a frozen :class:`~repro.graph.csr.CSRAdjacency`
snapshot for array-speed analytics; it is built on first use, cached, and
invalidated by any mutation, so repeated reads over an unchanged graph
reuse it in O(1).

Pickling is payload-aware: when a shared-memory share session is active
(:func:`repro.graph.shm.share_graphs`, used by the pool backend), big
graphs serialize as a tiny ``SharedCSR`` handle and workers attach to the
publisher's frozen arrays zero-copy; lazy graphs ship their compact pair
arrays; plain dict graphs pickle as before.  The distributed (TCP)
backend never activates a session, so its wire protocol still pickles --
that seam is documented, not hidden.
"""

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.util.errors import TopologyError


class Graph:
    """An undirected graph over hashable node identifiers.

    Adjacency is stored as ``dict[node, set[node]]``.  Self-loops are
    rejected (the paper requires ``p not in Np``) and edges are always
    symmetric (``q in Np  iff  p in Nq``), on the incremental and the bulk
    construction paths alike.
    """

    def __init__(self, nodes=(), edges=()):
        self._adj = {}
        self._csr = None
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # adjacency backend (eager dict, or lazy behind a CSR snapshot)
    # ------------------------------------------------------------------

    @property
    def _adj(self):
        if self._adj_map is None:
            self._materialize_adj()
        return self._adj_map

    @_adj.setter
    def _adj(self, value):
        self._adj_map = value

    def _materialize_adj(self):
        """Build the dict adjacency from the CSR snapshot (lazy graphs).

        Graphs built by :meth:`from_pair_chunks` -- and graphs attached
        from a shared-memory snapshot -- carry only the CSR arrays until a
        caller needs dict semantics.  Neighbor sets are filled in
        ascending index order: identical *contents* to the eager path,
        though not necessarily the same set iteration order.
        """
        csr = self._csr
        if csr is None:
            raise TopologyError("lazy graph has no CSR snapshot to materialize")
        ids = csr.ids
        indptr = csr.indptr.tolist()
        flat = csr.indices.tolist()
        adj = {}
        for i, node in enumerate(ids):
            adj[node] = {ids[j] for j in flat[indptr[i] : indptr[i + 1]]}
        self._adj_map = adj

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, node):
        """Add ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = set()
            self._csr = None

    def add_edge(self, u, v):
        """Add the undirected edge ``{u, v}``, creating endpoints as needed."""
        if u == v:
            raise TopologyError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._csr = None

    def add_edges_from(self, edges):
        """Add every edge of ``edges`` in bulk.

        ``edges`` is either an ``(m, 2)`` integer array (the
        ``pairs_within_range`` shape; entries are node identifiers) or any
        iterable of ``(u, v)`` pairs.  The array path groups the directed
        endpoints with one vectorized sort and fills each adjacency set in
        a single per-node ``update`` -- no per-edge Python loop; new nodes
        are created in ascending identifier order.  Self-loops raise
        :class:`TopologyError` and duplicates are idempotent, exactly as
        with repeated :meth:`add_edge` calls.
        """
        if isinstance(edges, np.ndarray):
            if edges.ndim != 2 or edges.shape[1] != 2:
                raise TopologyError("edge array must have shape (m, 2)")
            if not np.issubdtype(edges.dtype, np.integer):
                raise TopologyError(
                    "edge array entries must be integer node identifiers")
            if edges.size == 0:
                return
            lo = np.minimum(edges[:, 0], edges[:, 1])
            hi = np.maximum(edges[:, 0], edges[:, 1])
            if (lo == hi).any():
                node = int(lo[int(np.argmax(lo == hi))])
                raise TopologyError(
                    f"self-loop on node {node!r} is not allowed")
            # Canonical (lo, hi) lexicographic order: the merge result is
            # then independent of the caller's row order.
            order = np.lexsort((hi, lo))
            lo, hi = lo[order], hi[order]
            for node in np.unique(edges).tolist():
                self.add_node(node)
            self._bulk_merge(lo, hi, None)
        else:
            for u, v in edges:
                self.add_edge(u, v)

    @classmethod
    def from_pair_array(cls, pairs, node_ids):
        """Build a graph from an index-pair array in one bulk pass.

        ``pairs`` is an ``(m, 2)`` integer array of *positions* (the
        ``pairs_within_range`` output); ``node_ids`` is either the node
        count ``n`` (identifiers are then ``0..n-1``) or a sequence
        mapping position -> identifier, whose length fixes ``n`` so
        isolated nodes are preserved.  Pairs are canonicalized and
        deduplicated; self-loops and out-of-range positions raise
        :class:`TopologyError`.  The CSR snapshot is built as a by-product
        and cached, so a following :meth:`to_csr` is free.
        """
        if isinstance(node_ids, (int, np.integer)):
            n = int(node_ids)
            ids = range(n)
            identity = True
        else:
            ids = list(node_ids)
            n = len(ids)
            if len(set(ids)) != n:
                raise TopologyError("node identifiers must be unique")
            identity = False
        pairs = np.asarray(pairs)
        if pairs.size == 0:
            pairs = pairs.reshape(0, 2).astype(np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise TopologyError("pairs must be an (m, 2) array")
        if not np.issubdtype(pairs.dtype, np.integer):
            raise TopologyError("pairs must contain integer positions")
        graph = cls(nodes=ids)
        if len(pairs):
            if int(pairs.min()) < 0 or int(pairs.max()) >= n:
                raise TopologyError(
                    f"pair positions must lie in [0, {n}), got range "
                    f"[{int(pairs.min())}, {int(pairs.max())}]")
            lo = np.minimum(pairs[:, 0], pairs[:, 1]).astype(np.int64)
            hi = np.maximum(pairs[:, 0], pairs[:, 1]).astype(np.int64)
            if (lo == hi).any():
                pos = int(lo[int(np.argmax(lo == hi))])
                raise TopologyError(
                    f"self-loop on node {pos!r} is not allowed")
            # Sort + dedup through a scalar key: one int64 sort instead of
            # a slow structured-dtype row unique.
            keys = np.unique(lo * n + hi)
            lo, hi = keys // n, keys % n
            graph._bulk_merge(lo, hi, None if identity else ids)
        else:
            lo = hi = np.empty(0, dtype=np.int64)
        graph._csr = CSRAdjacency.from_pairs(lo, hi, ids)
        return graph

    @classmethod
    def from_pair_chunks(cls, chunks, node_ids):
        """Build a graph from a stream of canonical index-pair chunks.

        ``chunks`` yields ``(k, 2)`` integer arrays of *positions* whose
        concatenation must be strictly lexicographically increasing with
        ``i < j`` per row -- the :func:`~repro.graph.geometry.chunk_pairs`
        contract, which also rules out duplicates and self-loops.
        ``node_ids`` is as in :meth:`from_pair_array`.

        Only the compact ``int32`` pair arrays are accumulated (never a
        chunk's candidate expansion, and never a per-edge Python loop),
        and the result carries just the CSR snapshot: the dict adjacency
        is materialized lazily on first dict-shaped access, so a
        10^6-node build stays within a few hundred MB.
        """
        if isinstance(node_ids, (int, np.integer)):
            n = int(node_ids)
            ids = range(n)
        else:
            ids = list(node_ids)
            n = len(ids)
            if len(set(ids)) != n:
                raise TopologyError("node identifiers must be unique")
        if n >= 2**31:
            raise TopologyError("chunked construction is limited to int32 rows")
        lo_parts = []
        hi_parts = []
        last_key = -1
        for pairs in chunks:
            pairs = np.asarray(pairs)
            if pairs.size == 0:
                continue
            if pairs.ndim != 2 or pairs.shape[1] != 2:
                raise TopologyError("pair chunks must be (k, 2) arrays")
            if not np.issubdtype(pairs.dtype, np.integer):
                raise TopologyError("pair chunks must contain integer positions")
            if int(pairs.min()) < 0 or int(pairs.max()) >= n:
                raise TopologyError(
                    f"pair positions must lie in [0, {n}), got range "
                    f"[{int(pairs.min())}, {int(pairs.max())}]"
                )
            lo = pairs[:, 0].astype(np.int64)
            hi = pairs[:, 1].astype(np.int64)
            keys = lo * n + hi
            bad = (lo >= hi).any() or int(keys[0]) <= last_key
            if not bad and len(keys) > 1:
                bad = bool((np.diff(keys) <= 0).any())
            if bad:
                raise TopologyError(
                    "pair chunks must be canonical: i < j rows, strictly "
                    "lexicographically increasing across the whole stream"
                )
            last_key = int(keys[-1])
            lo_parts.append(lo.astype(np.int32))
            hi_parts.append(hi.astype(np.int32))
        if lo_parts:
            lo = np.concatenate(lo_parts)
            hi = np.concatenate(hi_parts)
        else:
            lo = hi = np.empty(0, dtype=np.int32)
        graph = cls()
        graph._adj_map = None
        graph._csr = CSRAdjacency.from_pairs(lo, hi, ids)
        return graph

    def _bulk_merge(self, lo, hi, to_id):
        """Merge canonical pairs into the adjacency sets, one node at a time.

        ``lo`` / ``hi`` hold node identifiers directly when ``to_id`` is
        ``None``, else positions translated through the ``to_id`` sequence.
        Callers pass the pairs in (lo, hi) lexicographic order; each set
        then receives its neighbors smaller-endpoint-first in pair order
        -- the same insertion sequence a pair-by-pair ``add_edge`` loop
        over those sorted pairs would produce, which keeps iteration
        order (and everything downstream of it) identical to the
        incremental path.
        """
        src = np.concatenate((hi, lo))
        dst = np.concatenate((lo, hi))
        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
        starts = np.flatnonzero(np.r_[True, src[1:] != src[:-1]])
        ends = np.r_[starts[1:], src.size]
        owners = src[starts].tolist()
        dst_list = dst.tolist()
        adj = self._adj
        for owner, s, e in zip(owners, starts.tolist(), ends.tolist()):
            if to_id is None:
                adj[owner].update(dst_list[s:e])
            else:
                adj[to_id[owner]].update(to_id[x] for x in dst_list[s:e])
        self._csr = None

    def remove_edge(self, u, v):
        """Remove the undirected edge ``{u, v}``; missing edges are errors."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError:
            raise TopologyError(f"edge ({u!r}, {v!r}) not in graph") from None
        self._csr = None

    def apply_edge_delta(self, added=(), removed=(), observer=None):
        """Apply an exact undirected edge delta: removals, then additions.

        ``added`` / ``removed`` are ``(k, 2)`` integer arrays or iterables of
        ``(u, v)`` pairs whose endpoints must already be nodes of the graph
        (node churn goes through :meth:`add_node` / :meth:`remove_node`).
        A delta is an exact set difference, not an idempotent merge: every
        removed edge must exist and every added edge must be absent, so a
        stale delta fails loudly instead of silently desynchronizing the
        maintained state.

        ``observer`` hooks incremental analytics into the mutation sequence
        (the dynamic subsystem's triangle counter rides this): for each
        removal, ``observer.edge_removed(graph, u, v)`` runs while the edge
        is still present; for each addition, ``observer.edge_added(graph,
        u, v)`` runs once the edge is in place.  The CSR snapshot is
        invalidated once for the whole batch.
        """
        adj = self._adj  # materialize (lazy graphs) before dropping the CSR
        self._csr = None
        if isinstance(removed, np.ndarray):
            removed = removed.tolist()
        for u, v in removed:
            if u not in adj or v not in adj[u]:
                raise TopologyError(f"edge ({u!r}, {v!r}) not in graph")
            if observer is not None:
                observer.edge_removed(self, u, v)
            adj[u].remove(v)
            adj[v].remove(u)
        if isinstance(added, np.ndarray):
            added = added.tolist()
        for u, v in added:
            if u == v:
                raise TopologyError(f"self-loop on node {u!r} is not allowed")
            if u not in adj or v not in adj:
                missing = u if u not in adj else v
                raise TopologyError(f"node {missing!r} not in graph")
            if v in adj[u]:
                raise TopologyError(
                    f"edge ({u!r}, {v!r}) already in graph; deltas are exact")
            adj[u].add(v)
            adj[v].add(u)
            if observer is not None:
                observer.edge_added(self, u, v)

    def remove_node(self, node):
        """Remove ``node`` and all its incident edges."""
        if node not in self._adj:
            raise TopologyError(f"node {node!r} not in graph")
        for neighbor in self._adj[node]:
            self._adj[neighbor].discard(node)
        del self._adj[node]
        self._csr = None

    def copy(self):
        """Return an independent copy of this graph."""
        clone = Graph()
        clone._adj_map = (
            None
            if self._adj_map is None
            else {node: set(nbrs) for node, nbrs in self._adj_map.items()}
        )
        # The snapshot is immutable and describes the same structure, so
        # the copy can share it until either side mutates.
        clone._csr = self._csr
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, node):
        if self._adj_map is None:
            return node in self._csr.index_of
        return node in self._adj_map

    def __len__(self):
        if self._adj_map is None:
            return len(self._csr.ids)
        return len(self._adj_map)

    def __iter__(self):
        if self._adj_map is None:
            return iter(self._csr.ids)
        return iter(self._adj_map)

    def __getstate__(self):
        # Payload-aware pickling, in order of preference: a shared-memory
        # handle when a share session is active and the graph is big
        # enough (pool workers attach zero-copy); the compact int32 pair
        # arrays for lazy graphs; the dict adjacency otherwise (the
        # cached snapshot is dropped -- cheap to rebuild, bulky on the
        # wire).
        handle = _shm_handle(self)
        if handle is not None:
            return {"_shm": handle}
        if self._adj_map is None:
            csr = self._csr
            row, col = csr.edge_arrays()
            ids = csr.ids
            if ids == tuple(range(len(ids))):
                ids = len(ids)
            return {"_pairs": (row.astype(np.int32), col.astype(np.int32), ids)}
        return {"_adj": self._adj_map}

    def __setstate__(self, state):
        if "_shm" in state:
            self._adj_map = None
            self._csr = state["_shm"].attach()
        elif "_pairs" in state:
            lo, hi, ids = state["_pairs"]
            if isinstance(ids, int):
                ids = range(ids)
            self._adj_map = None
            self._csr = CSRAdjacency.from_pairs(
                lo.astype(np.int64), hi.astype(np.int64), ids
            )
        else:
            self._adj_map = state["_adj"]
            self._csr = None

    @property
    def nodes(self):
        """All node identifiers, in insertion order."""
        if self._adj_map is None:
            return list(self._csr.ids)
        return list(self._adj_map)

    @property
    def edges(self):
        """Each undirected edge once, as a sorted-by-insertion (u, v) pair.

        Emits ``(u, v)`` from the earlier-inserted endpoint: since nodes
        are scanned in insertion order, an insertion-rank check picks each
        edge exactly once without materializing a ``seen`` set of tuples.
        """
        rank = {node: i for i, node in enumerate(self._adj)}
        result = []
        for u, nbrs in self._adj.items():
            ru = rank[u]
            for v in nbrs:
                if ru < rank[v]:
                    result.append((u, v))
        return result

    def to_csr(self):
        """The frozen :class:`~repro.graph.csr.CSRAdjacency` snapshot.

        Built from the current adjacency on first call and cached; any
        mutation (node or edge, incremental or bulk) invalidates the cache
        so the next call rebuilds.  Graphs built by :meth:`from_pair_array`
        carry their snapshot from construction.
        """
        if self._csr is None:
            self._csr = CSRAdjacency.from_dict(self._adj)
        return self._csr

    def adopt_csr(self, csr):
        """Install an externally built snapshot as the CSR cache.

        The dynamic subsystem rebuilds snapshots from its maintained edge
        arrays (an O(m) argsort) instead of the O(m) Python translation of
        :meth:`CSRAdjacency.from_dict`; this hands the result back to the
        graph so every snapshot consumer sees it.  The caller guarantees
        the snapshot describes the current adjacency -- node count and
        edge count are cross-checked here as a cheap guard, the full
        equivalence is the property suite's job.
        """
        if len(csr) != len(self) or csr.edge_count() != self.edge_count():
            raise TopologyError(
                "adopted CSR snapshot does not match the graph's shape")
        self._csr = csr

    def has_edge(self, u, v):
        """True iff the undirected edge ``{u, v}`` exists."""
        if self._adj_map is None:
            index_of = self._csr.index_of
            if u not in index_of or v not in index_of:
                return False
            return self._csr.has_edge(index_of[u], index_of[v])
        return u in self._adj_map and v in self._adj_map[u]

    def neighbors(self, node):
        """``Np``: the 1-neighborhood of ``node`` (node itself excluded)."""
        if self._adj_map is None:
            csr = self._csr
            index = csr.index_of.get(node)
            if index is None:
                raise TopologyError(f"node {node!r} not in graph")
            ids = csr.ids
            return {ids[j] for j in csr.neighbors_of(index).tolist()}
        if node not in self._adj_map:
            raise TopologyError(f"node {node!r} not in graph")
        return set(self._adj_map[node])

    def common_neighbors(self, u, v):
        """``Nu ∩ Nv``: nodes adjacent to both ``u`` and ``v``.

        One set intersection over the internal adjacency (no copies of the
        full neighborhoods); each endpoint is excluded automatically since
        ``p not in Np``.  The triangle-delta maintenance of
        :mod:`repro.graph.dynamic` calls this once per changed edge.
        """
        try:
            return self._adj[u] & self._adj[v]
        except KeyError:
            missing = u if u not in self._adj else v
            raise TopologyError(f"node {missing!r} not in graph") from None

    def closed_neighbors(self, node):
        """``{p} ∪ Np``: node plus its 1-neighborhood."""
        closed = self.neighbors(node)
        closed.add(node)
        return closed

    def degree(self, node):
        """``|Np|``."""
        if self._adj_map is None:
            csr = self._csr
            index = csr.index_of.get(node)
            if index is None:
                raise TopologyError(f"node {node!r} not in graph")
            return int(csr.indptr[index + 1] - csr.indptr[index])
        if node not in self._adj_map:
            raise TopologyError(f"node {node!r} not in graph")
        return len(self._adj_map[node])

    def max_degree(self):
        """``δ``: the maximum degree over all nodes (0 for an empty graph)."""
        if self._adj_map is None:
            degrees = self._csr.degrees()
            return int(degrees.max()) if len(degrees) else 0
        if not self._adj_map:
            return 0
        return max(len(nbrs) for nbrs in self._adj_map.values())

    def k_neighborhood(self, node, k):
        """``N^k_p``: every node within ``k`` hops of ``node``, excluding it.

        Matches the paper's recursive definition
        ``N^i_p = N^{i-1}_p ∪ {r | ∃q ∈ N^{i-1}_p, r ∈ Nq}`` (minus ``p``).
        """
        if k < 1:
            raise TopologyError(f"k must be >= 1, got {k}")
        frontier = self.neighbors(node)
        reached = set(frontier)
        for _ in range(k - 1):
            frontier = {r for q in frontier for r in self._adj[q]} - reached - {node}
            if not frontier:
                break
            reached |= frontier
        reached.discard(node)
        return reached

    def edge_count(self):
        """Number of undirected edges (degree sum halved; no edge list)."""
        if self._adj_map is None:
            return self._csr.edge_count()
        return sum(len(nbrs) for nbrs in self._adj_map.values()) // 2

    def induced_subgraph(self, nodes):
        """The subgraph induced by ``nodes`` (unknown nodes are errors)."""
        keep = set(nodes)
        missing = keep - set(self._adj)
        if missing:
            raise TopologyError(f"nodes not in graph: {sorted(missing, key=repr)}")
        sub = Graph(nodes=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep:
                    sub._adj[u].add(v)
        return sub

    def check_symmetry(self):
        """Verify the bidirectional-links invariant; raise if violated.

        Exists for tests and for defensive validation after bulk mutations;
        the mutating methods preserve symmetry by construction.
        """
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u not in self._adj.get(v, ()):
                    raise TopologyError(f"asymmetric edge: {u!r} -> {v!r}")

    def __repr__(self):
        return f"Graph(n={len(self)}, m={self.edge_count()})"


def _shm_handle(graph):
    """The graph's ``SharedCSR`` handle when a share session wants it.

    Returns ``None`` when no session is active or the graph is below the
    session's size threshold; the import stays local so plain pickling
    never touches the shared-memory machinery.
    """
    from repro.graph import shm

    session = shm.active_session()
    if session is None:
        return None
    return session.handle_for(graph)
