"""Undirected graph with the neighborhood vocabulary of the paper.

The paper's model (Section 3): a set ``V`` of nodes with unique identifiers;
``Np`` is the 1-neighborhood of ``p`` (``p`` itself excluded); communication
is bidirectional; ``N^i_p`` is the i-neighborhood.  This module implements
that model directly, with the symmetry invariant enforced on every mutation.
"""

from repro.util.errors import TopologyError


class Graph:
    """An undirected graph over hashable node identifiers.

    Adjacency is stored as ``dict[node, set[node]]``.  Self-loops are
    rejected (the paper requires ``p not in Np``) and edges are always
    symmetric (``q in Np  iff  p in Nq``).
    """

    def __init__(self, nodes=(), edges=()):
        self._adj = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, node):
        """Add ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_edge(self, u, v):
        """Add the undirected edge ``{u, v}``, creating endpoints as needed."""
        if u == v:
            raise TopologyError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def remove_edge(self, u, v):
        """Remove the undirected edge ``{u, v}``; missing edges are errors."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError:
            raise TopologyError(f"edge ({u!r}, {v!r}) not in graph") from None

    def remove_node(self, node):
        """Remove ``node`` and all its incident edges."""
        if node not in self._adj:
            raise TopologyError(f"node {node!r} not in graph")
        for neighbor in self._adj[node]:
            self._adj[neighbor].discard(node)
        del self._adj[node]

    def copy(self):
        """Return an independent copy of this graph."""
        clone = Graph()
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, node):
        return node in self._adj

    def __len__(self):
        return len(self._adj)

    def __iter__(self):
        return iter(self._adj)

    @property
    def nodes(self):
        """All node identifiers, in insertion order."""
        return list(self._adj)

    @property
    def edges(self):
        """Each undirected edge once, as a sorted-by-insertion (u, v) pair."""
        seen = set()
        result = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if (v, u) not in seen:
                    seen.add((u, v))
                    result.append((u, v))
        return result

    def has_edge(self, u, v):
        """True iff the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node):
        """``Np``: the 1-neighborhood of ``node`` (node itself excluded)."""
        if node not in self._adj:
            raise TopologyError(f"node {node!r} not in graph")
        return set(self._adj[node])

    def closed_neighbors(self, node):
        """``{p} ∪ Np``: node plus its 1-neighborhood."""
        closed = self.neighbors(node)
        closed.add(node)
        return closed

    def degree(self, node):
        """``|Np|``."""
        if node not in self._adj:
            raise TopologyError(f"node {node!r} not in graph")
        return len(self._adj[node])

    def max_degree(self):
        """``δ``: the maximum degree over all nodes (0 for an empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def k_neighborhood(self, node, k):
        """``N^k_p``: every node within ``k`` hops of ``node``, excluding it.

        Matches the paper's recursive definition
        ``N^i_p = N^{i-1}_p ∪ {r | ∃q ∈ N^{i-1}_p, r ∈ Nq}`` (minus ``p``).
        """
        if k < 1:
            raise TopologyError(f"k must be >= 1, got {k}")
        frontier = self.neighbors(node)
        reached = set(frontier)
        for _ in range(k - 1):
            frontier = {r for q in frontier for r in self._adj[q]} - reached - {node}
            if not frontier:
                break
            reached |= frontier
        reached.discard(node)
        return reached

    def edge_count(self):
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def induced_subgraph(self, nodes):
        """The subgraph induced by ``nodes`` (unknown nodes are errors)."""
        keep = set(nodes)
        missing = keep - set(self._adj)
        if missing:
            raise TopologyError(f"nodes not in graph: {sorted(missing, key=repr)}")
        sub = Graph(nodes=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep:
                    sub._adj[u].add(v)
        return sub

    def check_symmetry(self):
        """Verify the bidirectional-links invariant; raise if violated.

        Exists for tests and for defensive validation after bulk mutations;
        the mutating methods preserve symmetry by construction.
        """
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u not in self._adj.get(v, ()):
                    raise TopologyError(f"asymmetric edge: {u!r} -> {v!r}")

    def __repr__(self):
        return f"Graph(n={len(self)}, m={self.edge_count()})"
