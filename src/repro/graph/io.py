"""Graph I/O: edge-list and GML load/save for recorded topologies.

Real-world topologies and recorded mobility snapshots arrive as files,
not generators.  This module round-trips a
:class:`~repro.graph.generators.Topology` through two formats:

* **edge list** (``.edges`` / ``.txt``) -- a commented text format with
  an explicit node section (one ``<node> <tie-id> [<x> <y>]`` line per
  node), so isolated nodes, non-contiguous identifiers and positions
  all survive;
* **GML** (``.gml``) -- the interchange subset real datasets use:
  ``node [ id label graphics [ x y ] ]`` and ``edge [ source target ]``
  blocks, parsed by a small recursive tokenizer that skips unknown
  attributes.

Both loaders rebuild the graph through ``Graph.from_pair_array`` over
index pairs in the file's node order, so a save/load cycle reproduces
the CSR arrays (``indptr`` / ``indices`` / ``ids``) bit for bit -- the
round-trip contract the test suite asserts.  Positions are written with
``repr`` (shortest exact decimal), so float coordinates round-trip
exactly too.

Registered as the ``file`` topology scheme:
``--topology file:trace.gml`` (or ``file:path=trace.edges,format=edges``)
feeds a recorded topology to every experiment family.
"""

import os

import numpy as np

from repro.graph.generators import Topology
from repro.graph.graph import Graph
from repro.graph.models.registry import register_topology
from repro.util.errors import ConfigurationError

#: Supported formats, by canonical name.
FORMATS = ("edges", "gml")

_EXTENSIONS = {".edges": "edges", ".txt": "edges", ".gml": "gml"}

_EDGE_LIST_MAGIC = "# repro edge list v1"


def infer_format(path, format=None):
    """Resolve an explicit or extension-inferred format name."""
    if format is not None:
        if format not in FORMATS:
            raise ConfigurationError(
                f"unknown graph format {format!r}; expected one of {FORMATS}"
            )
        return format
    extension = os.path.splitext(str(path))[1].lower()
    if extension in _EXTENSIONS:
        return _EXTENSIONS[extension]
    raise ConfigurationError(
        f"cannot infer graph format from {path!r}; pass format= "
        f"(one of {FORMATS})"
    )


def save_graph(topology, path, format=None):
    """Write ``topology`` to ``path`` in the given or inferred format."""
    format = infer_format(path, format)
    if format == "edges":
        save_edge_list(topology, path)
    else:
        save_gml(topology, path)


def load_graph(path, format=None):
    """Load a :class:`Topology` from ``path`` (format inferred from the
    extension unless given)."""
    format = infer_format(path, format)
    if format == "edges":
        return load_edge_list(path)
    return load_gml(path)


@register_topology("file", geometric=True)
def file_topology(path=None, format=None, rng=None):
    """The ``file`` scheme: load a recorded topology from disk.

    ``rng`` is accepted for registry uniformity and ignored -- a
    recorded topology is deterministic by definition.
    """
    if path is None:
        raise ConfigurationError(
            "the file topology requires path= (e.g. file:trace.gml)"
        )
    if not os.path.exists(path):
        raise ConfigurationError(f"graph file {path!r} does not exist")
    return load_graph(path, format=format)


# ----------------------------------------------------------------------
# node bookkeeping shared by both formats
# ----------------------------------------------------------------------


def _node_token(node):
    """A whitespace-free token for a node identifier (int or str)."""
    token = str(node)
    if not token or any(ch.isspace() for ch in token):
        raise ConfigurationError(
            f"node identifier {node!r} cannot be written to a graph file"
        )
    return token


def _parse_node(token):
    """Inverse of :func:`_node_token`: ints come back as ints."""
    try:
        return int(token)
    except ValueError:
        return token


def _topology_rows(topology):
    """``(node, tie_id, position-or-None)`` per node, in CSR id order."""
    csr = topology.graph.to_csr()
    positions = topology.positions or None
    return [
        (node, topology.ids[node], positions[node] if positions else None)
        for node in csr.ids
    ]


def _assemble(nodes, ties, positions, index_pairs, radius=None):
    """Shared loader tail: index pairs -> CSR-first Topology."""
    if len(set(nodes)) != len(nodes):
        raise ConfigurationError("graph file repeats a node identifier")
    graph = Graph.from_pair_array(
        np.asarray(index_pairs, dtype=np.int64).reshape(-1, 2), nodes
    )
    ids = dict(zip(nodes, ties))
    return Topology(
        graph,
        positions=positions if positions else None,
        ids=ids,
        radius=radius,
    )


# ----------------------------------------------------------------------
# edge list
# ----------------------------------------------------------------------


def save_edge_list(topology, path):
    """Write the ``repro edge list v1`` text format.

    Node lines are ``<node> <tie-id>`` plus ``<x> <y>`` when positions
    exist; edge lines are node-*index* pairs in CSR (lexicographic)
    order, so the file is a deterministic function of the topology.
    """
    rows = _topology_rows(topology)
    csr = topology.graph.to_csr()
    row_idx, col_idx = csr.edge_arrays()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_EDGE_LIST_MAGIC + "\n")
        if topology.radius is not None:
            handle.write(f"# radius {topology.radius!r}\n")
        handle.write(f"# nodes {len(rows)}\n")
        for node, tie, position in rows:
            line = f"{_node_token(node)} {tie}"
            if position is not None:
                line += f" {position[0]!r} {position[1]!r}"
            handle.write(line + "\n")
        handle.write(f"# edges {len(row_idx)}\n")
        for u, v in zip(row_idx.tolist(), col_idx.tolist()):
            handle.write(f"{u} {v}\n")


def load_edge_list(path):
    """Load a ``repro edge list v1`` file into a :class:`Topology`."""
    with open(path, encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    if not lines or lines[0] != _EDGE_LIST_MAGIC:
        raise ConfigurationError(
            f"{path!r} is not a repro edge list (missing "
            f"{_EDGE_LIST_MAGIC!r} header)"
        )
    radius = None
    nodes, ties, positions = [], [], {}
    index_pairs = []
    expected_nodes = expected_edges = None
    section = None
    for line in lines[1:]:
        if not line:
            continue
        if line.startswith("#"):
            fields = line[1:].split()
            if fields[:1] == ["radius"]:
                radius = float(fields[1])
            elif fields[:1] == ["nodes"]:
                expected_nodes = int(fields[1])
                section = "nodes"
            elif fields[:1] == ["edges"]:
                expected_edges = int(fields[1])
                section = "edges"
            continue
        fields = line.split()
        if section == "nodes":
            if len(fields) not in (2, 4):
                raise ConfigurationError(f"malformed node line {line!r} in {path!r}")
            node = _parse_node(fields[0])
            nodes.append(node)
            ties.append(int(fields[1]))
            if len(fields) == 4:
                positions[node] = (float(fields[2]), float(fields[3]))
        elif section == "edges":
            if len(fields) != 2:
                raise ConfigurationError(f"malformed edge line {line!r} in {path!r}")
            index_pairs.append((int(fields[0]), int(fields[1])))
        else:
            raise ConfigurationError(
                f"data line {line!r} before any section header in {path!r}"
            )
    if expected_nodes is not None and expected_nodes != len(nodes):
        raise ConfigurationError(
            f"{path!r} declares {expected_nodes} nodes but lists {len(nodes)}"
        )
    if expected_edges is not None and expected_edges != len(index_pairs):
        raise ConfigurationError(
            f"{path!r} declares {expected_edges} edges but lists "
            f"{len(index_pairs)}"
        )
    return _assemble(nodes, ties, positions, index_pairs, radius=radius)


# ----------------------------------------------------------------------
# GML
# ----------------------------------------------------------------------


def save_gml(topology, path):
    """Write the GML interchange subset (AGNet-style).

    Node blocks carry ``id`` (the CSR index), ``label`` (the node
    identifier), ``tie`` (the tie-break identifier) and a ``graphics``
    block when positions exist; edge blocks reference node ids in CSR
    order.
    """
    rows = _topology_rows(topology)
    csr = topology.graph.to_csr()
    row_idx, col_idx = csr.edge_arrays()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("graph [\n  directed 0\n")
        if topology.radius is not None:
            handle.write(f"  radius {topology.radius!r}\n")
        for index, (node, tie, position) in enumerate(rows):
            handle.write("  node [\n")
            handle.write(f"    id {index}\n")
            handle.write(f'    label "{_node_token(node)}"\n')
            handle.write(f"    tie {tie}\n")
            if position is not None:
                handle.write(f"    graphics [ x {position[0]!r} y {position[1]!r} ]\n")
            handle.write("  ]\n")
        for u, v in zip(row_idx.tolist(), col_idx.tolist()):
            handle.write(f"  edge [ source {u} target {v} ]\n")
        handle.write("]\n")


def _tokenize_gml(text):
    """GML token stream: quoted strings stay single tokens."""
    tokens = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch == '"':
            j = text.index('"', i + 1)
            tokens.append(("str", text[i + 1 : j]))
            i = j + 1
        elif ch in "[]":
            tokens.append((ch, ch))
            i += 1
        elif ch == "#":
            while i < n and text[i] != "\n":
                i += 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in "[]":
                j += 1
            tokens.append(("atom", text[i:j]))
            i = j
    return tokens


def _parse_gml_block(tokens, start):
    """Parse ``key value`` entries until ``]``; returns (entries, next).

    Entries are ``(key, value)`` pairs where a value is a string, a
    number, or a nested entry list.  Repeated keys (``node``, ``edge``)
    stay repeated -- GML is a multimap.
    """
    entries = []
    i = start
    while i < len(tokens):
        kind, value = tokens[i]
        if kind == "]":
            return entries, i + 1
        if kind != "atom":
            raise ConfigurationError(f"unexpected GML token {value!r}")
        key = value
        i += 1
        if i >= len(tokens):
            raise ConfigurationError(f"GML key {key!r} has no value")
        kind, value = tokens[i]
        if kind == "[":
            nested, i = _parse_gml_block(tokens, i + 1)
            entries.append((key, nested))
        else:
            entries.append((key, _parse_node(value) if kind == "atom" else value))
            i += 1
    return entries, i


def _gml_lookup(entries, key, default=None):
    for entry_key, value in entries:
        if entry_key == key:
            return value
    return default


def load_gml(path):
    """Load a GML file into a :class:`Topology`.

    Accepts the interchange subset: ``graph [ node [ id ... ] edge [
    source ... target ... ] ]``.  ``label`` (when present) names the
    node, else the numeric ``id`` does; ``tie`` defaults to the node's
    position in file order; unknown attributes are skipped.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    entries, _ = _parse_gml_block(_tokenize_gml(text), 0)
    graph_entries = _gml_lookup(entries, "graph")
    if graph_entries is None:
        raise ConfigurationError(f"{path!r} contains no GML graph block")
    radius = _gml_lookup(graph_entries, "radius")
    radius = float(radius) if radius is not None else None
    nodes, ties, positions = [], [], {}
    index_of = {}
    index_pairs = []
    for key, value in graph_entries:
        if key == "node":
            gml_id = _gml_lookup(value, "id")
            if gml_id is None:
                raise ConfigurationError(f"GML node without id in {path!r}")
            label = _gml_lookup(value, "label")
            node = _parse_node(label) if label is not None else gml_id
            tie = _gml_lookup(value, "tie")
            index_of[gml_id] = len(nodes)
            nodes.append(node)
            ties.append(int(tie) if tie is not None else len(ties))
            graphics = _gml_lookup(value, "graphics")
            if graphics is not None:
                x = _gml_lookup(graphics, "x")
                y = _gml_lookup(graphics, "y")
                if x is not None and y is not None:
                    positions[node] = (float(x), float(y))
        elif key == "edge":
            source = _gml_lookup(value, "source")
            target = _gml_lookup(value, "target")
            if source is None or target is None:
                raise ConfigurationError(f"GML edge without source/target in {path!r}")
            index_pairs.append((source, target))
    try:
        index_pairs = [(index_of[u], index_of[v]) for u, v in index_pairs]
    except KeyError as missing:
        raise ConfigurationError(
            f"GML edge references unknown node id {missing} in {path!r}"
        ) from None
    return _assemble(nodes, ties, positions, index_pairs, radius=radius)
