"""Quasi unit-disk graphs: the standard relaxation of the UDG radio model.

Real radios have no sharp range edge.  In the quasi-UDG model with inner
radius ``r_min`` and outer radius ``r_max``:

* pairs closer than ``r_min`` are always linked;
* pairs beyond ``r_max`` never are;
* pairs in the gray zone are linked with probability decaying linearly
  from 1 at ``r_min`` to 0 at ``r_max``.

Links are decided once per pair, so the result remains an undirected
graph satisfying the paper's bidirectional-communication assumption.
Used by robustness tests to check the clustering stack off the idealized
disk model.
"""

import numpy as np

from repro.graph.generators import Topology
from repro.graph.geometry import pairs_within_range
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


def quasi_unit_disk_graph(positions, r_min, r_max, rng=None, node_ids=None):
    """Build a quasi-UDG over ``positions``; returns (graph, positions).

    Candidate pairs, distances, and the gray-zone keep decisions are all
    evaluated with array expressions; one batched ``rng.random(k)`` call
    draws the gray-zone variates in pair order, which is the same stream
    (and therefore the same graph) a per-pair scalar draw produces.  The
    surviving pairs then build the graph through the bulk
    ``Graph.from_pair_array`` path.
    """
    if not 0 < r_min <= r_max:
        raise ConfigurationError(
            f"need 0 < r_min <= r_max, got {r_min}, {r_max}")
    rng = as_rng(rng)
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if node_ids is not None and len(node_ids) != n:
        raise ConfigurationError(
            f"node_ids has {len(node_ids)} entries for {n} positions")
    candidates = pairs_within_range(positions, r_max)
    span = r_max - r_min
    if len(candidates):
        delta = positions[candidates[:, 0]] - positions[candidates[:, 1]]
        distance = np.hypot(delta[:, 0], delta[:, 1])
        keep = distance <= r_min
        if span > 0:
            gray = np.flatnonzero(~keep)
            if gray.size:
                draws = rng.random(gray.size)
                keep[gray] = draws < (r_max - distance[gray]) / span
        kept_pairs = candidates[keep]
    else:
        kept_pairs = candidates
    graph = Graph.from_pair_array(kept_pairs,
                                  n if node_ids is None else node_ids)
    ids = graph.nodes
    positions_by_id = {ids[i]: (float(positions[i, 0]),
                                float(positions[i, 1]))
                       for i in range(n)}
    return graph, positions_by_id


def quasi_uniform_topology(count, r_min, r_max, rng=None, side=1.0):
    """``count`` uniform nodes in a square, linked by the quasi-UDG model."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    rng = as_rng(rng)
    positions = rng.uniform(0.0, side, size=(count, 2))
    graph, positions_by_id = quasi_unit_disk_graph(positions, r_min, r_max,
                                                   rng=rng)
    return Topology(graph, positions=positions_by_id, radius=r_max)
