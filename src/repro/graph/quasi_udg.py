"""Quasi unit-disk graphs: the standard relaxation of the UDG radio model.

Real radios have no sharp range edge.  In the quasi-UDG model with inner
radius ``r_min`` and outer radius ``r_max``:

* pairs closer than ``r_min`` are always linked;
* pairs beyond ``r_max`` never are;
* pairs in the gray zone are linked with probability decaying linearly
  from 1 at ``r_min`` to 0 at ``r_max``.

Links are decided once per pair, so the result remains an undirected
graph satisfying the paper's bidirectional-communication assumption.
Used by robustness tests to check the clustering stack off the idealized
disk model.
"""

import numpy as np

from repro.graph.generators import Topology
from repro.graph.geometry import pairwise_within_range
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


def quasi_unit_disk_graph(positions, r_min, r_max, rng=None, node_ids=None):
    """Build a quasi-UDG over ``positions``; returns (graph, positions)."""
    if not 0 < r_min <= r_max:
        raise ConfigurationError(
            f"need 0 < r_min <= r_max, got {r_min}, {r_max}")
    rng = as_rng(rng)
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if node_ids is None:
        node_ids = list(range(n))
    elif len(node_ids) != n:
        raise ConfigurationError(
            f"node_ids has {len(node_ids)} entries for {n} positions")
    graph = Graph(nodes=node_ids)
    span = r_max - r_min
    for i, j in pairwise_within_range(positions, r_max):
        distance = float(np.hypot(*(positions[i] - positions[j])))
        if distance <= r_min:
            graph.add_edge(node_ids[i], node_ids[j])
        elif span > 0:
            keep_probability = (r_max - distance) / span
            if rng.random() < keep_probability:
                graph.add_edge(node_ids[i], node_ids[j])
    positions_by_id = {node_ids[i]: (float(positions[i, 0]),
                                     float(positions[i, 1]))
                       for i in range(n)}
    return graph, positions_by_id


def quasi_uniform_topology(count, r_min, r_max, rng=None, side=1.0):
    """``count`` uniform nodes in a square, linked by the quasi-UDG model."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    rng = as_rng(rng)
    positions = rng.uniform(0.0, side, size=(count, 2))
    graph, positions_by_id = quasi_unit_disk_graph(positions, r_min, r_max,
                                                   rng=rng)
    return Topology(graph, positions=positions_by_id, radius=r_max)
