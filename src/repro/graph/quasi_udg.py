"""Quasi unit-disk graphs: the standard relaxation of the UDG radio model.

Real radios have no sharp range edge.  In the quasi-UDG model with inner
radius ``r_min`` and outer radius ``r_max``:

* pairs closer than ``r_min`` are always linked;
* pairs beyond ``r_max`` never are;
* pairs in the gray zone are linked with probability decaying linearly
  from 1 at ``r_min`` to 0 at ``r_max``.

Links are decided once per pair, so the result remains an undirected
graph satisfying the paper's bidirectional-communication assumption.
Used by robustness tests to check the clustering stack off the idealized
disk model.
"""

import numpy as np

from repro.graph.generators import Topology, positional_rng_shim
from repro.graph.geometry import (
    STREAM_NODE_THRESHOLD,
    chunk_pairs,
    pairs_within_range,
)
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


def _keep_candidates(positions, candidates, r_min, r_max, span, rng):
    """Filter one candidate-pair array by the quasi-UDG link rule.

    Draws the gray-zone variates with one ``rng.random(k)`` call in pair
    order.  Consecutive ``Generator.random`` calls consume the underlying
    bit stream exactly like one large call, so filtering the pair
    sequence chunk-by-chunk produces bit-identical keep decisions to the
    all-at-once path.
    """
    delta = positions[candidates[:, 0]] - positions[candidates[:, 1]]
    distance = np.hypot(delta[:, 0], delta[:, 1])
    keep = distance <= r_min
    if span > 0:
        gray = np.flatnonzero(~keep)
        if gray.size:
            draws = rng.random(gray.size)
            keep[gray] = draws < (r_max - distance[gray]) / span
    return candidates[keep]


def quasi_unit_disk_graph(
    positions, r_min, r_max, rng=None, node_ids=None, max_pairs=None
):
    """Build a quasi-UDG over ``positions``; returns (graph, positions).

    Candidate pairs, distances, and the gray-zone keep decisions are all
    evaluated with array expressions; the gray-zone variates are drawn in
    pair order, the same stream (and therefore the same graph) a per-pair
    scalar draw produces.  Below ``STREAM_NODE_THRESHOLD`` nodes the
    whole candidate array is filtered at once and feeds
    ``Graph.from_pair_array``; above it -- or whenever ``max_pairs`` is
    passed -- candidates stream through ``chunk_pairs`` and each chunk is
    filtered in sequence, which preserves the draw order exactly while
    bounding peak memory.
    """
    if not 0 < r_min <= r_max:
        raise ConfigurationError(f"need 0 < r_min <= r_max, got {r_min}, {r_max}")
    rng = as_rng(rng)
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if node_ids is not None and len(node_ids) != n:
        raise ConfigurationError(
            f"node_ids has {len(node_ids)} entries for {n} positions"
        )
    span = r_max - r_min
    ids = n if node_ids is None else node_ids
    if max_pairs is None and n < STREAM_NODE_THRESHOLD:
        candidates = pairs_within_range(positions, r_max)
        if len(candidates):
            candidates = _keep_candidates(
                positions, candidates, r_min, r_max, span, rng
            )
        graph = Graph.from_pair_array(candidates, ids)
    else:
        kept = (
            _keep_candidates(positions, chunk, r_min, r_max, span, rng)
            for chunk in chunk_pairs(positions, r_max, max_pairs=max_pairs)
        )
        graph = Graph.from_pair_chunks(kept, ids)
    names = graph.nodes
    positions_by_id = {
        names[i]: (row[0], row[1]) for i, row in enumerate(positions.tolist())
    }
    return graph, positions_by_id


def quasi_uniform_topology(count, r_min, r_max, *deprecated, rng=None, side=1.0):
    """``count`` uniform nodes in a square, linked by the quasi-UDG model."""
    rng, side = positional_rng_shim("quasi_uniform_topology", deprecated, rng, side)
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    rng = as_rng(rng)
    positions = rng.uniform(0.0, side, size=(count, 2))
    graph, positions_by_id = quasi_unit_disk_graph(positions, r_min, r_max, rng=rng)
    return Topology(graph, positions=positions_by_id, radius=r_max)
