"""Pure-numpy traversal kernels (the reference backend).

These are the array-frontier loops that previously lived inline in
:mod:`repro.graph.traversal`, refactored to operate on raw CSR arrays
(``indptr``/``indices``) so the numba backend can offer drop-in
compiled replacements.  Every function here is the *semantics
reference*: the numba backend must reproduce its outputs bit for bit
(the ``tests/graph/test_kernels.py`` parity suite enforces that on
random, disconnected, single-node and isolated-node graphs).

The deterministic tie-break shared by both backends: a row discovered
at BFS level ``d`` records as parent its **first discoverer in
(sorted-frontier row, ascending CSR neighbor) order**, which equals the
smallest-index neighbor at level ``d - 1``.  Distances, component
labels, forest roots and depths are tie-break-free; parents and
unwound paths rely on that rule.
"""

import numpy as np


def _expand_frontier(indptr, indices, frontier):
    """Concatenated neighbor rows of ``frontier`` plus their source rows.

    Returns ``(neighbors, sources)`` where ``neighbors[k]`` is adjacent
    to ``sources[k]``; rows appear grouped by frontier order, each group
    in CSR (ascending) neighbor order.
    """
    starts = indptr[frontier].astype(np.int64)
    counts = indptr[frontier + 1].astype(np.int64) - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    cum = np.zeros(len(frontier) + 1, dtype=np.int64)
    np.cumsum(counts, out=cum[1:])
    take = (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum[:-1], counts)
        + np.repeat(starts, counts)
    )
    return indices[take].astype(np.int64), np.repeat(frontier, counts)


def multi_source_distances(indptr, indices, sources, labels=None):
    """Hop distances from the nearest of ``sources`` to every row.

    ``sources`` is a non-empty array of in-range row indices, all seeded
    at distance 0.  When ``labels`` (an ``int`` array, one entry per
    row) is given, an edge is traversed only if both endpoints carry the
    same label.  Unreached rows get ``-1``.
    """
    n = len(indptr) - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[sources] = 0
    frontier = np.unique(sources)
    level = 0
    while frontier.size:
        level += 1
        neigh, src = _expand_frontier(indptr, indices, frontier)
        keep = dist[neigh] < 0
        if labels is not None:
            keep &= labels[neigh] == labels[src]
        cand = neigh[keep]
        if not cand.size:
            break
        frontier = np.unique(cand)
        dist[frontier] = level
    return dist


#: Below this many rows, plain-Python BFS beats the vectorized loop
#: (numpy dispatch overhead dominates cluster-sized graphs); both paths
#: implement the identical parent rule and the test suite pins them to
#: each other by toggling this threshold.
SMALL_GRAPH_ROWS = 512


def _bfs_parents_small(indptr, indices, source, labels):
    """Plain-Python :func:`bfs_parents` for cluster-sized graphs.

    Identical discovery rule: the frontier is kept sorted between
    levels and each row's CSR block scans ascending, so a row's parent
    is its first discoverer in (sorted-frontier row, ascending CSR
    neighbor) order -- bit for bit what the vectorized path computes.
    """
    n = len(indptr) - 1
    ptr = indptr.tolist()
    ind = indices.tolist()
    lab = None if labels is None else np.asarray(labels).tolist()
    dist = [-1] * n
    parent = [-1] * n
    dist[source] = 0
    frontier = [int(source)]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for p in range(ptr[u], ptr[u + 1]):
                v = ind[p]
                if dist[v] < 0 and (lab is None or lab[v] == lab[u]):
                    dist[v] = level
                    parent[v] = u
                    nxt.append(v)
        nxt.sort()
        frontier = nxt
    return (np.asarray(parent, dtype=np.int64),
            np.asarray(dist, dtype=np.int64))


def bfs_parents(indptr, indices, source, labels=None):
    """Full-BFS ``(parents, distances)`` from one source row.

    ``parents[r]`` is row ``r``'s first discoverer under the
    deterministic rule above (``-1`` for the source itself and for
    unreached rows); ``distances[r]`` the hop distance (``-1``
    unreached).  ``labels`` constrains expansion exactly as in
    :func:`multi_source_distances`.
    """
    n = len(indptr) - 1
    if n <= SMALL_GRAPH_ROWS:
        return _bfs_parents_small(np.asarray(indptr), np.asarray(indices),
                                  int(source), labels)
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neigh, src = _expand_frontier(indptr, indices, frontier)
        keep = dist[neigh] < 0
        if labels is not None:
            keep &= labels[neigh] == labels[src]
        cand = neigh[keep]
        if not cand.size:
            break
        # np.unique's return_index picks each row's first occurrence in
        # gather order -- the deterministic parent rule.
        frontier, first = np.unique(cand, return_index=True)
        parent[frontier] = src[keep][first]
        dist[frontier] = level
    return parent, dist


def component_labels(indptr, indices):
    """Per-row component label: the smallest row index in the component.

    Min-label propagation over the closed neighborhood, with full
    pointer-doubling compression between rounds -- O(m log n) worst
    case, a handful of vectorized rounds in practice.
    """
    n = len(indptr) - 1
    labels = np.arange(n, dtype=np.int64)
    if n == 0 or len(indices) == 0:
        return labels
    indptr = np.asarray(indptr).astype(np.int64)
    dst = np.asarray(indices).astype(np.int64)
    nonzero = np.diff(indptr) > 0
    starts = indptr[:-1][nonzero]
    while True:
        # reduceat segments between consecutive non-empty rows are
        # exactly those rows' neighbor blocks (empty rows contribute no
        # elements).
        neighbor_min = np.minimum.reduceat(labels[dst], starts)
        new = labels.copy()
        new[nonzero] = np.minimum(new[nonzero], neighbor_min)
        while True:
            shortcut = new[new]
            if np.array_equal(shortcut, new):
                break
            new = shortcut
        if np.array_equal(new, labels):
            return labels
        labels = new


def resolve_forest(parents):
    """``(roots, depths, ok)`` of a parent-pointer forest.

    ``parents[i]`` is the in-range parent row of ``i`` (roots point to
    themselves).  Pointer doubling resolves every node to its root and
    depth in O(n log h) vectorized steps.  ``ok`` is ``False`` when the
    links contain a cycle (the caller raises; roots/depths are then
    meaningless).
    """
    parents = np.ascontiguousarray(parents, dtype=np.int64)
    anc = parents.copy()
    n = anc.size
    idx = np.arange(n, dtype=np.int64)
    depth = (anc != idx).astype(np.int64)
    if n == 0:
        return anc, depth, True
    # Each round doubles the resolved chain length, so log2(n) + 1
    # rounds suffice for any forest; non-convergence within that budget
    # means the links cycle.  A cycle whose length divides a power of
    # two *does* converge (every member becomes its own 2^k-th
    # ancestor), so a converged ancestor only counts as a root if its
    # parent is itself.
    for _ in range(int(np.ceil(np.log2(max(n, 2)))) + 2):
        shortcut = anc[anc]
        if np.array_equal(shortcut, anc):
            if bool((parents[anc] == anc).all()):
                return anc, depth, True
            break
        depth += depth[anc]
        anc = shortcut
    return anc, depth, False


def unwind_path(parents, source, target):
    """Row path ``source .. target`` through a BFS parent array.

    ``parents`` must come from :func:`bfs_parents` over the same graph
    (so the chain is acyclic).  Returns an ``int64`` row array; an
    **empty** array signals a broken chain (``target`` does not unwind
    to ``source``), which callers surface as a disconnection error.
    """
    rows = [int(target)]
    source = int(source)
    while rows[-1] != source:
        parent = int(parents[rows[-1]])
        if parent < 0:
            return np.empty(0, dtype=np.int64)
        rows.append(parent)
    rows.reverse()
    return np.asarray(rows, dtype=np.int64)
