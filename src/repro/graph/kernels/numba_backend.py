"""Compiled traversal kernels (``numba.njit(cache=True)``).

Drop-in replacements for :mod:`repro.graph.kernels.numpy_backend`,
written as explicit sequential loops so numba compiles them to machine
code with no per-BFS-level numpy dispatch overhead.  **Bit-identity
contract**: every function returns exactly the arrays the numpy backend
returns, enforced by the ``tests/graph/test_kernels.py`` parity suite
(run under ``REPRO_KERNELS=numba`` in the dedicated CI job).

The shared deterministic parent rule -- first discoverer in
(sorted-frontier row, ascending CSR neighbor) order -- is preserved by
keeping every BFS frontier **sorted** between levels: discoveries are
appended in (frontier, CSR) order and sorted before the next wave, so
iterating the frontier ascending and each row's CSR block ascending
visits candidate parents in the numpy backend's gather order.

Importing this module without numba installed raises ImportError; the
package ``__init__`` treats that as "backend unavailable" and falls
back to the numpy kernels.
"""

import numpy as np
from numba import njit


@njit(cache=True)
def _ms_distances(indptr, indices, sources, labels, constrained):
    n = indptr.shape[0] - 1
    dist = np.full(n, -1, np.int64)
    frontier = np.empty(n, np.int64)
    fsize = 0
    seeds = np.sort(sources)
    for i in range(seeds.shape[0]):
        s = seeds[i]
        if dist[s] < 0:
            dist[s] = 0
            frontier[fsize] = s
            fsize += 1
    scratch = np.empty(n, np.int64)
    level = 0
    while fsize > 0:
        level += 1
        k = 0
        for fi in range(fsize):
            u = frontier[fi]
            for p in range(indptr[u], indptr[u + 1]):
                v = indices[p]
                if dist[v] < 0 and (not constrained or labels[v] == labels[u]):
                    dist[v] = level
                    scratch[k] = v
                    k += 1
        nxt = np.sort(scratch[:k])
        for i in range(k):
            frontier[i] = nxt[i]
        fsize = k
    return dist


@njit(cache=True)
def _bfs_parents(indptr, indices, source, labels, constrained):
    n = indptr.shape[0] - 1
    dist = np.full(n, -1, np.int64)
    parent = np.full(n, -1, np.int64)
    dist[source] = 0
    frontier = np.empty(n, np.int64)
    frontier[0] = source
    fsize = 1
    scratch = np.empty(n, np.int64)
    level = 0
    while fsize > 0:
        level += 1
        k = 0
        for fi in range(fsize):
            u = frontier[fi]
            for p in range(indptr[u], indptr[u + 1]):
                v = indices[p]
                if dist[v] < 0 and (not constrained or labels[v] == labels[u]):
                    dist[v] = level
                    parent[v] = u
                    scratch[k] = v
                    k += 1
        nxt = np.sort(scratch[:k])
        for i in range(k):
            frontier[i] = nxt[i]
        fsize = k
    return parent, dist


@njit(cache=True)
def _component_labels(indptr, indices):
    n = indptr.shape[0] - 1
    labels = np.full(n, -1, np.int64)
    queue = np.empty(n, np.int64)
    for i in range(n):
        if labels[i] >= 0:
            continue
        # i is the smallest unlabeled row, hence the smallest row of its
        # component -- exactly the numpy backend's min-label fixpoint.
        labels[i] = i
        queue[0] = i
        head, tail = 0, 1
        while head < tail:
            u = queue[head]
            head += 1
            for p in range(indptr[u], indptr[u + 1]):
                v = indices[p]
                if labels[v] < 0:
                    labels[v] = i
                    queue[tail] = v
                    tail += 1
    return labels


@njit(cache=True)
def _resolve_forest(parents):
    n = parents.shape[0]
    roots = np.full(n, -1, np.int64)
    depth = np.zeros(n, np.int64)
    stack = np.empty(n, np.int64)
    for i in range(n):
        if roots[i] >= 0:
            continue
        x = i
        top = 0
        while roots[x] < 0 and parents[x] != x:
            stack[top] = x
            top += 1
            if top >= n:
                # More links than nodes on one walk: the chain revisited
                # a row, so the "forest" contains a cycle.
                return roots, depth, False
            x = parents[x]
        if roots[x] < 0:
            roots[x] = x  # a fresh root; its depth stays 0
        r = roots[x]
        d = depth[x]
        for j in range(top - 1, -1, -1):
            d += 1
            y = stack[j]
            roots[y] = r
            depth[y] = d
    return roots, depth, True


@njit(cache=True)
def _unwind_path(parents, source, target):
    n = parents.shape[0]
    buf = np.empty(n, np.int64)
    k = 0
    x = target
    while x != source:
        buf[k] = x
        k += 1
        nxt = parents[x]
        if nxt < 0 or k >= n:
            return np.empty(0, np.int64)
        x = nxt
    out = np.empty(k + 1, np.int64)
    out[0] = source
    for i in range(k):
        out[i + 1] = buf[k - 1 - i]
    return out


_NO_LABELS = np.empty(0, dtype=np.int64)


def _label_args(labels):
    if labels is None:
        return _NO_LABELS, False
    return np.ascontiguousarray(labels), True


def multi_source_distances(indptr, indices, sources, labels=None):
    """Compiled :func:`~repro.graph.kernels.numpy_backend.multi_source_distances`."""
    sources = np.ascontiguousarray(sources, dtype=np.int64)
    label_array, constrained = _label_args(labels)
    return _ms_distances(indptr, indices, sources, label_array, constrained)


def bfs_parents(indptr, indices, source, labels=None):
    """Compiled :func:`~repro.graph.kernels.numpy_backend.bfs_parents`."""
    label_array, constrained = _label_args(labels)
    return _bfs_parents(indptr, indices, int(source), label_array, constrained)


def component_labels(indptr, indices):
    """Compiled :func:`~repro.graph.kernels.numpy_backend.component_labels`."""
    return _component_labels(indptr, indices)


def resolve_forest(parents):
    """Compiled :func:`~repro.graph.kernels.numpy_backend.resolve_forest`."""
    parents = np.ascontiguousarray(parents, dtype=np.int64)
    return _resolve_forest(parents)


def unwind_path(parents, source, target):
    """Compiled :func:`~repro.graph.kernels.numpy_backend.unwind_path`."""
    return _unwind_path(parents, int(source), int(target))


def warm_up():
    """Compile every kernel on a 2-node toy graph (first-call latency).

    ``njit(cache=True)`` persists the compilation to numba's on-disk
    cache, so after one warm-up per environment the compile cost never
    lands inside a measured serving loop.
    """
    indptr = np.array([0, 1, 2], dtype=np.int32)
    indices = np.array([1, 0], dtype=np.int32)
    sources = np.array([0], dtype=np.int64)
    labels = np.zeros(2, dtype=np.int64)
    multi_source_distances(indptr, indices, sources)
    multi_source_distances(indptr, indices, sources, labels=labels)
    parents, _dist = bfs_parents(indptr, indices, 0)
    bfs_parents(indptr, indices, 0, labels=labels)
    component_labels(indptr, indices)
    resolve_forest(np.array([0, 0], dtype=np.int64))
    unwind_path(parents, 0, 1)
