"""Backend-selectable traversal kernels: pure numpy or compiled numba.

Every hot traversal loop in the repo -- BFS frontier expansion, the
label-constrained multi-source sweep, parent unwinding, component label
propagation, and the pointer-doubling forest resolve -- lives behind
this seam.  Two interchangeable backends implement it:

* :mod:`~repro.graph.kernels.numpy_backend` -- the reference
  implementation (the historical inline code of
  :mod:`repro.graph.traversal`, refactored);
* :mod:`~repro.graph.kernels.numba_backend` -- ``numba.njit(cache=True)``
  compiled loops, **bit-identical by contract** (the
  ``tests/graph/test_kernels.py`` parity suite proves it property-wise).

Selection happens once at import via the ``REPRO_KERNELS`` environment
variable:

* ``auto`` (default) -- use numba when importable, else numpy;
* ``numba`` -- use numba; if it is unavailable the fallback to numpy is
  *silent* (nothing raises, every caller keeps working) but
  *loud-logged* (a ``WARNING`` on this module's logger names the import
  error), so headless runs leave a trace of the degraded mode;
* ``numpy`` -- force the reference backend even when numba is present
  (the CI default jobs run this way to keep the fallback path proven).

``repro doctor`` prints :func:`backend_info` so a host's active backend
is one command away.  Because outputs are bit-identical, every
experiment table, route, and collector result is invariant under the
switch -- the backend only moves wall-clock.
"""

import logging
import os

from repro.graph.kernels import numpy_backend
from repro.util.errors import ConfigurationError

_LOG = logging.getLogger(__name__)

#: Accepted ``REPRO_KERNELS`` values.
CHOICES = ("auto", "numpy", "numba")

#: What the environment asked for (normalized; empty means ``auto``).
REQUESTED = os.environ.get("REPRO_KERNELS", "auto").strip().lower() or "auto"

if REQUESTED not in CHOICES:
    raise ConfigurationError(
        f"REPRO_KERNELS={REQUESTED!r} is not one of {CHOICES}"
    )

_active = numpy_backend
_numba_import_error = None
if REQUESTED in ("auto", "numba"):
    try:
        from repro.graph.kernels import numba_backend

        _active = numba_backend
    except ImportError as error:
        _numba_import_error = error
        if REQUESTED == "numba":
            _LOG.warning(
                "REPRO_KERNELS=numba requested but the numba backend is "
                "unavailable (%s); falling back to the numpy kernels",
                error,
            )
        else:
            _LOG.debug("numba unavailable (%s); using the numpy kernels",
                       error)

#: The active backend's name: ``"numpy"`` or ``"numba"``.
BACKEND = "numpy" if _active is numpy_backend else "numba"

multi_source_distances = _active.multi_source_distances
bfs_parents = _active.bfs_parents
component_labels = _active.component_labels
resolve_forest = _active.resolve_forest
unwind_path = _active.unwind_path

#: The kernel entry points every backend must provide.
KERNELS = (
    "multi_source_distances",
    "bfs_parents",
    "component_labels",
    "resolve_forest",
    "unwind_path",
)


def get_backend(name):
    """The backend *module* for ``name`` (``"numpy"`` | ``"numba"``).

    Raises :class:`ImportError` when the numba backend is requested but
    not importable -- the parity suite uses that to skip cleanly.
    """
    if name == "numpy":
        return numpy_backend
    if name == "numba":
        if _numba_import_error is not None:
            raise ImportError(str(_numba_import_error))
        from repro.graph.kernels import numba_backend

        return numba_backend
    raise ConfigurationError(f"unknown kernel backend {name!r}")


def warm_up():
    """Pre-compile the active backend's kernels (no-op on numpy).

    Call before timing anything: numba's first invocation per signature
    pays the JIT compile (cached on disk afterwards via ``cache=True``).
    """
    if _active is not numpy_backend:
        _active.warm_up()


def backend_info():
    """A flat dict describing the seam state (``repro doctor`` prints it).

    Keys: ``requested`` (the ``REPRO_KERNELS`` value), ``active`` (the
    backend actually serving calls), ``numba_available`` and, when the
    fallback engaged, ``numba_error`` with the import failure.
    """
    info = {
        "requested": REQUESTED,
        "active": BACKEND,
        "numba_available": BACKEND == "numba" or _probe_numba(),
    }
    if _numba_import_error is not None:
        info["numba_error"] = str(_numba_import_error)
    return info


def _probe_numba():
    """Whether numba is importable at all (even when forced off)."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


__all__ = [
    "BACKEND",
    "CHOICES",
    "KERNELS",
    "REQUESTED",
    "backend_info",
    "bfs_parents",
    "component_labels",
    "get_backend",
    "multi_source_distances",
    "resolve_forest",
    "unwind_path",
    "warm_up",
]
