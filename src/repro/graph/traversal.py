"""Array-frontier traversals over :class:`~repro.graph.csr.CSRAdjacency`.

Every headline metric of the paper is hop-based -- head eccentricity
``e(H(u)/C)``, joining-tree length, route stretch -- and all of them are
traversal-shaped.  This module is the shared *public* kernel surface
those metrics ride; since the compiled-kernel refactor the hot loops
themselves live behind the :mod:`repro.graph.kernels` seam (pure numpy
by default, ``numba.njit`` when installed and selected via
``REPRO_KERNELS``; outputs bit-identical either way).  What remains
here is the id/row plumbing and the error contract:

* :func:`csr_bfs_distances` -- single-source BFS returning an ``int64``
  distance array (``-1`` marks unreachable rows);
* :func:`csr_multi_source_distances` -- the batched form: any number of
  sources expand simultaneously, and an optional per-row ``labels`` array
  constrains expansion to label-matching edges.  Seeding every
  cluster-head with its cluster's label computes *all* per-cluster head
  eccentricities in one sweep over the whole graph, with no induced
  subgraphs ever built (distances inside a label region equal distances
  in the region-induced subgraph, because every traversed edge has both
  endpoints in the region);
* :func:`csr_bfs_parents` / :func:`csr_shortest_path` -- deterministic
  parent trees and single shortest paths (first discovery in
  sorted-frontier-row/CSR order);
* :func:`csr_component_labels` -- connected components by min-label
  propagation;
* :func:`resolve_forest` -- parent-pointer forests (the joining forest of
  a clustering) resolved to per-node roots and depths.

Distances, component partitions, roots and depths are all tie-break-free
quantities, and the parent rule is pinned identically in both backends,
which is what lets the callers in ``graph/paths.py``,
``clustering/result.py`` and ``hierarchy/routing.py`` swap backends
without changing a single reported number.
"""

import numpy as np

from repro.graph import kernels
from repro.util.errors import TopologyError


def csr_multi_source_distances(csr, sources, labels=None):
    """Hop distances from the nearest of ``sources`` to every row.

    ``sources`` is an array of row indices, all seeded at distance 0.
    When ``labels`` (an ``int`` array, one entry per row) is given, an
    edge is traversed only if both endpoints carry the same label, so
    each source's wave stays inside its own label region.  Unreached rows
    get ``-1``.
    """
    n = len(csr)
    sources = np.asarray(sources, dtype=np.int64)
    if n == 0 or sources.size == 0:
        return np.full(n, -1, dtype=np.int64)
    if int(sources.min()) < 0 or int(sources.max()) >= n:
        raise TopologyError(f"source rows out of range [0, {n})")
    return kernels.multi_source_distances(csr.indptr, csr.indices, sources,
                                          labels=labels)


def csr_bfs_distances(csr, source):
    """Single-source hop distances; ``-1`` marks unreachable rows."""
    n = len(csr)
    if not 0 <= source < n:
        raise TopologyError(f"source row {source} out of range [0, {n})")
    return csr_multi_source_distances(csr, np.array([source], dtype=np.int64))


def csr_shortest_path(csr, source, target, labels=None):
    """One shortest row path from ``source`` to ``target``, or ``None``.

    When ``labels`` is given the path is constrained to rows carrying
    ``labels[source]`` (the cluster-internal legs of hierarchical
    routing).  The parent of a newly discovered row is its first
    discoverer in (frontier row, CSR neighbor) order, which makes the
    returned path deterministic; any choice yields the same length.
    """
    n = len(csr)
    if not (0 <= source < n and 0 <= target < n):
        raise TopologyError("endpoints must be in the graph")
    if source == target:
        return [source]
    if labels is not None and labels[source] != labels[target]:
        return None
    parents, dist = kernels.bfs_parents(csr.indptr, csr.indices, source,
                                        labels=labels)
    if dist[target] < 0:
        return None
    rows = kernels.unwind_path(parents, source, target)
    return [int(row) for row in rows]


def csr_bfs_parents(csr, source, labels=None):
    """Full-BFS ``(parents, distances)`` from ``source``.

    ``parents[r]`` is row ``r``'s first discoverer in
    (frontier row, CSR neighbor) order -- ``-1`` for the source itself
    and for unreached rows -- and ``distances[r]`` the hop distance
    (``-1`` unreached).  Because the parent rule matches
    :func:`csr_shortest_path` exactly, unwinding ``target -> source``
    through ``parents`` reproduces it; one full sweep therefore serves
    every target reachable from ``source``, which is what lets the
    traffic-serving router cache a cluster's whole leg fan-out per
    (cluster, leg source) instead of re-running a path search per
    request.
    """
    n = len(csr)
    if not 0 <= source < n:
        raise TopologyError(f"source row {source} out of range [0, {n})")
    return kernels.bfs_parents(csr.indptr, csr.indices, source, labels=labels)


def csr_component_labels(csr):
    """Per-row component label: the smallest row index in the component."""
    n = len(csr)
    if n == 0 or csr.indices.size == 0:
        return np.arange(n, dtype=np.int64)
    return kernels.component_labels(csr.indptr, csr.indices)


def resolve_forest(parent_rows):
    """Roots and depths of a parent-pointer forest by pointer doubling.

    ``parent_rows[i]`` is the parent row of ``i`` (roots point to
    themselves).  Returns ``(roots, depths)`` -- both ``int64`` arrays --
    in O(n log h) vectorized/compiled steps, ``h`` the tallest tree.
    Raises :class:`TopologyError` when the links contain a cycle (they
    then never converge to fixed points).
    """
    parents = np.ascontiguousarray(parent_rows, dtype=np.int64)
    n = parents.size
    if n and (parents.min() < 0 or parents.max() >= n):
        raise TopologyError("parent rows out of range")
    roots, depths, ok = kernels.resolve_forest(parents)
    if not ok:
        raise TopologyError("parent links form a cycle")
    return roots, depths
