"""Array-frontier traversals over :class:`~repro.graph.csr.CSRAdjacency`.

Every headline metric of the paper is hop-based -- head eccentricity
``e(H(u)/C)``, joining-tree length, route stretch -- and all of them are
traversal-shaped.  This module is the shared kernel those metrics ride:
instead of a Python ``deque`` BFS per node (and a fresh induced subgraph
per cluster), frontiers are numpy index arrays expanded level by level
with one gather per level.

* :func:`csr_bfs_distances` -- single-source BFS returning an ``int64``
  distance array (``-1`` marks unreachable rows);
* :func:`csr_multi_source_distances` -- the batched form: any number of
  sources expand simultaneously, and an optional per-row ``labels`` array
  constrains expansion to label-matching edges.  Seeding every
  cluster-head with its cluster's label computes *all* per-cluster head
  eccentricities in one sweep over the whole graph, with no induced
  subgraphs ever built (distances inside a label region equal distances
  in the region-induced subgraph, because every traversed edge has both
  endpoints in the region);
* :func:`csr_shortest_path` -- one shortest path with a deterministic
  parent rule (first discovery in frontier-row/CSR order);
* :func:`csr_component_labels` -- connected components by min-label
  propagation with pointer-doubling compression;
* :func:`resolve_forest` -- parent-pointer forests (the joining forest of
  a clustering) resolved to per-node roots and depths in O(n log h)
  vectorized steps instead of per-node link-chasing.

Distances, component partitions, roots and depths are all tie-break-free
quantities, which is what lets the callers in ``graph/paths.py``,
``clustering/result.py`` and ``hierarchy/routing.py`` swap the dict
backend for this kernel without changing a single reported number.
"""

import numpy as np

from repro.util.errors import TopologyError


def _expand_frontier(indptr, indices, frontier):
    """Concatenated neighbor rows of ``frontier`` plus their source rows.

    Returns ``(neighbors, sources)`` where ``neighbors[k]`` is adjacent to
    ``sources[k]``; rows appear grouped by frontier order, each group in
    CSR (ascending) neighbor order.
    """
    starts = indptr[frontier].astype(np.int64)
    counts = indptr[frontier + 1].astype(np.int64) - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    cum = np.zeros(len(frontier) + 1, dtype=np.int64)
    np.cumsum(counts, out=cum[1:])
    take = (np.arange(total, dtype=np.int64)
            - np.repeat(cum[:-1], counts)
            + np.repeat(starts, counts))
    return indices[take].astype(np.int64), np.repeat(frontier, counts)


def csr_multi_source_distances(csr, sources, labels=None):
    """Hop distances from the nearest of ``sources`` to every row.

    ``sources`` is an array of row indices, all seeded at distance 0.
    When ``labels`` (an ``int`` array, one entry per row) is given, an
    edge is traversed only if both endpoints carry the same label, so
    each source's wave stays inside its own label region.  Unreached rows
    get ``-1``.
    """
    n = len(csr)
    dist = np.full(n, -1, dtype=np.int64)
    sources = np.asarray(sources, dtype=np.int64)
    if n == 0 or sources.size == 0:
        return dist
    if int(sources.min()) < 0 or int(sources.max()) >= n:
        raise TopologyError(f"source rows out of range [0, {n})")
    dist[sources] = 0
    frontier = np.unique(sources)
    indptr, indices = csr.indptr, csr.indices
    level = 0
    while frontier.size:
        level += 1
        neigh, src = _expand_frontier(indptr, indices, frontier)
        keep = dist[neigh] < 0
        if labels is not None:
            keep &= labels[neigh] == labels[src]
        cand = neigh[keep]
        if not cand.size:
            break
        frontier = np.unique(cand)
        dist[frontier] = level
    return dist


def csr_bfs_distances(csr, source):
    """Single-source hop distances; ``-1`` marks unreachable rows."""
    n = len(csr)
    if not 0 <= source < n:
        raise TopologyError(f"source row {source} out of range [0, {n})")
    return csr_multi_source_distances(csr, np.array([source], dtype=np.int64))


def csr_shortest_path(csr, source, target, labels=None):
    """One shortest row path from ``source`` to ``target``, or ``None``.

    When ``labels`` is given the path is constrained to rows carrying
    ``labels[source]`` (the cluster-internal legs of hierarchical
    routing).  The parent of a newly discovered row is its first
    discoverer in (frontier row, CSR neighbor) order, which makes the
    returned path deterministic; any choice yields the same length.
    """
    n = len(csr)
    if not (0 <= source < n and 0 <= target < n):
        raise TopologyError("endpoints must be in the graph")
    if source == target:
        return [source]
    if labels is not None and labels[source] != labels[target]:
        return None
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    indptr, indices = csr.indptr, csr.indices
    level = 0
    while frontier.size:
        level += 1
        neigh, src = _expand_frontier(indptr, indices, frontier)
        keep = dist[neigh] < 0
        if labels is not None:
            keep &= labels[neigh] == labels[src]
        cand = neigh[keep]
        if not cand.size:
            return None
        # np.unique's return_index picks each row's first occurrence in
        # gather order -- the deterministic parent rule.
        frontier, first = np.unique(cand, return_index=True)
        parent[frontier] = src[keep][first]
        dist[frontier] = level
        if dist[target] >= 0:
            path = [int(target)]
            while path[-1] != source:
                path.append(int(parent[path[-1]]))
            path.reverse()
            return path
    return None


def csr_bfs_parents(csr, source, labels=None):
    """Full-BFS ``(parents, distances)`` from ``source``.

    The same expansion as :func:`csr_shortest_path` without the early
    exit: ``parents[r]`` is row ``r``'s first discoverer in
    (frontier row, CSR neighbor) order -- ``-1`` for the source itself
    and for unreached rows -- and ``distances[r]`` the hop distance
    (``-1`` unreached).  Because the parent rule is identical,
    unwinding ``target -> source`` through ``parents`` reproduces
    ``csr_shortest_path(csr, source, target, labels)`` exactly; one
    full sweep therefore serves every target reachable from ``source``,
    which is what lets the traffic-serving router cache a cluster's
    whole leg fan-out per (cluster, leg source) instead of re-running a
    path search per request.
    """
    n = len(csr)
    if not 0 <= source < n:
        raise TopologyError(f"source row {source} out of range [0, {n})")
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    indptr, indices = csr.indptr, csr.indices
    level = 0
    while frontier.size:
        level += 1
        neigh, src = _expand_frontier(indptr, indices, frontier)
        keep = dist[neigh] < 0
        if labels is not None:
            keep &= labels[neigh] == labels[src]
        cand = neigh[keep]
        if not cand.size:
            break
        # Same deterministic parent rule as csr_shortest_path.
        frontier, first = np.unique(cand, return_index=True)
        parent[frontier] = src[keep][first]
        dist[frontier] = level
    return parent, dist


def csr_component_labels(csr):
    """Per-row component label: the smallest row index in the component.

    Min-label propagation over the closed neighborhood, with full
    pointer-doubling compression between rounds -- O(m log n) worst case,
    a handful of vectorized rounds in practice.
    """
    n = len(csr)
    labels = np.arange(n, dtype=np.int64)
    if n == 0 or csr.indices.size == 0:
        return labels
    indptr = csr.indptr.astype(np.int64)
    dst = csr.indices.astype(np.int64)
    nonzero = np.diff(indptr) > 0
    starts = indptr[:-1][nonzero]
    while True:
        # reduceat segments between consecutive non-empty rows are exactly
        # those rows' neighbor blocks (empty rows contribute no elements).
        neighbor_min = np.minimum.reduceat(labels[dst], starts)
        new = labels.copy()
        new[nonzero] = np.minimum(new[nonzero], neighbor_min)
        while True:
            shortcut = new[new]
            if np.array_equal(shortcut, new):
                break
            new = shortcut
        if np.array_equal(new, labels):
            return labels
        labels = new


def resolve_forest(parent_rows):
    """Roots and depths of a parent-pointer forest by pointer doubling.

    ``parent_rows[i]`` is the parent row of ``i`` (roots point to
    themselves).  Returns ``(roots, depths)`` -- both ``int64`` arrays --
    in O(n log h) numpy ops, ``h`` the tallest tree.  Raises
    :class:`TopologyError` when the links contain a cycle (they then
    never converge to fixed points).
    """
    parents = np.ascontiguousarray(parent_rows, dtype=np.int64)
    anc = parents.copy()
    n = anc.size
    idx = np.arange(n, dtype=np.int64)
    if n and (anc.min() < 0 or anc.max() >= n):
        raise TopologyError("parent rows out of range")
    depth = (anc != idx).astype(np.int64)
    if n == 0:
        return anc, depth
    # Each round doubles the resolved chain length, so log2(n) + 1 rounds
    # suffice for any forest; non-convergence within that budget means the
    # links cycle.  A cycle whose length divides a power of two *does*
    # converge (every member becomes its own 2^k-th ancestor), so a
    # converged ancestor only counts as a root if its parent is itself.
    for _ in range(int(np.ceil(np.log2(max(n, 2)))) + 2):
        shortcut = anc[anc]
        if np.array_equal(shortcut, anc):
            if bool((parents[anc] == anc).all()):
                return anc, depth
            break
        depth += depth[anc]
        anc = shortcut
    raise TopologyError("parent links form a cycle")
