"""Frozen compressed-sparse-row adjacency snapshots.

The mutable :class:`~repro.graph.graph.Graph` stores adjacency as
``dict[node, set[node]]``, which is the right shape for the incremental
edge churn of the protocol simulations but the wrong shape for the bulk
analytics the evaluation workloads run (Definition-1 densities over every
node, degree vectors, whole-edge sweeps).  :class:`CSRAdjacency` is the
read-only array view used by those paths:

* ``indptr`` / ``indices`` are the standard CSR arrays (``int32``), with
  each row's neighbor indices **sorted ascending** -- the invariant the
  vectorized ``searchsorted`` intersections rely on;
* ``ids`` maps row index -> node identifier (graph insertion order) and
  ``index_of`` is the inverse, so callers can move between the array
  world and the identifier world without per-edge Python loops;
* the snapshot is frozen: the arrays are marked non-writeable and derived
  quantities (triangle counts) are memoized on it, so repeated analytics
  over an unchanged graph cost O(1) after the first call.

Snapshots are built either from the dict backend
(:meth:`CSRAdjacency.from_dict`, used by ``Graph.to_csr``) or directly
from a canonical undirected pair array
(:meth:`CSRAdjacency.from_pairs`, used by ``Graph.from_pair_array`` so
bulk-built graphs get their snapshot almost for free).
"""

import numpy as np

from repro.util.errors import TopologyError

# Expanded-candidate budget for the chunked triangle intersection; bounds
# peak memory at a few tens of MB regardless of graph size.
_TRIANGLE_CHUNK = 2_000_000


class CSRAdjacency:
    """An immutable CSR view of an undirected graph.

    Rows are node indices ``0..n-1`` in ``ids`` order; ``indices[indptr[i]:
    indptr[i+1]]`` are the neighbors of row ``i``, sorted ascending.
    """

    __slots__ = ("indptr", "indices", "ids", "_index_of", "_triangles")

    def __init__(self, indptr, indices, ids):
        indptr = np.ascontiguousarray(indptr, dtype=np.int32)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        ids = tuple(ids)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise TopologyError("indptr and indices must be 1-d arrays")
        if len(indptr) != len(ids) + 1:
            raise TopologyError("indptr must have one entry per node plus one")
        indptr.flags.writeable = False
        indices.flags.writeable = False
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "_index_of", None)
        object.__setattr__(self, "_triangles", None)

    def __setattr__(self, name, value):
        raise AttributeError("CSRAdjacency is frozen")

    @property
    def index_of(self):
        """Node identifier -> row index, built lazily.

        Million-node snapshots that only ever serve array analytics (or
        are attached zero-copy from shared memory) never pay for the
        Python dict; identifier-world callers build it on first use.
        """
        if self._index_of is None:
            object.__setattr__(
                self, "_index_of", {node: i for i, node in enumerate(self.ids)}
            )
        return self._index_of

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, adj):
        """Snapshot a ``dict[node, set[node]]`` adjacency.

        One generator pass translates identifiers to indices; the per-row
        ascending sort is a single vectorized ``lexsort``.
        """
        ids = list(adj)
        index_of = {node: i for i, node in enumerate(ids)}
        n = len(ids)
        degrees = np.fromiter((len(adj[u]) for u in ids),
                              dtype=np.int64, count=n)
        total = int(degrees.sum())
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        flat = np.fromiter((index_of[v] for u in ids for v in adj[u]),
                           dtype=np.int32, count=total)
        if total:
            rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
            flat = flat[np.lexsort((flat, rows))]
        return cls(indptr, flat, ids)

    @classmethod
    def from_pairs(cls, lo, hi, ids):
        """Snapshot from canonical undirected index pairs.

        ``lo`` / ``hi`` are equal-length integer arrays with ``lo < hi``
        per entry and no duplicate pairs; ``ids`` maps index -> node
        identifier and fixes ``n`` (isolated nodes are rows with empty
        neighbor lists).
        """
        ids = list(ids)
        n = len(ids)
        src = np.concatenate((lo, hi)).astype(np.int64)
        dst = np.concatenate((hi, lo)).astype(np.int64)
        # One scalar-key argsort orders rows and, within each row, the
        # neighbor indices ascending -- cheaper than a two-key lexsort.
        order = np.argsort(src * n + dst)
        indices = dst[order].astype(np.int32)
        degrees = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        return cls(indptr, indices, ids)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self):
        return len(self.ids)

    def edge_count(self):
        """Number of undirected edges."""
        return int(self.indptr[-1]) // 2

    def degrees(self):
        """Degree of every row, as an ``int64`` array."""
        return np.diff(self.indptr.astype(np.int64))

    def neighbors_of(self, index):
        """Read-only array of row ``index``'s neighbor indices (ascending)."""
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def has_edge(self, i, j):
        """True iff rows ``i`` and ``j`` are adjacent (binary search)."""
        row = self.neighbors_of(i)
        pos = int(np.searchsorted(row, j))
        return pos < len(row) and int(row[pos]) == j

    def edge_arrays(self):
        """Undirected edges as index arrays ``(u, v)`` with ``u < v``.

        Rows come out in CSR order (by ``u``, then ascending ``v``), which
        is generally *not* the insertion order of ``Graph.edges``.
        """
        n = len(self.ids)
        degrees = self.degrees()
        row = np.repeat(np.arange(n, dtype=np.int64), degrees)
        col = self.indices.astype(np.int64)
        mask = row < col
        return row[mask], col[mask]

    # ------------------------------------------------------------------
    # triangle counting (Definition 1's numerator)
    # ------------------------------------------------------------------

    def triangle_counts(self):
        """Per-node triangle counts, memoized.

        A node's triangle count is the number of edges among its
        neighbors -- exactly the extra links of Definition 1.  Edges are
        oriented toward the higher degree-rank endpoint, so each triangle
        is found exactly once, as the forward-forward intersection of its
        lowest-ranked edge; the triangle then credits all three corners.
        Candidates are bulk-expanded from the smaller forward list with
        one ``repeat``; membership in the other endpoint's forward list
        is tested in O(1) against a boolean mark vector shared by all
        edges probing the same endpoint (edges are sorted so those are
        consecutive).  The expansion is chunked to a fixed memory budget.
        """
        if self._triangles is not None:
            return self._triangles
        n = len(self.ids)
        degrees = self.degrees()
        col = self.indices
        row = np.repeat(np.arange(n, dtype=np.int32), degrees)
        # Degree-ascending rank (ties by index): orienting every edge
        # toward the higher rank makes each triangle appear exactly once,
        # as the forward-forward intersection of its lowest-ranked edge.
        rank_of = np.empty(n, dtype=np.int32)
        rank_of[np.lexsort((np.arange(n), degrees))] = np.arange(
            n, dtype=np.int32)
        forward = rank_of[col] > rank_of[row]
        eu = row[forward].astype(np.int64)
        ev = col[forward].astype(np.int64)
        if not eu.size:
            tri = np.zeros(n, dtype=np.int64)
            tri.flags.writeable = False
            object.__setattr__(self, "_triangles", tri)
            return tri
        # Forward adjacency: rows of `fcol` grouped by source (eu is
        # already ascending), neighbors unsorted -- the bitmap probe below
        # does not need them sorted.
        fdeg = np.bincount(eu, minlength=n)
        findptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(fdeg, out=findptr[1:])
        fcol = ev.astype(np.int32)
        # Candidates come from the endpoint with the smaller forward list;
        # the other endpoint's forward list is the probed set.  Grouping
        # edges by the probed endpoint lets one boolean mark vector serve
        # every test against it.
        take_v = fdeg[ev] < fdeg[eu]
        small = np.where(take_v, ev, eu)
        other = np.where(take_v, eu, ev)
        order = np.argsort(other, kind="stable")
        small = small[order]
        other = other[order]
        eu = eu[order]
        ev = ev[order]
        counts = fdeg[small]
        cum = np.zeros(small.size + 1, dtype=np.int64)
        np.cumsum(counts, out=cum[1:])
        mark = np.zeros(n, dtype=bool)
        corner_hits = []
        edge_hits = np.zeros(small.size, dtype=np.int64)
        start = 0
        while start < small.size:
            end = int(np.searchsorted(cum, cum[start] + _TRIANGLE_CHUNK,
                                      side="right")) - 1
            end = min(max(end, start + 1), small.size)
            chunk_counts = counts[start:end]
            total = int(cum[end] - cum[start])
            if total:
                local = cum[start:end] - cum[start]
                offsets = (np.arange(total, dtype=np.int64)
                           - np.repeat(local, chunk_counts))
                w = fcol[np.repeat(findptr[small[start:end]], chunk_counts)
                         + offsets]
                chunk_other = other[start:end]
                group_edges = np.flatnonzero(
                    np.r_[True, chunk_other[1:] != chunk_other[:-1]])
                group_bounds = np.r_[local[group_edges], total].tolist()
                probed = chunk_other[group_edges].tolist()
                hit_mask = np.empty(total, dtype=bool)
                for o, lo, hi in zip(probed, group_bounds, group_bounds[1:]):
                    nbrs = fcol[findptr[o]:findptr[o + 1]]
                    mark[nbrs] = True
                    cand = w[lo:hi]
                    hit_mask[lo:hi] = mark[cand]
                    mark[nbrs] = False
                hit_at = np.flatnonzero(hit_mask)
                corner_hits.append(w[hit_at])
                # Per-edge triangle tallies credit the two edge endpoints.
                edge_hits[start:end] = np.diff(
                    np.searchsorted(hit_at, np.append(local, total)))
            start = end
        tri = np.zeros(n, dtype=np.int64)
        flat = np.concatenate(corner_hits) if corner_hits else eu[:0]
        if flat.size:
            tri += np.bincount(flat, minlength=n)
        closed = np.flatnonzero(edge_hits)
        if closed.size:
            tri += np.bincount(eu[closed], weights=edge_hits[closed],
                               minlength=n).astype(np.int64)
            tri += np.bincount(ev[closed], weights=edge_hits[closed],
                               minlength=n).astype(np.int64)
        tri.flags.writeable = False
        object.__setattr__(self, "_triangles", tri)
        return tri

    def __repr__(self):
        return f"CSRAdjacency(n={len(self.ids)}, m={self.edge_count()})"
