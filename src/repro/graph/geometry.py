"""Geometric support: positions in the unit square and unit-disk graphs.

The paper deploys nodes in a ``1 x 1`` square with transmission range ``R``
between 0.05 and 0.1; two nodes are linked iff their Euclidean distance is
at most ``R``.  Building that unit-disk graph naively is ``O(n^2)``; for the
1000-node workloads of Tables 3-5 we bin points into a cell grid of side
``R`` so only the 9 surrounding cells are scanned per node -- and the scan
itself is vectorized: points are sorted by cell key, each of the five
non-redundant neighbor-cell offsets becomes one bulk ``searchsorted`` join,
and candidate distances are evaluated with a single broadcasted NumPy
expression instead of Python-level loops over cell members.
"""

import numpy as np

from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError

# Offsets covering each unordered cell pair exactly once: the cell itself
# plus half of its 8-neighborhood (the other half is reached from the
# opposite cell).
_CELL_OFFSETS = ((0, 0), (1, -1), (1, 0), (1, 1), (0, 1))


def pairs_within_range(positions, radius):
    """All index pairs at distance <= ``radius``, as an ``(m, 2)`` array.

    ``positions`` is an ``(n, 2)`` array.  Each returned row ``(i, j)``
    satisfies ``i < j``; rows are lexicographically sorted, so the output
    is a deterministic function of the input alone.  Uses vectorized cell
    binning: correctness is independent of the binning, which tests
    verify against brute force.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ConfigurationError("positions must be an (n, 2) array")
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
    n = len(positions)
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)

    # One integer key per cell; stride leaves room for the dy = -1..1 of
    # the neighbor offsets so distinct cells never share a key.
    cell = np.floor(positions / radius).astype(np.int64)
    cell -= cell.min(axis=0)
    stride = np.int64(cell[:, 1].max()) + 3
    if int(cell[:, 0].max() + 1) * int(stride) >= 2 ** 62:
        # Fail loudly instead of wrapping int64 keys (coordinate span
        # around 2^31 times the radius -- far beyond any real workload).
        raise ConfigurationError(
            "coordinate span too large relative to radius for cell binning")
    key = cell[:, 0] * stride + cell[:, 1]

    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    sorted_pos = positions[order]
    r2 = radius * radius
    indices = np.arange(n)

    chunks = []
    for dx, dy in _CELL_OFFSETS:
        target = sorted_key + (dx * stride + dy)
        if dx == 0 and dy == 0:
            # Within-cell pairs: for each point, only the later points of
            # its own (contiguous) cell block.
            lo = indices + 1
        else:
            lo = np.searchsorted(sorted_key, target, side="left")
        hi = np.searchsorted(sorted_key, target, side="right")
        counts = np.maximum(hi - lo, 0)
        total = int(counts.sum())
        if total == 0:
            continue
        left = np.repeat(indices, counts)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        right = np.arange(total) - np.repeat(starts, counts) \
            + np.repeat(lo, counts)
        diff = sorted_pos[left] - sorted_pos[right]
        close = np.einsum("ij,ij->i", diff, diff) <= r2
        a = order[left[close]]
        b = order[right[close]]
        chunks.append(np.column_stack((np.minimum(a, b), np.maximum(a, b))))

    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(chunks)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def pairwise_within_range(positions, radius):
    """Index pairs ``(i, j)``, ``i < j``, with distance <= ``radius``.

    Tuple-yielding view of :func:`pairs_within_range`, kept for callers
    that consume Python pairs; bulk consumers should use the array
    directly.
    """
    return [(i, j) for i, j in pairs_within_range(positions, radius).tolist()]


def unit_disk_graph(positions, radius, node_ids=None):
    """Build the unit-disk :class:`Graph` over ``positions``.

    ``node_ids`` maps point index -> node identifier; defaults to the index
    itself.  Returns ``(graph, positions_by_id)`` where the second element is
    a dict from node id to its ``(x, y)`` position.

    The ``pairs_within_range`` array feeds ``Graph.from_pair_array``
    directly, so adjacency is assembled in bulk (and the graph carries a
    ready CSR snapshot) instead of one ``add_edge`` call per pair.
    """
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if node_ids is None:
        node_ids = n
    else:
        if len(node_ids) != n:
            raise ConfigurationError(
                f"node_ids has {len(node_ids)} entries for {n} positions")
        if len(set(node_ids)) != n:
            raise ConfigurationError("node identifiers must be unique")
    graph = Graph.from_pair_array(pairs_within_range(positions, radius),
                                  node_ids)
    ids = graph.nodes
    positions_by_id = {ids[i]: (float(positions[i, 0]), float(positions[i, 1]))
                       for i in range(n)}
    return graph, positions_by_id
