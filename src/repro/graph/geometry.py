"""Geometric support: positions in the unit square and unit-disk graphs.

The paper deploys nodes in a ``1 x 1`` square with transmission range ``R``
between 0.05 and 0.1; two nodes are linked iff their Euclidean distance is
at most ``R``.  Building that unit-disk graph naively is ``O(n^2)``; for the
1000-node workloads of Tables 3-5 we bin points into a cell grid of side
``R`` so only the 9 surrounding cells are scanned per node.
"""

import numpy as np

from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError


def pairwise_within_range(positions, radius):
    """Yield index pairs ``(i, j)``, ``i < j``, with distance <= ``radius``.

    ``positions`` is an ``(n, 2)`` array.  Uses cell binning: correctness is
    independent of the binning, which tests verify against brute force.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ConfigurationError("positions must be an (n, 2) array")
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
    n = len(positions)
    cells = {}
    cell_of = np.floor(positions / radius).astype(np.int64)
    for i in range(n):
        cells.setdefault((cell_of[i, 0], cell_of[i, 1]), []).append(i)
    r2 = radius * radius
    for (cx, cy), members in cells.items():
        # Within-cell pairs.
        for a in range(len(members)):
            i = members[a]
            for b in range(a + 1, len(members)):
                j = members[b]
                if _dist2(positions, i, j) <= r2:
                    yield (i, j) if i < j else (j, i)
        # Pairs with half of the surrounding cells (each cell pair once).
        for dx, dy in ((1, -1), (1, 0), (1, 1), (0, 1)):
            other = cells.get((cx + dx, cy + dy))
            if not other:
                continue
            for i in members:
                for j in other:
                    if _dist2(positions, i, j) <= r2:
                        yield (i, j) if i < j else (j, i)


def _dist2(positions, i, j):
    dx = positions[i, 0] - positions[j, 0]
    dy = positions[i, 1] - positions[j, 1]
    return dx * dx + dy * dy


def unit_disk_graph(positions, radius, node_ids=None):
    """Build the unit-disk :class:`Graph` over ``positions``.

    ``node_ids`` maps point index -> node identifier; defaults to the index
    itself.  Returns ``(graph, positions_by_id)`` where the second element is
    a dict from node id to its ``(x, y)`` position.
    """
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if node_ids is None:
        node_ids = list(range(n))
    elif len(node_ids) != n:
        raise ConfigurationError(
            f"node_ids has {len(node_ids)} entries for {n} positions")
    if len(set(node_ids)) != n:
        raise ConfigurationError("node identifiers must be unique")
    graph = Graph(nodes=node_ids)
    for i, j in pairwise_within_range(positions, radius):
        graph.add_edge(node_ids[i], node_ids[j])
    positions_by_id = {node_ids[i]: (float(positions[i, 0]), float(positions[i, 1]))
                       for i in range(n)}
    return graph, positions_by_id
