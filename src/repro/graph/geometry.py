"""Geometric support: positions in the unit square and unit-disk graphs.

The paper deploys nodes in a ``1 x 1`` square with transmission range ``R``
between 0.05 and 0.1; two nodes are linked iff their Euclidean distance is
at most ``R``.  Building that unit-disk graph naively is ``O(n^2)``; points
are binned into a cell grid of side ``R`` so only the 9 surrounding cells
are scanned per node -- and the scan itself is vectorized: points are
sorted by cell key, each neighbor-cell offset becomes one bulk
``searchsorted`` join, and candidate distances are evaluated with a single
broadcasted NumPy expression instead of Python-level loops over cell
members.

Two drivers share that kernel:

* :func:`pairs_within_range` materializes the whole pair array at once --
  the right call below ~10^5 nodes;
* :func:`chunk_pairs` streams the same rows, in the same lexicographic
  order, as bounded-size chunks -- so a 10^6-node unit-disk graph builds
  without ever holding the full candidate expansion in memory.
"""

import numpy as np

from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError

# Offsets covering each unordered cell pair exactly once: the cell itself
# plus half of its 8-neighborhood (the other half is reached from the
# opposite cell).
_CELL_OFFSETS = ((0, 0), (1, -1), (1, 0), (1, 1), (0, 1))

# The full 9-cell neighborhood, scanned by the streaming driver: a block
# of left endpoints must see candidates in *every* direction because its
# pairing rule is ``j > i`` in original index order, not cell order.
_BLOCK_OFFSETS = tuple((dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1))

# Streaming construction: default per-chunk row budget, and the node
# count at which the graph builders switch to the chunked path.
DEFAULT_CHUNK_PAIRS = 4_000_000
STREAM_NODE_THRESHOLD = 200_000


def _validated_positions(positions):
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ConfigurationError("positions must be an (n, 2) array")
    return positions


def _cell_keys(positions, radius):
    """Int64 cell key per point, plus the key stride (cells of side
    ``radius``).

    The stride leaves room for the ``dy = -1..1`` of the neighbor offsets
    so distinct cells never share a key.
    """
    cell = np.floor(positions / radius).astype(np.int64)
    cell -= cell.min(axis=0)
    stride = np.int64(cell[:, 1].max()) + 3
    if int(cell[:, 0].max() + 1) * int(stride) >= 2**62:
        # Fail loudly instead of wrapping int64 keys (coordinate span
        # around 2^31 times the radius -- far beyond any real workload).
        raise ConfigurationError(
            "coordinate span too large relative to radius for cell binning"
        )
    return cell[:, 0] * stride + cell[:, 1], stride


def pairs_within_range(positions, radius):
    """All index pairs at distance <= ``radius``, as an ``(m, 2)`` array.

    ``positions`` is an ``(n, 2)`` array.  Each returned row ``(i, j)``
    satisfies ``i < j``; rows are lexicographically sorted, so the output
    is a deterministic function of the input alone.  Uses vectorized cell
    binning: correctness is independent of the binning, which tests
    verify against brute force.
    """
    positions = _validated_positions(positions)
    if radius is None:
        raise ConfigurationError(
            "range queries need a transmission radius; got radius=None "
            "(only geometric topologies define one)")
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
    n = len(positions)
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)

    key, stride = _cell_keys(positions, radius)
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    sorted_pos = positions[order]
    r2 = radius * radius
    indices = np.arange(n)

    chunks = []
    for dx, dy in _CELL_OFFSETS:
        target = sorted_key + (dx * stride + dy)
        if dx == 0 and dy == 0:
            # Within-cell pairs: for each point, only the later points of
            # its own (contiguous) cell block.
            lo = indices + 1
        else:
            lo = np.searchsorted(sorted_key, target, side="left")
        hi = np.searchsorted(sorted_key, target, side="right")
        counts = np.maximum(hi - lo, 0)
        total = int(counts.sum())
        if total == 0:
            continue
        left = np.repeat(indices, counts)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        right = np.arange(total) - np.repeat(starts, counts) + np.repeat(lo, counts)
        diff = sorted_pos[left] - sorted_pos[right]
        close = np.einsum("ij,ij->i", diff, diff) <= r2
        a = order[left[close]]
        b = order[right[close]]
        chunks.append(np.column_stack((np.minimum(a, b), np.maximum(a, b))))

    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(chunks)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def chunk_pairs(positions, radius, max_pairs=None):
    """Stream the ``pairs_within_range`` rows as bounded ``(k, 2)`` chunks.

    Yields ``int64`` arrays of at most ``max_pairs`` rows (default
    ``DEFAULT_CHUNK_PAIRS``) whose concatenation equals
    ``pairs_within_range(positions, radius)`` exactly: every row has
    ``i < j``, rows are globally lexicographically sorted, and no pair is
    repeated.  Peak memory is bounded by the chunk budget (plus the cell
    index itself), so the pair search scales to 10^6-node inputs whose
    full candidate expansion would not fit.

    Chunk *boundaries* are an implementation detail of the budget; the
    sequence of rows is the deterministic contract that chunk-by-chunk
    consumers (the quasi-UDG gray-zone RNG draws) rely on.
    """
    positions = _validated_positions(positions)
    if radius is None:
        raise ConfigurationError(
            "range queries need a transmission radius; got radius=None "
            "(only geometric topologies define one)")
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
    budget = DEFAULT_CHUNK_PAIRS if max_pairs is None else int(max_pairs)
    if budget < 1:
        raise ConfigurationError(f"max_pairs must be >= 1, got {max_pairs}")
    return _iter_pair_chunks(positions, float(radius), budget)


def _iter_pair_chunks(positions, radius, budget):
    """Generator behind :func:`chunk_pairs` (validation happens eagerly).

    Left endpoints are processed in blocks of ascending original index;
    within a block every candidate ``j > i`` is found through one
    ``searchsorted`` join per 9-neighborhood offset against the globally
    cell-sorted order, then distance-filtered and lexsorted.  Blocks
    ascend in left index, so concatenating the per-block rows reproduces
    the global lexicographic order of the one-shot driver.
    """
    n = len(positions)
    if n < 2:
        return
    key, stride = _cell_keys(positions, radius)
    offsets = [dx * stride + dy for dx, dy in _BLOCK_OFFSETS]
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    r2 = radius * radius
    # Block size targets the chunk budget: with ~occupancy points per
    # cell, each left endpoint expands to ~9 * occupancy candidates.
    distinct = int(np.count_nonzero(np.r_[True, sorted_key[1:] != sorted_key[:-1]]))
    per_point = max(1, (9 * n) // max(distinct, 1))
    block = max(1, min(n, budget // per_point))
    for start in range(0, n, block):
        stop = min(start + block, n)
        left_ids = np.arange(start, stop, dtype=np.int64)
        block_key = key[start:stop]
        parts = []
        for offset in offsets:
            target = block_key + offset
            lo = np.searchsorted(sorted_key, target, side="left")
            hi = np.searchsorted(sorted_key, target, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if not total:
                continue
            left = np.repeat(left_ids, counts)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            slot = np.arange(total) - np.repeat(starts, counts) + np.repeat(lo, counts)
            right = order[slot]
            forward = right > left
            left, right = left[forward], right[forward]
            if not left.size:
                continue
            diff = positions[left] - positions[right]
            close = np.einsum("ij,ij->i", diff, diff) <= r2
            if close.any():
                parts.append(np.column_stack((left[close], right[close])))
        if not parts:
            continue
        pairs = np.concatenate(parts)
        pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
        for cut in range(0, len(pairs), budget):
            yield pairs[cut : cut + budget]


def pairwise_within_range(positions, radius):
    """Index pairs ``(i, j)``, ``i < j``, with distance <= ``radius``.

    Tuple-yielding view of the pair search, kept for callers that consume
    Python pairs.  Streams through :func:`chunk_pairs` so peak memory is
    the chunk budget, not the full candidate expansion; bulk consumers
    should use the arrays directly.
    """
    return [
        (i, j)
        for chunk in chunk_pairs(positions, radius)
        for i, j in chunk.tolist()
    ]


def unit_disk_graph(positions, radius, node_ids=None, max_pairs=None):
    """Build the unit-disk :class:`Graph` over ``positions``.

    ``node_ids`` maps point index -> node identifier; defaults to the index
    itself.  Returns ``(graph, positions_by_id)`` where the second element
    is a dict from node id to its ``(x, y)`` position.

    Below ``STREAM_NODE_THRESHOLD`` nodes the whole ``pairs_within_range``
    array feeds ``Graph.from_pair_array`` at once; above it -- or whenever
    ``max_pairs`` is passed -- the :func:`chunk_pairs` stream feeds
    ``Graph.from_pair_chunks`` so peak memory stays bounded by the chunk
    budget.  Both paths produce the same edge set; the streamed graph
    materializes its dict adjacency lazily from the CSR snapshot.
    """
    positions = _validated_positions(positions)
    n = len(positions)
    if node_ids is None:
        node_ids = n
    else:
        if len(node_ids) != n:
            raise ConfigurationError(
                f"node_ids has {len(node_ids)} entries for {n} positions"
            )
        if len(set(node_ids)) != n:
            raise ConfigurationError("node identifiers must be unique")
    if max_pairs is None and n < STREAM_NODE_THRESHOLD:
        graph = Graph.from_pair_array(pairs_within_range(positions, radius), node_ids)
    else:
        graph = Graph.from_pair_chunks(
            chunk_pairs(positions, radius, max_pairs=max_pairs), node_ids
        )
    ids = graph.nodes
    positions_by_id = {
        ids[i]: (row[0], row[1]) for i, row in enumerate(positions.tolist())
    }
    return graph, positions_by_id
