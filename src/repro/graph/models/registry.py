"""The topology registry: named generators behind one :class:`TopologySpec`.

PR 8 gave clusterers a uniform seam (``engine_for(metric)``); this module
gives topologies the same treatment.  A :class:`TopologySpec` is a
picklable value object -- generator name, normalized parameters, optional
seed -- and :func:`build_topology_spec` resolves it through the registry
into a :class:`~repro.graph.generators.Topology`, so every experiment
family can consume ``--topology name:param=val,...`` without per-family
wiring.

Registered names cover three groups:

* the paper shapes (``poisson``, ``uniform``, ``grid``, ``square_grid``,
  ``quasi_udg``, ``figure1``, ``line``, ``ring``, ``star``,
  ``complete``) -- registered by :mod:`repro.graph.models.builtin`;
* the beyond-unit-disk generator suite (``distance_rule``,
  ``erdos_renyi``, ``nw_small_world``, ``scale_free``, ``fixed_degree``,
  ``gaussian_degree``) -- registered by their defining modules under
  :mod:`repro.graph.models`;
* the ``file`` scheme (:mod:`repro.graph.io`), which loads a recorded
  edge-list or GML topology from disk.

Factories are plain callables ``factory(rng=None, **params) ->
Topology``; :func:`register_topology` records them plus whether the
result carries geometric positions.  Experiments fill family defaults
(node count, matched mean degree) through :meth:`TopologySpec.
with_defaults` -- explicit parameters always win.
"""

import inspect
from dataclasses import dataclass, field, replace

from repro.util.errors import ConfigurationError

_TOPOLOGY_FACTORIES = {}
_GEOMETRIC = set()
_DEGREE_PARAMS = {}
_BUILTINS_LOADED = False


def register_topology(name, geometric=False, degree_params=()):
    """Decorator registering a topology factory under ``name``.

    ``geometric`` records whether the factory's topologies carry node
    positions (and hence can feed geometry-consuming workloads).
    ``degree_params`` names the factory parameters that pin the mean
    degree *instead of* ``degree=`` (``p`` for Erdős–Rényi, ``k`` for
    the small world, ...), so experiment default-filling knows when a
    matched-degree default would conflict with what the user gave.
    """

    def decorate(factory):
        if name in _TOPOLOGY_FACTORIES:
            raise ConfigurationError(
                f"topology {name!r} is already registered "
                f"(by {_TOPOLOGY_FACTORIES[name].__module__})"
            )
        _TOPOLOGY_FACTORIES[name] = factory
        if geometric:
            _GEOMETRIC.add(name)
        _DEGREE_PARAMS[name] = tuple(degree_params)
        return factory

    return decorate


def topology_for(name):
    """The registered factory for ``name`` (unknown names fail loudly)."""
    _load_builtins()
    try:
        return _TOPOLOGY_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_TOPOLOGY_FACTORIES))
        raise ConfigurationError(
            f"unknown topology {name!r}; registered generators: {known}"
        ) from None


def registered_topologies():
    """Sorted names with a registered topology factory."""
    _load_builtins()
    return sorted(_TOPOLOGY_FACTORIES)


def is_geometric(name):
    """True when ``name``'s topologies carry node positions."""
    topology_for(name)  # raises on unknown names
    return name in _GEOMETRIC


def degree_parameters(name):
    """Parameters that pin ``name``'s mean degree instead of ``degree=``."""
    topology_for(name)  # raises on unknown names
    return _DEGREE_PARAMS.get(name, ())


def accepted_parameters(name):
    """The keyword parameters ``name``'s factory accepts (sorted)."""
    signature = inspect.signature(topology_for(name))
    return sorted(
        parameter
        for parameter in signature.parameters
        if parameter != "rng"
        and signature.parameters[parameter].kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    )


def _load_builtins():
    """Import the modules whose import registers the built-in factories."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.graph.io  # noqa: F401  (the ``file`` scheme)
        import repro.graph.models  # noqa: F401


def _parse_value(text):
    """CLI parameter literal -> int / float / str (in that preference)."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


@dataclass(frozen=True)
class TopologySpec:
    """A generator name plus normalized parameters and an optional seed.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so equal
    specifications compare (and hash, and pickle) equal regardless of
    the order parameters were given in.  ``seed`` feeds the build when
    the caller supplies no generator of its own.
    """

    name: str
    params: tuple = field(default=())
    seed: int = None

    @classmethod
    def make(cls, name, params=None, seed=None):
        """Build a spec from a parameter mapping (normalizing order)."""
        items = tuple(sorted((params or {}).items()))
        return cls(name=name, params=items, seed=seed)

    @classmethod
    def parse(cls, text):
        """Parse the CLI form ``name[:param=val,...]``.

        Values become ints or floats when they parse as such.  A
        ``seed=`` parameter populates the spec's seed field.  The
        ``file`` scheme accepts a bare path (``file:trace.gml``) as
        shorthand for ``file:path=trace.gml``.
        """
        text = text.strip()
        if not text:
            raise ConfigurationError("empty topology specification")
        name, _, rest = text.partition(":")
        name = name.strip()
        params = {}
        seed = None
        if rest and name == "file" and "=" not in rest:
            params["path"] = rest
            rest = ""
        for chunk in filter(None, (p.strip() for p in rest.split(","))):
            key, sep, raw = chunk.partition("=")
            if not sep or not key.strip():
                raise ConfigurationError(
                    f"malformed topology parameter {chunk!r} in {text!r}; "
                    "expected name:param=value,param=value"
                )
            value = _parse_value(raw.strip())
            if key.strip() == "seed":
                if not isinstance(value, int):
                    raise ConfigurationError(
                        f"topology seed must be an integer, got {raw!r}"
                    )
                seed = value
            else:
                params[key.strip()] = value
        return cls.make(name, params, seed=seed)

    def param_dict(self):
        """The parameters as a plain dict."""
        return dict(self.params)

    def with_defaults(self, **defaults):
        """A spec with ``defaults`` filled in for *absent* parameters
        only -- explicit parameters always win."""
        params = self.param_dict()
        merged = {key: value for key, value in defaults.items() if key not in params}
        if not merged:
            return self
        params.update(merged)
        return replace(self, params=tuple(sorted(params.items())))

    def __str__(self):
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        if self.seed is not None:
            rendered = ",".join(filter(None, (rendered, f"seed={self.seed}")))
        return f"{self.name}:{rendered}" if rendered else self.name


def as_topology_spec(spec):
    """Coerce a spec string or :class:`TopologySpec` into a spec."""
    if isinstance(spec, TopologySpec):
        return spec
    if isinstance(spec, str):
        return TopologySpec.parse(spec)
    raise ConfigurationError(
        f"expected a TopologySpec or 'name:param=val' string, got {spec!r}"
    )


def build_topology_spec(spec, rng=None):
    """Build ``spec``'s topology; returns it with ``spec`` attached.

    ``rng`` (int seed or generator) overrides the spec's own seed; with
    neither, generation uses fresh entropy exactly like calling the
    generator function directly.
    """
    spec = as_topology_spec(spec)
    factory = topology_for(spec.name)
    if rng is None:
        rng = spec.seed
    try:
        topology = factory(rng=rng, **spec.param_dict())
    except TypeError as error:
        accepted = ", ".join(accepted_parameters(spec.name)) or "(none)"
        raise ConfigurationError(
            f"bad parameters for topology {spec.name!r}: {error}; "
            f"accepted parameters: {accepted}"
        ) from None
    topology.spec = spec
    return topology
