"""Shared pair-array plumbing for the topology generator suite.

Every generator in :mod:`repro.graph.models` emits the same vectorized
lexicographic pair-array format the geometry kernel produces, so graphs
arrive CSR-first through ``Graph.from_pair_array`` and -- above
``STREAM_NODE_THRESHOLD`` or whenever a chunk budget is forced --
through the streaming ``Graph.from_pair_chunks`` path with its bounded
memory envelope.
"""

import numpy as np

from repro.graph.generators import Topology
from repro.graph.geometry import DEFAULT_CHUNK_PAIRS, STREAM_NODE_THRESHOLD
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError


def check_count(count, minimum=0):
    """Validate a node count parameter (coercing numeric literals)."""
    count = int(count)
    if count < minimum:
        raise ConfigurationError(f"count must be >= {minimum}, got {count}")
    return count


def canonical_pairs(pairs, count, drop_loops=False):
    """Canonicalize an ``(m, 2)`` index-pair array: ``i < j`` per row,
    lexicographically sorted, duplicates removed.

    ``drop_loops`` silently discards self-pairs (the configuration-model
    generators produce a few by construction); otherwise a self-pair is
    a :class:`ConfigurationError`.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    loops = lo == hi
    if loops.any():
        if not drop_loops:
            node = int(lo[int(np.argmax(loops))])
            raise ConfigurationError(f"self-loop on node {node!r} is not allowed")
        keep = ~loops
        lo, hi = lo[keep], hi[keep]
    if not lo.size:
        return np.empty((0, 2), dtype=np.int64)
    keys = np.unique(lo * np.int64(count) + hi)
    return np.column_stack((keys // count, keys % count))


def graph_from_pairs(pairs, count, max_pairs=None):
    """Build a :class:`Graph` from a canonical pair array.

    Below ``STREAM_NODE_THRESHOLD`` nodes the whole array feeds
    ``Graph.from_pair_array`` at once; above it -- or whenever
    ``max_pairs`` forces a chunk budget -- the rows stream through
    ``Graph.from_pair_chunks`` in bounded slices, the same contract the
    geometry kernel's ``chunk_pairs`` satisfies, so million-node
    combinatorial graphs stay CSR-only and lazily materialized.
    """
    if max_pairs is None and count < STREAM_NODE_THRESHOLD:
        return Graph.from_pair_array(pairs, count)
    budget = DEFAULT_CHUNK_PAIRS if max_pairs is None else int(max_pairs)
    if budget < 1:
        raise ConfigurationError(f"max_pairs must be >= 1, got {max_pairs}")
    chunks = (pairs[start : start + budget] for start in range(0, len(pairs), budget))
    return Graph.from_pair_chunks(chunks, count)


def combinatorial_topology(pairs, count, max_pairs=None):
    """A position-free :class:`Topology` over canonical ``pairs``."""
    graph = graph_from_pairs(pairs, count, max_pairs=max_pairs)
    return Topology(graph)


def pair_stubs(degrees, rng):
    """Configuration-model pairing: one shuffled stub match per edge.

    ``degrees`` is an int array of per-node stub counts.  Returns the
    raw ``(m, 2)`` pair array (self-pairs and duplicates included --
    callers canonicalize with ``drop_loops=True``), so realized degrees
    are approximate wherever the matching collides, the standard
    simple-graph projection of the configuration model.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if (degrees < 0).any():
        raise ConfigurationError("degrees must be non-negative")
    stubs = np.repeat(np.arange(len(degrees), dtype=np.int64), degrees)
    if len(stubs) % 2:
        stubs = stubs[:-1]  # an odd stub count leaves one unmatched
    stubs = rng.permutation(stubs)
    return stubs.reshape(-1, 2)
