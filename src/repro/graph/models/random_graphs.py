"""Degree-driven random graphs: G(n, p) and configuration models.

Three position-free generators:

* :func:`erdos_renyi_topology` -- G(n, p) by geometric skipping over the
  lexicographic pair enumeration: gap lengths are drawn ``Geometric(p)``
  and linear indices converted to ``(i, j)`` rows in bulk, so the
  candidate space is never materialized (O(m) work and memory for any
  ``n``) and the emitted rows are strictly lexicographically increasing
  -- the exact ``chunk_pairs`` contract.
* :func:`fixed_degree_topology` / :func:`gaussian_degree_topology` --
  configuration-model matchings over fixed or Gaussian-drawn stub
  counts, projected to a simple graph (collisions dropped, so realized
  degrees are approximate in the standard way).

All three build through the shared pair-array path of
:mod:`repro.graph.models.pairs`: CSR-first, streamed above
``STREAM_NODE_THRESHOLD`` or whenever ``max_pairs`` forces the chunked
build.
"""

import numpy as np

from repro.graph.models.pairs import (
    canonical_pairs,
    check_count,
    combinatorial_topology,
    pair_stubs,
)
from repro.graph.models.registry import register_topology
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng

#: Geometric gap draws per batch.  Fixed (never derived from the chunk
#: budget) so the RNG stream -- and with it the edge set -- is identical
#: whether the build is streamed or one-shot.
GAP_BATCH = 65_536


def _row_offsets(i, count):
    """Linear index of the first pair in row ``i`` of the enumeration."""
    return i * (2 * count - i - 1) // 2


def _linear_to_pairs(linear, count):
    """Strictly increasing linear pair indices -> canonical ``(i, j)``.

    The float solve of the row quadratic lands within one row of the
    truth; two clamped fixups make it exact (``searchsorted``-free, so
    the conversion is O(k)).
    """
    b = 2.0 * count - 1.0
    i = np.floor((b - np.sqrt(b * b - 8.0 * linear.astype(np.float64))) / 2.0)
    i = np.clip(i.astype(np.int64), 0, count - 2)
    i -= _row_offsets(i, count) > linear
    i += _row_offsets(i + 1, count) <= linear
    j = linear - _row_offsets(i, count) + i + 1
    return np.column_stack((i, j))


def _er_pair_chunks(count, p, rng):
    """Yield the kept G(n, p) pairs as lexicographically increasing
    chunks (one per gap batch)."""
    total = count * (count - 1) // 2
    if total == 0 or p <= 0.0:
        return
    if p >= 1.0:
        for start in range(0, total, GAP_BATCH):
            stop = min(start + GAP_BATCH, total)
            yield _linear_to_pairs(np.arange(start, stop, dtype=np.int64), count)
        return
    log_skip = np.log1p(-p)
    position = np.int64(-1)
    while position < total - 1:
        draws = rng.random(GAP_BATCH)
        with np.errstate(divide="ignore"):
            gaps = np.floor(np.log(draws) / log_skip) + 1.0
        gaps = np.minimum(gaps, float(total)).astype(np.int64)
        linear = position + np.cumsum(gaps)
        position = linear[-1]
        linear = linear[linear < total]
        if linear.size:
            yield _linear_to_pairs(linear, count)


@register_topology("erdos_renyi", degree_params=("p",))
def erdos_renyi_topology(count, p=None, degree=None, rng=None, max_pairs=None):
    """Erdős–Rényi G(n, p) over ``count`` nodes.

    Exactly one of ``p`` (the link probability) and ``degree`` (the
    target mean degree, giving ``p = degree / (count - 1)``) must be
    given.
    """
    count = check_count(count, minimum=1)
    if (p is None) == (degree is None):
        raise ConfigurationError(
            "give exactly one of p= (link probability) or degree= "
            "(target mean degree)"
        )
    if p is None:
        if degree < 0:
            raise ConfigurationError(f"degree must be non-negative, got {degree}")
        p = degree / (count - 1) if count > 1 else 0.0
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must lie in [0, 1], got {p}")
    rng = as_rng(rng)
    chunks = list(_er_pair_chunks(count, p, rng))
    pairs = np.concatenate(chunks) if chunks else np.empty((0, 2), dtype=np.int64)
    return combinatorial_topology(pairs, count, max_pairs=max_pairs)


@register_topology("fixed_degree")
def fixed_degree_topology(count, degree=None, rng=None, max_pairs=None):
    """A configuration-model graph where every node gets ``degree``
    stubs (realized degrees are approximate where the matching
    collides)."""
    count = check_count(count, minimum=1)
    if degree is None:
        raise ConfigurationError("fixed_degree requires degree=")
    degree = int(round(degree))
    if not 0 <= degree < max(count, 1):
        raise ConfigurationError(f"degree must lie in [0, {count}), got {degree}")
    rng = as_rng(rng)
    matches = pair_stubs(np.full(count, degree, dtype=np.int64), rng)
    pairs = canonical_pairs(matches, count, drop_loops=True)
    return combinatorial_topology(pairs, count, max_pairs=max_pairs)


@register_topology("gaussian_degree", degree_params=("avg",))
def gaussian_degree_topology(
    count, avg=None, std=None, degree=None, rng=None, max_pairs=None
):
    """A configuration-model graph with Gaussian-drawn stub counts.

    ``avg`` (or its alias ``degree``) sets the mean, ``std`` the spread
    (default ``avg / 4``).  Draws are rounded and clipped to
    ``[0, count - 1]``.
    """
    count = check_count(count, minimum=1)
    if avg is None:
        avg = degree
    elif degree is not None:
        raise ConfigurationError("give avg= or degree=, not both")
    if avg is None:
        raise ConfigurationError("gaussian_degree requires avg= (or degree=)")
    avg = float(avg)
    if avg < 0:
        raise ConfigurationError(f"avg must be non-negative, got {avg}")
    std = avg / 4.0 if std is None else float(std)
    if std < 0:
        raise ConfigurationError(f"std must be non-negative, got {std}")
    rng = as_rng(rng)
    draws = np.rint(rng.normal(avg, std, size=count))
    degrees = np.clip(draws, 0, max(count - 1, 0)).astype(np.int64)
    matches = pair_stubs(degrees, rng)
    pairs = canonical_pairs(matches, count, drop_loops=True)
    return combinatorial_topology(pairs, count, max_pairs=max_pairs)
