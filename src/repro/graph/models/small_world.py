"""Newman–Watts small-world topologies.

The Newman–Watts variant of the Watts–Strogatz model keeps the ring
lattice intact (no rewiring, so the graph stays connected) and *adds* a
random shortcut with probability ``p`` per lattice edge.  Mean degree is
``2k (1 + p)`` up to shortcut collisions.

Both edge families are generated with bulk array expressions -- the
lattice as stacked index arithmetic, the shortcut endpoints as one
vectorized draw per family -- then canonicalized into the shared
lexicographic pair-array format and built CSR-first (streamed above
``STREAM_NODE_THRESHOLD``).
"""

import numpy as np

from repro.graph.models.pairs import (
    canonical_pairs,
    check_count,
    combinatorial_topology,
)
from repro.graph.models.registry import register_topology
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


def _lattice_pairs(count, k):
    """Ring-lattice pairs: each node to its ``k`` clockwise neighbors."""
    nodes = np.arange(count, dtype=np.int64)
    left = np.repeat(nodes, k)
    right = (left + np.tile(np.arange(1, k + 1, dtype=np.int64), count)) % count
    return np.column_stack((left, right))


@register_topology("nw_small_world", degree_params=("k",))
def nw_small_world_topology(
    count, k=None, p=0.1, degree=None, rng=None, max_pairs=None
):
    """Newman–Watts small-world graph over ``count`` ring nodes.

    ``k`` is the lattice half-degree (neighbors per side); ``degree``
    derives it as ``round(degree / (2 (1 + p)))`` for a matched mean
    degree.  ``p`` is the per-lattice-edge shortcut probability.
    """
    count = check_count(count, minimum=3)
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must lie in [0, 1], got {p}")
    if (k is None) == (degree is None):
        raise ConfigurationError(
            "give exactly one of k= (lattice half-degree) or degree= "
            "(target mean degree)"
        )
    if k is None:
        k = max(1, int(round(degree / (2.0 * (1.0 + p)))))
    k = int(k)
    if not 1 <= k <= (count - 1) // 2:
        raise ConfigurationError(
            f"k must lie in [1, {(count - 1) // 2}] for {count} nodes, "
            f"got {k}"
        )
    rng = as_rng(rng)
    lattice = _lattice_pairs(count, k)
    # One shortcut candidate per lattice edge, all drawn in bulk: the
    # keep mask first, then a uniform far endpoint per kept candidate.
    keep = rng.random(len(lattice)) < p
    sources = lattice[keep, 0]
    targets = rng.integers(0, count, size=len(sources), dtype=np.int64)
    shortcuts = np.column_stack((sources, targets))
    shortcuts = shortcuts[sources != targets]
    pairs = canonical_pairs(np.concatenate((lattice, shortcuts)), count)
    return combinatorial_topology(pairs, count, max_pairs=max_pairs)
