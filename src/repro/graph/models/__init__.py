"""Topology generators beyond the unit disk, behind one registry.

Importing this package registers every generator: the distance-rule
family (:mod:`~repro.graph.models.spatial`), Erdős–Rényi and the
configuration models (:mod:`~repro.graph.models.random_graphs`),
Newman–Watts small worlds (:mod:`~repro.graph.models.small_world`),
Barabási–Albert scale-free graphs
(:mod:`~repro.graph.models.scale_free`), and the paper's own shapes
(:mod:`~repro.graph.models.builtin`).  The ``file`` scheme for recorded
topologies lives in :mod:`repro.graph.io` and registers on the same
import path.

All generators emit the vectorized lexicographic pair-array format, so
graphs arrive CSR-first through ``Graph.from_pair_array`` /
``from_pair_chunks`` and inherit the streaming construction path above
``STREAM_NODE_THRESHOLD``.
"""

from repro.graph.models import builtin  # noqa: F401
from repro.graph.models.random_graphs import (
    erdos_renyi_topology,
    fixed_degree_topology,
    gaussian_degree_topology,
)
from repro.graph.models.registry import (
    TopologySpec,
    accepted_parameters,
    as_topology_spec,
    build_topology_spec,
    degree_parameters,
    is_geometric,
    register_topology,
    registered_topologies,
    topology_for,
)
from repro.graph.models.scale_free import scale_free_topology
from repro.graph.models.small_world import nw_small_world_topology
from repro.graph.models.spatial import distance_rule_topology

__all__ = [
    "TopologySpec",
    "accepted_parameters",
    "as_topology_spec",
    "build_topology_spec",
    "degree_parameters",
    "distance_rule_topology",
    "erdos_renyi_topology",
    "fixed_degree_topology",
    "gaussian_degree_topology",
    "is_geometric",
    "nw_small_world_topology",
    "register_topology",
    "registered_topologies",
    "scale_free_topology",
    "topology_for",
]
