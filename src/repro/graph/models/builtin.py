"""Registry entries for the paper's own shapes.

The generator functions live in :mod:`repro.graph.generators` and
:mod:`repro.graph.quasi_udg` (they predate the registry); this module
wraps them as registered factories so ``--topology figure1`` (or
``grid``, ``poisson``, ``quasi_udg``, ...) works everywhere the Poisson
default does.
"""

from repro.graph.generators import (
    complete_topology,
    figure1_topology,
    grid_topology,
    line_topology,
    poisson_topology,
    ring_topology,
    square_grid_topology,
    star_topology,
    uniform_topology,
)
from repro.graph.models.registry import register_topology
from repro.graph.quasi_udg import quasi_uniform_topology
from repro.util.errors import ConfigurationError


@register_topology("poisson", geometric=True)
def _poisson(intensity=None, radius=None, count=None, rng=None, side=1.0):
    if intensity is None:
        intensity = count  # experiment default-fill supplies count=
    if intensity is None or radius is None:
        raise ConfigurationError("poisson requires intensity= and radius=")
    return poisson_topology(intensity, radius, rng=rng, side=side)


@register_topology("uniform", geometric=True)
def _uniform(count=None, radius=None, rng=None, side=1.0):
    if count is None or radius is None:
        raise ConfigurationError("uniform requires count= and radius=")
    return uniform_topology(count, radius, rng=rng, side=side)


@register_topology("grid", geometric=True)
def _grid(rows=None, cols=None, radius=None, rng=None, side=1.0):
    if rows is None or cols is None or radius is None:
        raise ConfigurationError("grid requires rows=, cols= and radius=")
    return grid_topology(rows, cols, radius, side=side)


@register_topology("square_grid", geometric=True)
def _square_grid(count=None, radius=None, rng=None, side=1.0):
    if count is None or radius is None:
        raise ConfigurationError("square_grid requires count= and radius=")
    return square_grid_topology(count, radius, side=side)


@register_topology("quasi_udg", geometric=True)
def _quasi_udg(count=None, r_min=None, r_max=None, rng=None, side=1.0):
    if count is None or r_min is None or r_max is None:
        raise ConfigurationError("quasi_udg requires count=, r_min= and r_max=")
    return quasi_uniform_topology(count, r_min, r_max, rng=rng, side=side)


@register_topology("figure1", geometric=True)
def _figure1(rng=None):
    return figure1_topology()


@register_topology("line")
def _line(count=None, rng=None):
    if count is None:
        raise ConfigurationError("line requires count=")
    return line_topology(count)


@register_topology("ring")
def _ring(count=None, rng=None):
    if count is None:
        raise ConfigurationError("ring requires count=")
    return ring_topology(count)


@register_topology("star")
def _star(leaves=None, count=None, rng=None):
    if leaves is None:
        if count is None:
            raise ConfigurationError("star requires leaves= (or count=)")
        leaves = count - 1
    return star_topology(leaves)


@register_topology("complete")
def _complete(count=None, rng=None):
    if count is None:
        raise ConfigurationError("complete requires count=")
    return complete_topology(count)
