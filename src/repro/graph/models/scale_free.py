"""Barabási–Albert scale-free topologies (preferential attachment).

Each arriving node attaches ``m`` edges to existing nodes with
probability proportional to their current degree, via the standard
repeated-endpoints list: sampling a uniform position in the list of all
edge endpoints *is* degree-proportional sampling, with no per-step
probability vector.  The per-node rejection loop only re-draws
collisions, so the build is O(n m) with small constants.

The accumulated edges are canonicalized into the shared lexicographic
pair-array format and built CSR-first (streamed above
``STREAM_NODE_THRESHOLD``).
"""

import numpy as np

from repro.graph.models.pairs import (
    canonical_pairs,
    check_count,
    combinatorial_topology,
)
from repro.graph.models.registry import register_topology
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng


@register_topology("scale_free", degree_params=("m",))
def scale_free_topology(count, m=None, degree=None, rng=None, max_pairs=None):
    """Barabási–Albert graph: ``count`` nodes, ``m`` edges per arrival.

    ``degree`` derives ``m`` as ``round(degree / 2)`` (the mean degree
    of a BA graph approaches ``2m``).  The first ``m`` nodes seed the
    process: node ``m`` attaches to all of them (the standard
    star-seeded construction), later nodes preferentially.
    """
    count = check_count(count, minimum=1)
    if (m is None) == (degree is None):
        raise ConfigurationError(
            "give exactly one of m= (edges per arrival) or degree= "
            "(target mean degree)"
        )
    if m is None:
        m = max(1, int(round(degree / 2.0)))
    m = int(m)
    if count and not 1 <= m < max(count, 2):
        raise ConfigurationError(
            f"m must lie in [1, {count}) for {count} nodes, got {m}"
        )
    rng = as_rng(rng)
    if count <= m:
        return combinatorial_topology(
            np.empty((0, 2), dtype=np.int64), count, max_pairs=max_pairs
        )
    sources = []
    targets = []
    # Flat array of edge endpoints; sampling a uniform slot is
    # degree-proportional node sampling.  Grown geometrically so the
    # append stays amortized O(1) per endpoint.
    endpoints = np.empty(4 * m * max(count - m, 1), dtype=np.int64)
    filled = 0
    attach = list(range(m))
    for node in range(m, count):
        sources.extend(attach)
        targets.extend([node] * len(attach))
        new = np.array(attach + [node] * len(attach), dtype=np.int64)
        if filled + len(new) > len(endpoints):
            endpoints = np.concatenate((endpoints, np.empty_like(endpoints)))
        endpoints[filled : filled + len(new)] = new
        filled += len(new)
        chosen = set()
        while len(chosen) < m:
            draws = endpoints[rng.integers(0, filled, size=m - len(chosen))]
            chosen.update(draws.tolist())
        attach = sorted(chosen)
    pairs = canonical_pairs(
        np.column_stack(
            (
                np.array(sources, dtype=np.int64),
                np.array(targets, dtype=np.int64),
            )
        ),
        count,
    )
    return combinatorial_topology(pairs, count, max_pairs=max_pairs)
