"""Distance-rule topologies: the direct generalization of the unit disk.

The unit-disk model is the step distance rule ``P(link | d) = 1 for
d <= R, else 0``.  Real radios decay smoothly; the distance-rule
generator replaces the step with

* ``decay="exp"``: ``P(d) = exp(-d / scale)`` truncated at ``max_dist``
  (default ``5 * scale``, beyond which links are < 1% likely);
* ``decay="linear"``: ``P(d) = max(0, 1 - d / scale)`` (``max_dist`` is
  ``scale``).

Candidate pairs come from the same vectorized cell-grid scan the UDG
builders use (at range ``max_dist``); the Bernoulli keep decisions are
drawn in pair order, chunk by chunk, so the streamed build above
``STREAM_NODE_THRESHOLD`` is bit-identical to the one-shot array path
(the :mod:`~repro.graph.quasi_udg` argument, verbatim).
"""

import math

import numpy as np

from repro.graph.generators import Topology
from repro.graph.geometry import (
    STREAM_NODE_THRESHOLD,
    chunk_pairs,
    pairs_within_range,
)
from repro.graph.graph import Graph
from repro.graph.models.pairs import check_count
from repro.graph.models.registry import register_topology
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng

DECAYS = ("exp", "linear")

#: Exponential truncation: candidates beyond this many decay lengths
#: are never linked (P < exp(-5) < 0.7%).
EXP_CUTOFF_SCALES = 5.0


def _scale_for_degree(decay, degree, intensity):
    """The decay length giving expected mean degree ``degree``.

    For a homogeneous process of intensity ``lam`` the expected degree
    is ``lam * integral P(d) 2 pi d dd``: ``2 pi lam scale^2`` for the
    exponential rule and ``pi lam scale^2 / 3`` for the linear one
    (border effects shave a little off, exactly as they do for the
    unit-disk radius).
    """
    if degree <= 0:
        raise ConfigurationError(f"degree must be positive, got {degree}")
    if decay == "exp":
        return math.sqrt(degree / (2.0 * math.pi * intensity))
    return math.sqrt(3.0 * degree / (math.pi * intensity))


def _keep_candidates(positions, candidates, decay, scale, rng):
    """Filter one candidate chunk by the distance rule, in pair order."""
    delta = positions[candidates[:, 0]] - positions[candidates[:, 1]]
    distance = np.hypot(delta[:, 0], delta[:, 1])
    if decay == "exp":
        probability = np.exp(-distance / scale)
    else:
        probability = np.maximum(0.0, 1.0 - distance / scale)
    return candidates[rng.random(len(candidates)) < probability]


@register_topology("distance_rule", geometric=True, degree_params=("scale",))
def distance_rule_topology(
    count,
    scale=None,
    decay="exp",
    degree=None,
    rng=None,
    side=1.0,
    max_pairs=None,
):
    """``count`` uniform nodes linked by a decaying distance rule.

    Exactly one of ``scale`` (the decay length) and ``degree`` (the
    target mean degree, from which the scale is derived) must be given.
    Returns a geometric :class:`Topology` whose ``radius`` is the
    truncation range ``max_dist`` (the outer radius, as for quasi-UDG).
    """
    count = check_count(count, minimum=1)
    if decay not in DECAYS:
        raise ConfigurationError(f"unknown decay {decay!r}; expected one of {DECAYS}")
    if (scale is None) == (degree is None):
        raise ConfigurationError(
            "give exactly one of scale= (decay length) or degree= "
            "(target mean degree)"
        )
    rng = as_rng(rng)
    if scale is None:
        scale = _scale_for_degree(decay, degree, count / (side * side))
    scale = float(scale)
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    max_dist = scale if decay == "linear" else EXP_CUTOFF_SCALES * scale
    positions = rng.uniform(0.0, side, size=(count, 2))
    if max_pairs is None and count < STREAM_NODE_THRESHOLD:
        candidates = pairs_within_range(positions, max_dist)
        if len(candidates):
            candidates = _keep_candidates(positions, candidates, decay, scale, rng)
        graph = Graph.from_pair_array(candidates, count)
    else:
        kept = (
            _keep_candidates(positions, chunk, decay, scale, rng)
            for chunk in chunk_pairs(positions, max_dist, max_pairs=max_pairs)
        )
        graph = Graph.from_pair_chunks(kept, count)
    names = graph.nodes
    positions_by_id = {
        names[i]: (row[0], row[1]) for i, row in enumerate(positions.tolist())
    }
    return Topology(graph, positions=positions_by_id, radius=max_dist)
