"""Delta-based maintenance of unit-disk topologies across mobility windows.

The Section 5 experiments are *dynamic*: nodes move every 2-second window
(or appear/disappear between churn epochs) and the clustering is
re-evaluated each time.  Rebuilding everything from scratch per window --
the full cell-grid pair join, a fresh ``Graph``, a global triangle recount
-- costs O(n + m) regardless of how little actually changed.  This module
keeps the per-window cost proportional to the *delta*:

* :class:`DynamicUnitDisk` keeps the geometry cell grid alive across
  windows as a skin-padded **candidate list** (the Verlet-list idea from
  molecular dynamics): one join at ``radius + skin`` yields every pair
  that could possibly become an edge while no node has drifted more than
  ``skin / 2`` from its join-time anchor position.  A position update then
  re-evaluates only the candidate pairs incident to nodes that actually
  moved -- one vectorized distance pass -- and emits the **exact** edge
  delta.  When the drift bound trips, or nodes join/depart, the grid is
  re-joined from the live positions and the delta falls out of a sorted
  key set-difference instead.  Either way the resulting edge set is
  bit-identical to a scratch ``pairs_within_range(positions, radius)``
  (both classify with the same ``dx*dx + dy*dy <= radius*radius``
  arithmetic; the candidate list is a superset by the triangle
  inequality, enforced with a small safety margin on the drift bound).

* :class:`TriangleCounter` maintains the per-node integer triangle counts
  under edge insertions/removals (one ``common_neighbors`` intersection
  per changed edge, riding the observer hooks of
  :meth:`~repro.graph.graph.Graph.apply_edge_delta`), so Definition-1
  densities can be refreshed for exactly the nodes whose neighborhood
  changed -- the Fractions are built from the same machine integers as
  :func:`~repro.clustering.density.all_densities`, hence bit-identical,
  without a global recount.  For bulk deltas where per-edge Python
  updates would cost more than the vectorized kernel, it falls back to a
  CSR recount and reports the changed nodes by array comparison.

* :class:`DynamicTopology` ties the two to a live
  :class:`~repro.graph.graph.Graph`: it applies each delta in bulk,
  installs a cheap CSR snapshot rebuilt from the maintained edge arrays
  (an O(m) argsort instead of the O(m) Python dict translation), keeps
  the exact density map current, and wraps everything in a fresh
  :class:`~repro.graph.generators.Topology` per window.

The scratch pipeline (``topology_at`` -> ``all_densities``) survives
untouched as the reference oracle; the property suite drives randomized
move/join/leave sequences through both and asserts equality.
"""

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.graph.generators import Topology
from repro.graph.geometry import pairs_within_range
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError, TopologyError

# Identifiers are packed two-per-int64 key for the set-difference delta
# path, so they must fit in 31 bits.
_MAX_ID = 2 ** 31

# Safety margin on the Verlet drift bound: the triangle-inequality
# argument is exact in real arithmetic; this absorbs the ~1 ulp float
# noise of the squared-distance evaluations.
_DRIFT_GUARD = 1e-12

# Per-edge Python triangle updates beat the vectorized CSR recount only
# while the delta is a small fraction of the edge set; past this ratio
# the counter recounts instead (same integers either way).
_RECOUNT_FRACTION = 8

# Re-anchoring drifted nodes cell-by-cell beats a full grid re-join only
# while few nodes drifted; past this fraction of the population the whole
# grid is re-joined instead.
_REANCHOR_FRACTION = 8

_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)
_EMPTY_PAIRS.flags.writeable = False


@dataclass(frozen=True)
class EdgeDelta:
    """Exact edge difference between two topology snapshots.

    ``added`` / ``removed`` are ``(k, 2)`` int64 arrays of node
    *identifiers* with each row canonical (``lo < hi``) and rows in
    lexicographic order, so a delta is a deterministic function of the
    two snapshots alone.
    """

    added: np.ndarray
    removed: np.ndarray

    def __bool__(self):
        return bool(len(self.added) or len(self.removed))

    @property
    def size(self):
        """Total number of changed edges."""
        return len(self.added) + len(self.removed)

    @classmethod
    def empty(cls):
        return cls(added=_EMPTY_PAIRS, removed=_EMPTY_PAIRS)


def _canonical_id_pairs(ids, index_pairs):
    """Index pairs -> canonical, lexicographically sorted identifier pairs."""
    if not len(index_pairs):
        return _EMPTY_PAIRS
    a = ids[index_pairs[:, 0]]
    b = ids[index_pairs[:, 1]]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    order = np.lexsort((hi, lo))
    return np.column_stack((lo[order], hi[order]))


class DynamicUnitDisk:
    """Unit-disk edge maintenance over moving points with exact deltas.

    ``positions`` is the ``(n, 2)`` float array of the initial deployment;
    ``ids`` maps point index -> integer node identifier (default: the
    index itself).  ``skin`` is the candidate-list padding in distance
    units (default ``radius / 2``): larger skins survive more windows
    between grid re-joins but evaluate more candidate pairs per window.
    """

    def __init__(self, positions, radius, ids=None, skin=None):
        positions = np.array(positions, dtype=float).reshape(-1, 2)
        if radius is None:
            raise ConfigurationError(
                "dynamic unit-disk maintenance needs a transmission radius; "
                "this topology has radius=None (a combinatorial generator "
                "or a file without one) -- mobility and dynamics only apply "
                "to geometric topologies"
            )
        if radius <= 0:
            raise ConfigurationError(f"radius must be positive, got {radius}")
        if skin is None:
            skin = 0.5 * radius
        if skin < 0:
            raise ConfigurationError(f"skin must be non-negative, got {skin}")
        n = len(positions)
        if ids is None:
            ids_list = list(range(n))
        else:
            ids_list = [int(x) for x in ids]
            if len(ids_list) != n:
                raise ConfigurationError(
                    f"ids has {len(ids_list)} entries for {n} positions")
        self._check_ids(ids_list)
        self.radius = float(radius)
        self.skin = float(skin)
        self._r2 = self.radius * self.radius
        self._drift2 = max(0.5 * self.skin - _DRIFT_GUARD, 0.0) ** 2
        self._ids_list = ids_list
        self._ids = np.array(ids_list, dtype=np.int64)
        self._pos = positions
        self._pos_dict = None
        self._rejoin()

    @staticmethod
    def _check_ids(ids_list):
        if len(set(ids_list)) != len(ids_list):
            raise ConfigurationError("node identifiers must be unique")
        for x in ids_list:
            if not 0 <= x < _MAX_ID:
                raise ConfigurationError(
                    f"identifiers must lie in [0, 2**31), got {x}")

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def __len__(self):
        return len(self._ids_list)

    @property
    def ids(self):
        """Node identifiers in index order (the graph's insertion order)."""
        return list(self._ids_list)

    def edge_count(self):
        """Number of current unit-disk edges."""
        return int(self._mask.sum())

    def edge_index_pairs(self):
        """Current edges as ``(m, 2)`` index pairs with ``i < j``."""
        return self._cand[self._mask]

    def snapshot(self):
        """A fresh CSR snapshot of the current edge set.

        Built straight from the maintained candidate arrays with
        :meth:`CSRAdjacency.from_pairs` -- one argsort, no per-edge
        Python -- and identical to ``Graph.to_csr()`` over the same
        adjacency (same ids order, rows sorted ascending).
        """
        pairs = self.edge_index_pairs()
        return CSRAdjacency.from_pairs(pairs[:, 0], pairs[:, 1],
                                       self._ids_list)

    def positions_by_id(self):
        """``dict[id, (x, y)]`` of the current positions.

        The dict is maintained incrementally across :meth:`move` calls
        (only movers' entries are rewritten), so per-window cost tracks
        the number of movers, not the population.  Callers must treat
        the returned dict as read-only; ``Topology`` copies it.
        """
        if self._pos_dict is None:
            self._pos_dict = {node: (float(x), float(y))
                              for node, (x, y) in zip(self._ids_list,
                                                      self._pos)}
        return self._pos_dict

    # ------------------------------------------------------------------
    # candidate list
    # ------------------------------------------------------------------

    def _rejoin(self):
        """Re-join the cell grid at ``radius + skin`` from live positions."""
        self._anchor = self._pos.copy()
        self._grid = None
        if len(self._pos) >= 2:
            self._cand = pairs_within_range(self._pos,
                                            self.radius + self.skin)
        else:
            self._cand = _EMPTY_PAIRS
        if len(self._cand):
            diff = self._pos[self._cand[:, 0]] - self._pos[self._cand[:, 1]]
            self._mask = np.einsum("ij,ij->i", diff, diff) <= self._r2
        else:
            self._mask = np.zeros(0, dtype=bool)

    def _ensure_grid(self):
        """Cell buckets over the *anchor* positions, built on first use.

        The candidate invariant lives in anchor space: a non-candidate
        pair has anchor distance > ``radius + skin``, so while every node
        sits within ``skin/2`` of its own anchor no non-candidate pair
        can come within ``radius``.  Re-anchoring a node therefore means
        re-joining it against the other nodes' *anchors* -- the 9 cells
        around its new anchor cell -- not their live positions.
        """
        if self._grid is None:
            cell_size = self.radius + self.skin
            cells = np.floor(self._anchor / cell_size).astype(np.int64)
            grid = {}
            for index, (cx, cy) in enumerate(cells.tolist()):
                grid.setdefault((cx, cy), []).append(index)
            self._grid = grid
        return self._grid

    def _reanchor(self, drifted):
        """Re-anchor ``drifted`` rows against the live grid, in place.

        Drops every candidate pair incident to a drifted node, moves the
        nodes to their new anchor cells, and re-joins each against the 9
        surrounding cells.  Returns ``(kept, old_pairs, new_pairs,
        new_mask)``: the keep-mask over the previous candidate rows plus
        the dropped/re-discovered D-incident pairs with the fresh edge
        classification of the latter.
        """
        grid = self._ensure_grid()
        cell_size = self.radius + self.skin
        old_cells = np.floor(self._anchor[drifted] / cell_size).astype(
            np.int64)
        self._anchor[drifted] = self._pos[drifted]
        new_cells = np.floor(self._anchor[drifted] / cell_size).astype(
            np.int64)
        for index, old, new in zip(drifted.tolist(), old_cells.tolist(),
                                   new_cells.tolist()):
            old = tuple(old)
            new = tuple(new)
            if old != new:
                grid[old].remove(index)
                if not grid[old]:
                    del grid[old]
                grid.setdefault(new, []).append(index)
        in_drifted = np.zeros(len(self._pos), dtype=bool)
        in_drifted[drifted] = True
        kept = ~(in_drifted[self._cand[:, 0]] | in_drifted[self._cand[:, 1]]) \
            if len(self._cand) else np.zeros(0, dtype=bool)
        old_pairs = self._cand[~kept] if len(self._cand) else _EMPTY_PAIRS
        rc2 = cell_size * cell_size
        anchor = self._anchor
        chunks = []
        for index, (cx, cy) in zip(drifted.tolist(), new_cells.tolist()):
            partners = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    partners.extend(grid.get((cx + dx, cy + dy), ()))
            partners = np.array(partners, dtype=np.int64)
            partners = partners[partners != index]
            if not partners.size:
                continue
            diff = anchor[partners] - anchor[index]
            close = np.einsum("ij,ij->i", diff, diff) <= rc2
            partners = partners[close]
            if partners.size:
                chunks.append(np.column_stack(
                    (np.minimum(partners, index),
                     np.maximum(partners, index))))
        if chunks:
            pairs = np.concatenate(chunks)
            # Two re-anchored endpoints discover their pair twice.
            n = len(self._pos)
            keys = np.unique(pairs[:, 0] * n + pairs[:, 1])
            new_pairs = np.column_stack((keys // n, keys % n))
            diff = self._pos[new_pairs[:, 0]] - self._pos[new_pairs[:, 1]]
            new_mask = np.einsum("ij,ij->i", diff, diff) <= self._r2
        else:
            new_pairs = _EMPTY_PAIRS
            new_mask = np.zeros(0, dtype=bool)
        return kept, old_pairs, new_pairs, new_mask

    def _edge_keys(self):
        """Sorted int64 keys of the current edges, in identifier space."""
        pairs = self.edge_index_pairs()
        if not len(pairs):
            return np.empty(0, dtype=np.int64)
        a = self._ids[pairs[:, 0]]
        b = self._ids[pairs[:, 1]]
        keys = (np.minimum(a, b) << 32) | np.maximum(a, b)
        keys.sort()
        return keys

    @staticmethod
    def _diff_keys(old_keys, new_keys):
        """Delta between two sorted key sets, decoded to identifier pairs."""
        def decode(keys):
            if not len(keys):
                return _EMPTY_PAIRS
            return np.column_stack((keys >> 32, keys & 0xFFFFFFFF))
        return EdgeDelta(added=decode(np.setdiff1d(new_keys, old_keys,
                                                   assume_unique=True)),
                         removed=decode(np.setdiff1d(old_keys, new_keys,
                                                     assume_unique=True)))

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def move(self, positions):
        """Adopt new positions for the *same* node set; return the delta.

        ``positions`` is the full ``(n, 2)`` array aligned with
        :attr:`ids` (the shape every mobility model maintains).  Three
        regimes, cheapest first: while every node sits within ``skin/2``
        of its anchor, only candidate pairs incident to actual movers are
        re-evaluated; when a few nodes drifted past the bound they are
        re-anchored cell-by-cell against the live grid; when most of the
        population drifted, the whole grid is re-joined.
        """
        positions = np.asarray(positions, dtype=float)
        if positions.shape != self._pos.shape:
            raise ConfigurationError(
                "move requires positions for the unchanged node set "
                f"(expected shape {self._pos.shape}, got {positions.shape}); "
                "use apply_churn for arrivals/departures")
        moved = np.flatnonzero((positions != self._pos).any(axis=1))
        if not moved.size:
            return EdgeDelta.empty()
        self._pos = positions.copy()
        if self._pos_dict is not None:
            for i in moved:
                self._pos_dict[self._ids_list[i]] = (float(positions[i, 0]),
                                                     float(positions[i, 1]))
        disp2 = ((self._pos - self._anchor) ** 2).sum(axis=1)
        drifted = np.flatnonzero(disp2 >= self._drift2)
        if not drifted.size:
            added, removed = self._update_mask(self._cand, self._mask, moved)
            return EdgeDelta(added=_canonical_id_pairs(self._ids, added),
                             removed=_canonical_id_pairs(self._ids, removed))
        n = len(self._pos)
        if drifted.size * _REANCHOR_FRACTION > n or n < 2:
            old_keys = self._edge_keys()
            self._rejoin()
            return self._diff_keys(old_keys, self._edge_keys())
        kept, old_pairs, new_pairs, new_mask = self._reanchor(drifted)
        old_edges = old_pairs[self._mask[~kept]] if len(self._mask) \
            else _EMPTY_PAIRS
        cand = self._cand[kept]
        mask = self._mask[kept]
        added_kept, removed_kept = self._update_mask(cand, mask, moved)
        self._cand = np.concatenate((cand, new_pairs))
        self._mask = np.concatenate((mask, new_mask))
        # Delta among the re-anchored pairs: old vs new edge key sets.
        old_keys = self._index_keys(old_edges)
        new_keys = self._index_keys(new_pairs[new_mask])
        added_re = self._decode_index_keys(
            np.setdiff1d(new_keys, old_keys, assume_unique=True))
        removed_re = self._decode_index_keys(
            np.setdiff1d(old_keys, new_keys, assume_unique=True))
        return EdgeDelta(
            added=_canonical_id_pairs(
                self._ids, np.concatenate((added_kept, added_re))),
            removed=_canonical_id_pairs(
                self._ids, np.concatenate((removed_kept, removed_re))))

    def _update_mask(self, cand, mask, moved):
        """Re-evaluate ``cand`` rows incident to ``moved`` in place.

        Returns ``(added, removed)`` index-pair arrays of rows whose edge
        classification flipped; ``mask`` is updated in place.
        """
        if not len(cand):
            return _EMPTY_PAIRS, _EMPTY_PAIRS
        moved_mask = np.zeros(len(self._pos), dtype=bool)
        moved_mask[moved] = True
        touched = np.flatnonzero(moved_mask[cand[:, 0]]
                                 | moved_mask[cand[:, 1]])
        if not touched.size:
            return _EMPTY_PAIRS, _EMPTY_PAIRS
        diff = self._pos[cand[touched, 0]] - self._pos[cand[touched, 1]]
        inside = np.einsum("ij,ij->i", diff, diff) <= self._r2
        before = mask[touched]
        mask[touched] = inside
        return (cand[touched[inside & ~before]],
                cand[touched[before & ~inside]])

    def _index_keys(self, index_pairs):
        """Sorted scalar keys of canonical (``i < j``) index pairs."""
        if not len(index_pairs):
            return np.empty(0, dtype=np.int64)
        n = len(self._pos)
        keys = index_pairs[:, 0] * n + index_pairs[:, 1]
        keys.sort()
        return keys

    def _decode_index_keys(self, keys):
        if not len(keys):
            return _EMPTY_PAIRS
        n = len(self._pos)
        return np.column_stack((keys // n, keys % n))

    def apply_churn(self, departed=(), arrivals=()):
        """Remove ``departed`` identifiers, add ``arrivals``; return the delta.

        ``arrivals`` is a sequence of ``(id, (x, y))`` pairs.  Surviving
        nodes keep their index order and arrivals append after them, which
        is exactly the insertion order a maintained :class:`Graph`
        produces -- and, for monotonically increasing identifiers (the
        :class:`~repro.mobility.churn.ChurnProcess` discipline), also the
        sorted order the scratch path uses.  Churn re-joins the grid, so
        the delta covers every edge incident to a departure or arrival.
        """
        departed = [int(x) for x in departed]
        arrivals = [(int(node), position) for node, position in arrivals]
        if not departed and not arrivals:
            return EdgeDelta.empty()
        index_of = {node: i for i, node in enumerate(self._ids_list)}
        keep = np.ones(len(self._ids_list), dtype=bool)
        for node in departed:
            if node not in index_of:
                raise ConfigurationError(f"departed node {node!r} unknown")
            keep[index_of[node]] = False
        new_ids = [node for node, kept in zip(self._ids_list, keep) if kept]
        for node, _position in arrivals:
            if node in index_of:
                raise ConfigurationError(f"arrival {node!r} already present")
            new_ids.append(node)
        self._check_ids(new_ids)
        arrival_pos = np.array([position for _node, position in arrivals],
                               dtype=float).reshape(-1, 2)
        old_keys = self._edge_keys()
        self._ids_list = new_ids
        self._ids = np.array(new_ids, dtype=np.int64)
        self._pos = np.concatenate((self._pos[keep], arrival_pos))
        self._pos_dict = None
        self._rejoin()
        return self._diff_keys(old_keys, self._edge_keys())

    def __repr__(self):
        return (f"DynamicUnitDisk(n={len(self)}, m={self.edge_count()}, "
                f"radius={self.radius}, skin={self.skin})")


class TriangleCounter:
    """Exact per-node triangle counts maintained under edge deltas.

    Seeded from the graph's CSR kernel, then updated one
    ``common_neighbors`` intersection per changed edge via the observer
    hooks of :meth:`Graph.apply_edge_delta` (``edge_removed`` fires while
    the edge is still present, ``edge_added`` once it is in place, so the
    sequential counts match a scratch recount after any batch).  Nodes
    whose count changed accumulate in a dirty set drained with
    :meth:`pop_dirty` -- exactly the nodes whose Definition-1 density
    needs a refresh, together with the delta endpoints themselves.
    """

    def __init__(self, graph):
        csr = graph.to_csr()
        self.counts = dict(zip(csr.ids, csr.triangle_counts().tolist()))
        self._dirty = set()

    def edge_added(self, graph, u, v):
        common = graph.common_neighbors(u, v)
        if common:
            counts = self.counts
            gained = len(common)
            counts[u] += gained
            counts[v] += gained
            for w in common:
                counts[w] += 1
            self._dirty.add(u)
            self._dirty.add(v)
            self._dirty.update(common)

    def edge_removed(self, graph, u, v):
        common = graph.common_neighbors(u, v)
        if common:
            counts = self.counts
            lost = len(common)
            counts[u] -= lost
            counts[v] -= lost
            for w in common:
                counts[w] -= 1
            self._dirty.add(u)
            self._dirty.add(v)
            self._dirty.update(common)

    def node_added(self, node):
        if node in self.counts:
            raise TopologyError(f"node {node!r} already counted")
        self.counts[node] = 0

    def node_removed(self, node):
        del self.counts[node]
        self._dirty.discard(node)

    def recount(self, graph):
        """Recount via the CSR kernel; dirty = nodes whose count changed.

        Used for bulk deltas where per-edge updates would cost more than
        the vectorized kernel; the integers are identical either way.
        """
        csr = graph.to_csr()
        fresh = dict(zip(csr.ids, csr.triangle_counts().tolist()))
        old = self.counts
        self._dirty.update(node for node, count in fresh.items()
                           if old.get(node) != count)
        self.counts = fresh

    def pop_dirty(self):
        """Return and clear the set of nodes whose count changed."""
        dirty = self._dirty
        self._dirty = set()
        return dirty


@dataclass(frozen=True)
class WindowUpdate:
    """Everything one window of dynamics produced.

    ``topology`` wraps the *live* maintained graph (mutated again by the
    next window -- read metrics within the window, as the experiment
    loops do); ``delta`` is the exact edge difference from the previous
    window; ``density_changed`` the identifiers whose exact density value
    may have changed (conservative superset).  ``densities`` is the live
    exact density map of the producing :class:`DynamicTopology` (again:
    read within the window), or ``None`` when density tracking is off --
    ``density_changed`` is then ``None`` as well.
    """

    topology: Topology
    delta: EdgeDelta
    density_changed: frozenset
    densities: dict = None


class DynamicTopology:
    """A unit-disk :class:`Topology` kept current by exact edge deltas.

    Owns the :class:`DynamicUnitDisk`, a live :class:`Graph` (the same
    object across all windows, so simulators and caches keyed on it keep
    working), the :class:`TriangleCounter`, and the exact density map.
    Every update leaves the trio in the state a scratch rebuild
    (``topology_at`` + ``all_densities(exact=True)``) would produce,
    bit-for-bit; only the cost differs.
    """

    def __init__(self, positions, radius, ids=None, skin=None,
                 recount_fraction=_RECOUNT_FRACTION, track_densities=True):
        self._disk = DynamicUnitDisk(positions, radius, ids=ids, skin=skin)
        self.radius = float(radius)
        self._recount_fraction = int(recount_fraction)
        self.graph = Graph.from_pair_array(self._disk.edge_index_pairs(),
                                           self._disk.ids)
        if track_densities:
            self.triangles = TriangleCounter(self.graph)
            # Deferred import: repro.clustering reaches back into
            # repro.graph at package level, so binding at call time
            # avoids the cycle.
            from repro.clustering.density import all_densities
            self.densities = all_densities(self.graph, exact=True)
        else:
            # Consumers that never read densities (the baseline engines)
            # skip the triangle counter and the Fraction refreshes; the
            # updates then carry ``densities=None``.
            self.triangles = None
            self.densities = None
        self.topology = self._wrap()

    def _wrap(self):
        return Topology(self.graph, positions=self._disk.positions_by_id(),
                        radius=self.radius)

    def __len__(self):
        return len(self.graph)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def move(self, positions):
        """One mobility window: adopt new positions, return the update."""
        delta = self._disk.move(positions)
        if self.triangles is None:
            if delta:
                self.graph.apply_edge_delta(added=delta.added,
                                            removed=delta.removed)
                self.graph.adopt_csr(self._disk.snapshot())
            dirty = None
        elif delta:
            dirty = self._apply_delta(delta)
        else:
            dirty = frozenset()
        self.topology = self._wrap()
        return WindowUpdate(topology=self.topology, delta=delta,
                            density_changed=dirty,
                            densities=self.densities)

    def apply_churn(self, departed=(), arrivals=()):
        """One churn epoch: departures vanish with their edges, arrivals
        boot fresh; returns the update."""
        departed = [int(x) for x in departed]
        arrivals = [(int(node), position) for node, position in arrivals]
        delta = self._disk.apply_churn(departed, arrivals)
        graph = self.graph
        counter = self.triangles
        if counter is None:
            graph.apply_edge_delta(removed=delta.removed)
            for node in departed:
                graph.remove_node(node)
            for node, _position in arrivals:
                graph.add_node(node)
            graph.apply_edge_delta(added=delta.added)
            graph.adopt_csr(self._disk.snapshot())
            self.topology = self._wrap()
            return WindowUpdate(topology=self.topology, delta=delta,
                                density_changed=None, densities=None)
        # A heavy epoch (most of the population replaced) recounts on the
        # fresh snapshot instead of paying per-edge intersections, same
        # as the bulk branch of _apply_delta.
        recount = (delta.size * self._recount_fraction
                   >= self._disk.edge_count())
        observer = None if recount else counter
        # Removals while every endpoint still exists, then the node churn,
        # then additions over the final node set.
        graph.apply_edge_delta(removed=delta.removed, observer=observer)
        for node in departed:
            graph.remove_node(node)
            if not recount:
                counter.node_removed(node)
            del self.densities[node]
        for node, _position in arrivals:
            graph.add_node(node)
            if not recount:
                counter.node_added(node)
        graph.apply_edge_delta(added=delta.added, observer=observer)
        self.graph.adopt_csr(self._disk.snapshot())
        if recount:
            for node in departed:
                counter.counts.pop(node, None)
            counter.recount(graph)
        dirty = counter.pop_dirty()
        dirty.update(int(x) for x in delta.added.flat)
        dirty.update(int(x) for x in delta.removed.flat)
        dirty.difference_update(departed)
        dirty.update(node for node, _position in arrivals)
        self._refresh_densities(dirty)
        self.topology = self._wrap()
        return WindowUpdate(topology=self.topology, delta=delta,
                            density_changed=frozenset(dirty),
                            densities=self.densities)

    def _apply_delta(self, delta):
        graph = self.graph
        counter = self.triangles
        if delta.size * self._recount_fraction >= self._disk.edge_count():
            # Bulk delta: skip per-edge bookkeeping, recount on the fresh
            # snapshot instead (same integers, vectorized).
            graph.apply_edge_delta(added=delta.added, removed=delta.removed)
            graph.adopt_csr(self._disk.snapshot())
            counter.recount(graph)
        else:
            graph.apply_edge_delta(added=delta.added, removed=delta.removed,
                                   observer=counter)
            graph.adopt_csr(self._disk.snapshot())
        dirty = counter.pop_dirty()
        dirty.update(int(x) for x in delta.added.flat)
        dirty.update(int(x) for x in delta.removed.flat)
        self._refresh_densities(dirty)
        return frozenset(dirty)

    def _refresh_densities(self, dirty):
        graph = self.graph
        counts = self.triangles.counts
        densities = self.densities
        for node in dirty:
            deg = graph.degree(node)
            densities[node] = (Fraction(deg + counts[node], deg) if deg
                               else Fraction(0))

    def __repr__(self):
        return (f"DynamicTopology(n={len(self.graph)}, "
                f"m={self.graph.edge_count()}, radius={self.radius})")
