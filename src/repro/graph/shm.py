"""Zero-copy CSR snapshots in shared memory for pool workers.

Fanning one big graph out to a process pool used to pickle the whole
adjacency into every task payload.  This module puts the frozen
:class:`~repro.graph.csr.CSRAdjacency` arrays into one
``multiprocessing.shared_memory`` segment instead, behind a tiny
picklable :class:`SharedCSR` handle: workers attach to the publisher's
pages and build zero-copy NumPy views, so a 10^6-node topology costs a
few hundred bytes per task on the wire no matter how many tasks ride it.

The moving parts:

* :func:`share_graphs` -- a context manager that activates a
  :class:`ShareSession` for the enclosing dispatch.  While active,
  ``Graph.__getstate__`` consults it and big graphs (>=``min_bytes`` of
  CSR arrays, default 2 MiB) pickle as handles; each distinct graph
  object is published exactly once per session.
* :meth:`SharedCSR.attach` -- worker-side reconstruction: attach by
  name, wrap the buffer in frozen ``int32``/``int64`` views (including
  the memoized triangle counts when the publisher had them), and keep
  the mapping alive for the process in a module registry.
* lifecycle -- the session unlinks its segments on exit (attached
  workers keep valid mappings; the kernel reclaims the pages when the
  last one detaches), an ``atexit`` hook unlinks anything the process
  still owns, and :func:`clean_orphans` sweeps ``/dev/shm`` for segments
  whose publisher pid is dead (``repro doctor --clean-shm``) -- the one
  hole left by SIGKILL, which runs no ``atexit``.

Only the *pool* backend activates a session.  The distributed (TCP)
backend's wire protocol keeps pickling graphs: its workers live on other
hosts where a local shared-memory name means nothing.  That seam is
deliberate -- cross-host zero-copy would need a real shared filesystem
or RDMA story, not a module-level registry.
"""

import atexit
import os
import pickle
import secrets
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.graph.csr import CSRAdjacency

_PREFIX = "repro-csr-"

# Segments this process published: name -> (SharedMemory, owner pid).
# The pid guards the atexit sweep against forked children inheriting the
# registry (the pool is created *before* any session publishes, so this
# is belt and braces).
_OWNED = {}

# Segments this process attached to: name -> SharedMemory.  Entries pin
# the mapping for the life of the process so the NumPy views handed to
# attached ``CSRAdjacency`` snapshots stay valid.
_ATTACHED = {}

# Unlinked segments whose mappings must stay alive: in-process attaches
# hold zero-copy views into them, so the pages are only reclaimed at
# process exit (their names are already gone from the filesystem).
_RETIRED = []

_SESSION = None

# Below this many bytes of CSR arrays a graph just pickles: attaching
# has fixed syscall overhead, so small graphs are cheaper on the plain
# path (and keep their eager dict adjacency, insertion order included).
DEFAULT_MIN_BYTES = 1 << 21


class _Segment(shared_memory.SharedMemory):
    """``SharedMemory`` whose close tolerates exported buffer views.

    ``SharedMemory.__del__`` closes the mapping and raises
    ``BufferError`` when NumPy views into it are still alive -- which is
    the *normal* state for attached CSR snapshots at interpreter
    shutdown.  Swallowing that error here keeps worker stderr clean; the
    kernel unmaps everything at process exit regardless.
    """

    def close(self):
        try:
            super().close()
        except BufferError:
            pass


def _align(offset):
    return (offset + 7) & ~7


def _layout(nodes, nnz, has_triangles, ids_size):
    """Byte offsets of the segment sections, each 8-byte aligned.

    ``[int32 indptr | int32 indices | int64 triangles? | pickled ids?]``
    """
    indices_at = _align((nodes + 1) * 4)
    triangles_at = _align(indices_at + nnz * 4)
    ids_at = _align(triangles_at + (nodes * 8 if has_triangles else 0))
    return indices_at, triangles_at, ids_at, ids_at + ids_size


def _attach_segment(name):
    try:
        return _Segment(name=name, track=False)
    except TypeError:
        # Python < 3.13: attaching registers the segment with the
        # resource tracker as if this process owned it, so worker exit
        # would unlink pages the publisher still serves.  Reverse the
        # registration by hand.
        segment = _Segment(name=name)
        try:
            resource_tracker.unregister(f"/{name}", "shared_memory")
        except Exception:
            pass
        return segment


class SharedCSR:
    """Picklable handle to a ``CSRAdjacency`` living in shared memory.

    A handle is a name plus the shape metadata needed to rebuild the
    array views without touching the segment; it pickles to a few
    hundred bytes regardless of graph size.
    """

    __slots__ = ("name", "nodes", "nnz", "has_triangles", "ids_size")

    def __init__(self, name, nodes, nnz, has_triangles, ids_size):
        self.name = name
        self.nodes = nodes
        self.nnz = nnz
        self.has_triangles = has_triangles
        self.ids_size = ids_size

    def __getstate__(self):
        return (self.name, self.nodes, self.nnz, self.has_triangles, self.ids_size)

    def __setstate__(self, state):
        self.name, self.nodes, self.nnz, self.has_triangles, self.ids_size = state

    def __repr__(self):
        return f"SharedCSR(name={self.name!r}, n={self.nodes}, nnz={self.nnz})"

    @classmethod
    def publish(cls, csr):
        """Copy ``csr``'s arrays into a fresh segment; return the handle.

        Identity ids (``0..n-1``) are encoded as a flag rather than
        stored; memoized triangle counts ride along when present, so
        attached workers inherit them without recounting.
        """
        n = len(csr.ids)
        nnz = int(csr.indptr[-1])
        triangles = csr._triangles
        identity = csr.ids == tuple(range(n))
        ids_bytes = b""
        if not identity:
            ids_bytes = pickle.dumps(csr.ids, protocol=pickle.HIGHEST_PROTOCOL)
        indices_at, triangles_at, ids_at, total = _layout(
            n, nnz, triangles is not None, len(ids_bytes)
        )
        segment = None
        for _ in range(16):
            name = f"{_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
            try:
                segment = _Segment(name=name, create=True, size=max(total, 1))
                break
            except FileExistsError:
                continue
        if segment is None:
            raise RuntimeError("could not allocate a shared-memory segment name")
        buf = segment.buf
        np.frombuffer(buf, dtype=np.int32, count=n + 1)[:] = csr.indptr
        if nnz:
            np.frombuffer(buf, dtype=np.int32, count=nnz, offset=indices_at)[:] = (
                csr.indices
            )
        if triangles is not None:
            np.frombuffer(buf, dtype=np.int64, count=n, offset=triangles_at)[:] = (
                triangles
            )
        if ids_bytes:
            buf[ids_at : ids_at + len(ids_bytes)] = ids_bytes
        _OWNED[name] = (segment, os.getpid())
        return cls(name, n, nnz, triangles is not None, len(ids_bytes))

    def attach(self):
        """Rebuild the ``CSRAdjacency`` as zero-copy views of the segment.

        The mapping is registered process-wide so repeated attaches of
        the same segment (one per task) reuse it, and so the views
        outlive the handle.
        """
        entry = _OWNED.get(self.name)
        segment = entry[0] if entry is not None else _ATTACHED.get(self.name)
        if segment is None:
            segment = _attach_segment(self.name)
            _ATTACHED[self.name] = segment
        indices_at, triangles_at, ids_at, _total = _layout(
            self.nodes, self.nnz, self.has_triangles, self.ids_size
        )
        buf = segment.buf
        indptr = np.frombuffer(buf, dtype=np.int32, count=self.nodes + 1)
        indices = np.frombuffer(
            buf, dtype=np.int32, count=self.nnz, offset=indices_at
        )
        if self.ids_size:
            ids = pickle.loads(bytes(buf[ids_at : ids_at + self.ids_size]))
        else:
            ids = range(self.nodes)
        csr = CSRAdjacency(indptr, indices, ids)
        if self.has_triangles:
            triangles = np.frombuffer(
                buf, dtype=np.int64, count=self.nodes, offset=triangles_at
            )
            triangles.flags.writeable = False
            object.__setattr__(csr, "_triangles", triangles)
        return csr

    def unlink(self):
        unlink(self.name)


def unlink(name):
    """Unlink a segment this process published (idempotent).

    The name disappears from the filesystem immediately; the mapping is
    *retired*, not closed, because in-process attaches may still hold
    zero-copy views into it.  Pages are reclaimed when the last mapping
    (this process's included) goes away.
    """
    entry = _OWNED.pop(name, None)
    if entry is None:
        return
    segment, _pid = entry
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    _RETIRED.append(segment)


@atexit.register
def _unlink_owned():
    pid = os.getpid()
    for name, (_segment, owner) in list(_OWNED.items()):
        if owner == pid:
            unlink(name)


class ShareSession:
    """Publish-once registry for one dispatch's worth of graph pickling.

    ``handle_for`` keeps a strong reference to every published graph so
    the ``id(graph)`` keys cannot be recycled while the session lives.
    """

    def __init__(self, min_bytes):
        self.min_bytes = min_bytes
        self._published = {}

    def handle_for(self, graph):
        """The graph's handle, publishing on first sight; ``None`` when
        the graph is too small to be worth a segment."""
        key = id(graph)
        entry = self._published.get(key)
        if entry is not None:
            return entry[1]
        approx = (2 * graph.edge_count() + len(graph) + 1) * 4
        if approx < self.min_bytes:
            return None
        handle = SharedCSR.publish(graph.to_csr())
        self._published[key] = (graph, handle)
        return handle

    def close(self):
        for _graph, handle in self._published.values():
            unlink(handle.name)
        self._published.clear()


def active_session():
    """The session ``Graph.__getstate__`` should consult, or ``None``."""
    return _SESSION


@contextmanager
def share_graphs(min_bytes=None):
    """Activate zero-copy graph sharing for the enclosing dispatch.

    Pool dispatch wraps its ``map`` in this context *after* the worker
    processes exist, so children never inherit an active session.  The
    session's segments are unlinked on exit: attached workers keep valid
    mappings, and the kernel reclaims the pages once the last detaches.

    ``REPRO_SHM_DISABLE=1`` turns the whole mechanism off (every graph
    pickles, as the distributed backend always does);
    ``REPRO_SHM_MIN_BYTES`` overrides the size threshold.  Nested
    activations reuse the outer session.
    """
    global _SESSION
    if _SESSION is not None or os.environ.get("REPRO_SHM_DISABLE") == "1":
        yield _SESSION
        return
    if min_bytes is None:
        min_bytes = int(os.environ.get("REPRO_SHM_MIN_BYTES", DEFAULT_MIN_BYTES))
    session = ShareSession(min_bytes)
    _SESSION = session
    try:
        yield session
    finally:
        _SESSION = None
        session.close()


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def list_segments(root="/dev/shm"):
    """Names of every ``repro-csr-*`` segment visible on this host."""
    if not os.path.isdir(root):
        return []
    return sorted(entry for entry in os.listdir(root) if entry.startswith(_PREFIX))


def clean_orphans(root="/dev/shm"):
    """Remove segments whose publisher pid is dead; return their names.

    A SIGKILLed publisher runs no ``atexit`` hook, so its segments
    outlive it and hold kernel memory until reboot.  Segment names embed
    the publisher pid (``repro-csr-<pid>-<token>``), so orphans are
    exactly the ones whose pid no longer exists.  Live publishers are
    never touched.
    """
    removed = []
    if not os.path.isdir(root):
        return removed
    for entry in os.listdir(root):
        if not entry.startswith(_PREFIX):
            continue
        pid_text = entry[len(_PREFIX) :].split("-", 1)[0]
        if pid_text.isdigit() and _alive(int(pid_text)):
            continue
        try:
            os.unlink(os.path.join(root, entry))
        except OSError:
            continue
        removed.append(entry)
    return removed
