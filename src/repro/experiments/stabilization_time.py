"""Empirical validation of the stabilization claims (Theorem 1, Lemmas 1-2).

Two experiments over the real distributed stack:

* **Scaling**: stabilization steps from a cold boot on grids of growing
  side.  Without the DAG, the adversarial identifier layout makes the
  joining tree span the network, so stabilization grows with the diameter;
  with the DAG it stays near-constant -- the entire point of Section 4.1.
* **Recovery**: steps to re-stabilize after transient faults of various
  classes, from a previously legitimate state (the self-stabilization
  property itself).
"""

from repro.experiments.common import get_preset
from repro.graph.generators import grid_topology
from repro.metrics.tables import Table
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.stabilization.faults import (
    clear_caches,
    duplicate_dag_ids,
    garbage_shared,
    total_corruption,
)
from repro.stabilization.monitor import recovery_time, steps_to_legitimacy
from repro.stabilization.predicates import make_stack_predicate
from repro.util.rng import as_rng, spawn_rngs

FAULTS = {
    "garbage shared state": garbage_shared,
    "cold caches": clear_caches,
    "duplicated DAG names": duplicate_dag_ids,
    "total corruption": total_corruption,
}


def cold_boot_steps(side, use_dag, rng, radius_cells=1.6, max_steps=None):
    """Stabilization steps from a cold boot on a ``side x side`` grid.

    ``radius_cells`` sets the transmission range in units of grid spacing
    (1.6 gives the 8-neighborhood of the paper's R=0.05 scenario).
    """
    rng = as_rng(rng)
    spacing = 1.0 / max(side - 1, 1)
    topology = grid_topology(side, side, radius_cells * spacing)
    stack = standard_stack(topology=topology, use_dag=use_dag)
    simulator = StepSimulator(topology, stack, rng=rng)
    predicate = make_stack_predicate(use_dag=use_dag)
    budget = max_steps if max_steps is not None else 40 + 12 * side
    return steps_to_legitimacy(simulator, predicate, budget)


def run_scaling_experiment(sides=(4, 6, 8, 10, 12), runs=3, rng=None):
    """Stabilization steps vs grid side, with and without the DAG."""
    table = Table(
        title=("Stabilization steps from cold boot vs grid side "
               f"({runs} runs; expectation: no-DAG grows with side, "
               "DAG stays near-constant)"),
        headers=["grid side", "diameter-ish", "steps (no DAG)",
                 "steps (with DAG)"],
    )
    rngs = spawn_rngs(rng, 2 * runs * len(sides))
    rng_iter = iter(rngs)
    for side in sides:
        totals = {}
        for use_dag in (False, True):
            total = 0.0
            for _ in range(runs):
                report = cold_boot_steps(side, use_dag, next(rng_iter))
                total += report.steps if report.converged \
                    else float(report.budget)
            totals[use_dag] = total / runs
        table.add_row([side, side - 1, totals[False], totals[True]])
    return table


def run_recovery_experiment(preset="quick", side=8, rng=None, max_steps=400):
    """Steps to recover legitimacy after each fault class."""
    preset = get_preset(preset)
    table = Table(
        title=(f"Fault recovery on a {side}x{side} grid with DAG "
               f"({preset.runs} runs)"),
        headers=["fault", "mean recovery steps", "all converged"],
    )
    for fault_name, fault in FAULTS.items():
        total = 0.0
        all_converged = True
        for run_rng in spawn_rngs(rng, preset.runs):
            spacing = 1.0 / (side - 1)
            topology = grid_topology(side, side, 1.6 * spacing)
            stack = standard_stack(topology=topology, use_dag=True)
            simulator = StepSimulator(topology, stack, rng=run_rng)
            predicate = make_stack_predicate(use_dag=True)
            steps_to_legitimacy(simulator, predicate, max_steps)
            report = recovery_time(simulator, fault, predicate, max_steps)
            total += report.steps
            all_converged = all_converged and report.converged
        table.add_row([fault_name, total / preset.runs,
                       "yes" if all_converged else "NO"])
    return table
