"""Empirical validation of the stabilization claims (Theorem 1, Lemmas 1-2).

Two experiments over the real distributed stack:

* **Scaling**: stabilization steps from a cold boot on grids of growing
  side.  Without the DAG, the adversarial identifier layout makes the
  joining tree span the network, so stabilization grows with the diameter;
  with the DAG it stays near-constant -- the entire point of Section 4.1.
* **Recovery**: steps to re-stabilize after transient faults of various
  classes, from a previously legitimate state (the self-stabilization
  property itself).
"""

from repro.experiments.common import get_preset
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.graph.generators import grid_topology
from repro.metrics.tables import Table
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.stabilization.faults import (
    clear_caches,
    duplicate_dag_ids,
    garbage_shared,
    total_corruption,
)
from repro.stabilization.monitor import recovery_time, steps_to_legitimacy
from repro.stabilization.predicates import make_stack_predicate
from repro.util.rng import as_rng, spawn_rngs

FAULTS = {
    "garbage shared state": garbage_shared,
    "cold caches": clear_caches,
    "duplicated DAG names": duplicate_dag_ids,
    "total corruption": total_corruption,
}


def cold_boot_steps(side, use_dag, rng, radius_cells=1.6, max_steps=None):
    """Stabilization steps from a cold boot on a ``side x side`` grid.

    ``radius_cells`` sets the transmission range in units of grid spacing
    (1.6 gives the 8-neighborhood of the paper's R=0.05 scenario).
    """
    rng = as_rng(rng)
    spacing = 1.0 / max(side - 1, 1)
    topology = grid_topology(side, side, radius_cells * spacing)
    stack = standard_stack(topology=topology, use_dag=use_dag)
    simulator = StepSimulator(topology, stack, rng=rng)
    predicate = make_stack_predicate(use_dag=use_dag)
    budget = max_steps if max_steps is not None else 40 + 12 * side
    return steps_to_legitimacy(simulator, predicate, budget)


def _run_cold_boot(task):
    side, use_dag, run_rng = task
    report = cold_boot_steps(side, use_dag, run_rng)
    return report.steps if report.converged else float(report.budget)


def _build_scaling(preset, rng, options):
    rng_iter = iter(spawn_rngs(rng, 2 * options["runs"]
                               * len(options["sides"])))
    return [(side, use_dag, next(rng_iter))
            for side in options["sides"]
            for use_dag in (False, True)
            for _ in range(options["runs"])]


def _reduce_scaling(preset, tasks, results, options):
    runs = options["runs"]
    table = Table(
        title=("Stabilization steps from cold boot vs grid side "
               f"({runs} runs; expectation: no-DAG grows with side, "
               "DAG stays near-constant)"),
        headers=["grid side", "diameter-ish", "steps (no DAG)",
                 "steps (with DAG)"],
    )
    result_iter = iter(results)
    for side in options["sides"]:
        totals = {use_dag: sum(next(result_iter) for _ in range(runs)) / runs
                  for use_dag in (False, True)}
        table.add_row([side, side - 1, totals[False], totals[True]])
    return table


SCALING_SPEC = ExperimentSpec(name="stabilization_scaling",
                              build=_build_scaling, run=_run_cold_boot,
                              reduce=_reduce_scaling)


def run_scaling_experiment(sides=(4, 6, 8, 10, 12), runs=3, rng=None, jobs=1):
    """Stabilization steps vs grid side, with and without the DAG."""
    return run_experiment(SCALING_SPEC, rng=rng, jobs=jobs,
                          sides=tuple(sides), runs=runs)


def _run_recovery(task):
    fault_name, side, max_steps, run_rng = task
    spacing = 1.0 / (side - 1)
    topology = grid_topology(side, side, 1.6 * spacing)
    stack = standard_stack(topology=topology, use_dag=True)
    simulator = StepSimulator(topology, stack, rng=run_rng)
    predicate = make_stack_predicate(use_dag=True)
    steps_to_legitimacy(simulator, predicate, max_steps)
    report = recovery_time(simulator, FAULTS[fault_name], predicate,
                           max_steps)
    return report.steps, report.converged


def _build_recovery(preset, rng, options):
    # spawn_rngs is called once per fault class with the caller's raw
    # argument, matching the historical loop.
    return [(fault_name, options["side"], options["max_steps"], run_rng)
            for fault_name in FAULTS
            for run_rng in spawn_rngs(rng, preset.runs)]


def _reduce_recovery(preset, tasks, results, options):
    side = options["side"]
    table = Table(
        title=(f"Fault recovery on a {side}x{side} grid with DAG "
               f"({preset.runs} runs)"),
        headers=["fault", "mean recovery steps", "all converged"],
    )
    result_iter = iter(results)
    for fault_name in FAULTS:
        total = 0.0
        all_converged = True
        for _ in range(preset.runs):
            steps, converged = next(result_iter)
            total += steps
            all_converged = all_converged and converged
        table.add_row([fault_name, total / preset.runs,
                       "yes" if all_converged else "NO"])
    return table


RECOVERY_SPEC = ExperimentSpec(name="fault_recovery", build=_build_recovery,
                               run=_run_recovery, reduce=_reduce_recovery)


def run_recovery_experiment(preset="quick", side=8, rng=None, max_steps=400,
                            jobs=1):
    """Steps to recover legitimacy after each fault class."""
    return run_experiment(RECOVERY_SPEC, get_preset(preset), rng=rng,
                          jobs=jobs, side=side, max_steps=max_steps)
