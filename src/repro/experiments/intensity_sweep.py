"""Intensity sweep: cluster-head count vs node intensity (§3 "Features").

Section 3 cites [16]: *"the number of cluster-heads computed with this
metric is bounded and decreases when the nodes intensity increases"* --
densifying the network should merge clusters, not split them, because
nodes that hear each other need no separation.  This experiment sweeps λ
at fixed R, reporting head counts for density and for the degree baseline
(whose head count grows with n -- a dominating set scales with area /
R², not down), plus measured-vs-predicted interior density values from
the stochastic analysis.

Deployments execute through the parallel experiment engine, one task per
(intensity, run), with per-run generators spawned in the historical
sequential order.
"""

from repro.analysis.rgg import expected_degree, expected_density
from repro.clustering.baselines.degree import degree_clustering
from repro.clustering.density import all_densities
from repro.experiments.common import clustered
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.graph.generators import poisson_topology
from repro.metrics.tables import Table
from repro.util.rng import as_rng, spawn_rngs


def interior_nodes(topology, margin):
    """Nodes at least ``margin`` from every border (no edge effects)."""
    return [node for node, (x, y) in topology.positions.items()
            if margin <= x <= 1.0 - margin and margin <= y <= 1.0 - margin]


def _run_one(task):
    """One deployment; returns (density heads, degree heads, interior mean).

    ``None`` for an empty deployment; the interior mean is ``None`` when
    no node sits clear of the borders.
    """
    intensity, radius, run_rng = task
    topology = poisson_topology(intensity, radius, rng=run_rng)
    if len(topology.graph) == 0:
        return None
    clustering, _ = clustered(topology, rng=run_rng, use_dag=True)
    degree_count = degree_clustering(
        topology.graph, tie_ids=topology.ids).cluster_count
    densities = all_densities(topology.graph)
    interior = interior_nodes(topology, margin=radius)
    interior_mean = (sum(densities[n] for n in interior) / len(interior)
                     if interior else None)
    return clustering.cluster_count, degree_count, interior_mean


def _build(preset, rng, options):
    # One root generator consumed sequentially across intensities, exactly
    # like the historical nested loop.
    root = as_rng(rng)
    return [(intensity, options["radius"], run_rng)
            for intensity in options["intensities"]
            for run_rng in spawn_rngs(root, options["runs"])]


def _reduce(preset, tasks, results, options):
    runs = options["runs"]
    radius = options["radius"]
    table = Table(
        title=(f"Intensity sweep at R={radius} ({runs} runs): head count "
               "should fall with lambda for density, not for degree"),
        headers=["lambda", "mean degree (pred)", "density heads",
                 "degree heads", "interior density", "predicted density"],
    )
    result_iter = iter(results)
    for intensity in options["intensities"]:
        density_heads = 0.0
        degree_heads = 0.0
        measured_density = 0.0
        samples = 0
        for _ in range(runs):
            outcome = next(result_iter)
            if outcome is None:
                continue
            density_count, degree_count, interior_mean = outcome
            density_heads += density_count
            degree_heads += degree_count
            if interior_mean is not None:
                measured_density += interior_mean
                samples += 1
        table.add_row([
            intensity,
            expected_degree(intensity, radius),
            density_heads / runs,
            degree_heads / runs,
            measured_density / max(samples, 1),
            expected_density(intensity, radius),
        ])
    return table


INTENSITY_SPEC = ExperimentSpec(name="intensity_sweep", build=_build,
                                run=_run_one, reduce=_reduce)


def run_intensity_sweep(intensities=(300, 600, 1000, 1500), radius=0.1,
                        runs=4, rng=None, jobs=1):
    """Head counts and density statistics per intensity; returns a Table."""
    return run_experiment(INTENSITY_SPEC, rng=rng, jobs=jobs,
                          intensities=tuple(intensities), radius=radius,
                          runs=runs)
