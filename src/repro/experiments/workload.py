"""The traffic-serving experiment family: ``repro workload``.

Serves large request workloads through the cluster hierarchy and
reports what a production deployment would ask of it: p50/p99 latency
(in hops), link load, per-cluster-head load balance, and path stretch
-- per workload shape.  The shapes cover the serving literature's axes:

* ``uniform`` -- Poisson arrivals, uniform destinations (the paper's
  homogeneous assumption);
* ``zipf`` / ``zipf-hot`` -- Zipf(0.8) / Zipf(1.2) destination
  popularity (skewed content/aggregator traffic; the *cluster-head
  load balance under skew* rows are a paper-extension result);
* ``ycsb`` -- the YCSB-B 95/5 read/write mix against node-owned
  objects with Zipf(0.8) key popularity;
* ``mobility`` -- the same Zipf traffic served over per-window
  delta-maintained topologies (:func:`~repro.mobility.trace.
  window_stream`), with the level-0 clustering maintained by the
  incremental density engine and the hierarchy and router rebuilt per
  2-second window (``dynamics="rebuild"`` forces the scratch path;
  identical output either way).

Execution rides the standard :class:`~repro.experiments.engine.
ExperimentSpec` engine: each static workload is split into a *fixed*
number of request chunks (independent of ``jobs``/backend), every chunk
carries its own pre-spawned RNG and returns a mergeable
:class:`~repro.collectors.base.CollectorProxy`, and the reducer folds
the chunks in submission order -- collector merge is associative and
order-independent, so the rendered tables are byte-identical for every
backend and worker count.  Chunk timestamps restart at zero (arrival
times order events within a chunk; no collector reads absolute time).
"""

from dataclasses import dataclass

import numpy as np

from repro.collectors import (
    CollectorProxy,
    HeadLoadCollector,
    LatencyCollector,
    LinkLoadCollector,
    StretchCollector,
)
from repro.clustering.engine import engine_for
from repro.experiments.common import get_preset, resolve_topology_spec
from repro.graph.models.registry import build_topology_spec
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.metric_windows import (
    METRIC_ENGINES,
    METRIC_SCRATCH,
    check_dynamics,
)
from repro.graph.generators import uniform_topology
from repro.hierarchy.hierarchy import build_hierarchy
from repro.metrics.tables import Table
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.trace import topology_at, window_stream
from repro.naming.assign import assign_dag_ids
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng, spawn_rngs
from repro.workload.generators import (
    ZipfPopularity,
    poisson_requests,
    ycsb_requests,
)
from repro.workload.serve import (
    SERVING_MODES,
    RouterStatsCollector,
    serve_workload,
)

#: Workload shapes in table order.
WORKLOAD_KINDS = ("uniform", "zipf", "zipf-hot", "ycsb", "mobility")

#: Clustering metrics the mobility shape can maintain per window:
#: CLI spelling -> the :mod:`~repro.experiments.metric_windows` name.
WORKLOAD_METRICS = {
    "density": "density",
    "degree": "degree",
    "lowest_id": "lowest-id",
    "maxmin": "max-min (d=2)",
}


def check_metric(metric):
    """Validate a workload clustering-metric name and return it."""
    if metric not in WORKLOAD_METRICS:
        raise ConfigurationError(
            f"unknown metric {metric!r}; expected one of "
            f"{tuple(WORKLOAD_METRICS)}")
    return metric


def check_serving(serving):
    """Validate a serving-mode name and return it."""
    if serving not in SERVING_MODES:
        raise ConfigurationError(
            f"unknown serving mode {serving!r}; expected one of "
            f"{SERVING_MODES}")
    return serving

#: Requests *per workload shape* by preset name (quick totals 10^5 over
#: the five shapes -- the CI workload-smoke budget).
REQUESTS_BY_PRESET = {"paper": 200_000, "quick": 20_000, "smoke": 600}

ZIPF_ALPHA = 0.8
ZIPF_HOT_ALPHA = 1.2
YCSB_READ_FRACTION = 0.95

#: Static workloads split into this many engine tasks -- fixed, never a
#: function of jobs or backend, so chunk boundaries (and with them the
#: stretch sampling and every RNG stream) are identical everywhere.
CHUNKS = 8

#: Target stretch samples per chunk (``flat_every`` is derived from it).
FLAT_SAMPLES_PER_CHUNK = 250

#: Mobility shape: 2-second windows served per trace.
MOBILITY_WINDOWS = 12
MOBILITY_WINDOW_SECONDS = 2.0
MOBILITY_SPEED_RANGE_MPS = (0.0, 1.6)  # pedestrian
SQUARE_SIDE_METERS = 1000.0


def _requests_per_kind(preset, requests):
    if requests is not None:
        if requests < 1:
            raise ConfigurationError(
                f"requests must be >= 1, got {requests}")
        return int(requests)
    return REQUESTS_BY_PRESET.get(preset.name, max(500, preset.runs * 75))


def _split_evenly(total, parts):
    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def _build(preset, rng, options):
    root = as_rng(rng)
    # One deployment seed shared by every chunk and every static shape,
    # so all shapes are measured against the same hierarchy.
    topo_seed = int(root.integers(0, 2**63))
    tasks = []
    for kind in options["kinds"]:
        if kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {kind!r}; expected a subset of "
                f"{WORKLOAD_KINDS}")
        count = options["requests"]
        chunks = 1 if kind == "mobility" else min(options["chunks"], count)
        counts = _split_evenly(count, chunks)
        topology = options.get("topology")
        if topology is not None and kind == "mobility":
            raise ConfigurationError(
                "the mobility workload needs geometric motion; it cannot "
                "run with --topology (drop the mobility kind or the "
                "topology override)")
        params = {
            "nodes": preset.mobility_nodes,
            "radius": options["radius"],
            "windows": options["mobility_windows"],
            "dynamics": check_dynamics(options.get("dynamics", "delta")),
            "metric": check_metric(options.get("metric", "density")),
            "serving": check_serving(options.get("serving", "batch")),
            "topology": topology,
        }
        for chunk_rng, chunk_count in zip(spawn_rngs(root, chunks), counts):
            tasks.append((kind, params, topo_seed, chunk_count, chunk_rng))
    return tasks


# One hierarchy per (nodes, radius, seed), memoized per worker process:
# every chunk of every static shape shares the same deployment, so the
# build cost amortizes to once per worker instead of once per chunk.
_HIERARCHY_CACHE = {}


def _hierarchy_for(nodes, radius, topo_seed, spec=None):
    key = (nodes, radius, topo_seed, str(spec) if spec is not None else None)
    cached = _HIERARCHY_CACHE.get(key)
    if cached is None:
        build_rng = np.random.default_rng(topo_seed)
        if spec is not None:
            topology = build_topology_spec(spec, rng=build_rng)
        else:
            topology = uniform_topology(nodes, radius, rng=build_rng)
        hierarchy = build_hierarchy(topology, rng=build_rng)
        if len(_HIERARCHY_CACHE) >= 4:
            _HIERARCHY_CACHE.pop(next(iter(_HIERARCHY_CACHE)))
        cached = _HIERARCHY_CACHE[key] = (topology, hierarchy)
    return cached


def _make_collectors(hierarchy):
    return CollectorProxy([
        LatencyCollector(),
        LinkLoadCollector(),
        HeadLoadCollector(hierarchy.physical.clustering.heads),
        StretchCollector(),
        RouterStatsCollector(),
    ])


def _requests_for(kind, nodes, count, rng):
    if kind == "uniform":
        return poisson_requests(nodes, count, rng=rng)
    if kind == "zipf":
        return poisson_requests(nodes, count, rng=rng,
                                popularity=ZipfPopularity(nodes, ZIPF_ALPHA))
    if kind == "zipf-hot":
        return poisson_requests(
            nodes, count, rng=rng,
            popularity=ZipfPopularity(nodes, ZIPF_HOT_ALPHA))
    if kind == "ycsb":
        return ycsb_requests(nodes, count, rng=rng,
                             read_fraction=YCSB_READ_FRACTION,
                             alpha=ZIPF_ALPHA)
    raise ConfigurationError(f"unknown workload kind {kind!r}")


def _flat_every(count):
    return max(1, count // FLAT_SAMPLES_PER_CHUNK)


def _run_one(task):
    """Serve one request chunk; returns its mergeable collector proxy."""
    kind, params, topo_seed, count, chunk_rng = task
    if kind == "mobility":
        return _run_mobility(params, count, chunk_rng)
    _topology, hierarchy = _hierarchy_for(params["nodes"], params["radius"],
                                          topo_seed,
                                          spec=params.get("topology"))
    nodes = sorted(hierarchy.physical.topology.graph.nodes)
    proxy = _make_collectors(hierarchy)
    requests = _requests_for(kind, nodes, count, chunk_rng)
    return serve_workload(hierarchy, requests, proxy,
                          flat_every=_flat_every(count),
                          mode=params["serving"])


def _run_mobility(params, count, chunk_rng):
    """Serve Zipf traffic over delta-maintained mobility windows.

    One task (not chunked): the per-window topology is maintained
    incrementally across the whole trace, which is inherently
    sequential.  Each window rebuilds the hierarchy and router on the
    current snapshot and serves its share of the request budget; the
    per-window proxies merge into one, exercising the same merge path
    the chunked shapes use.

    With ``dynamics="delta"`` (the default) the level-0 clustering is
    maintained by the incremental density engine from the exact edge
    delta stream; the level-0 DAG names are drawn here -- under the
    same edge-count condition, in the same order -- so the RNG stream
    matches a full :func:`build_hierarchy` call draw for draw, and the
    served windows are bit-identical to ``dynamics="rebuild"``.

    ``params["metric"]`` selects which clustering maintains the
    physical level: ``density`` (the paper metric, the path above) or
    one of the baseline engines (``degree`` / ``lowest_id`` /
    ``maxmin``), maintained incrementally via ``apply_delta`` on the
    same exact delta stream -- so traffic can be served over every
    clustering family the repo implements, under identical mobility.
    """
    windows = params["windows"]
    dynamics = params.get("dynamics", "delta")
    metric = params.get("metric", "density")
    low, high = MOBILITY_SPEED_RANGE_MPS
    speed_range = (low / SQUARE_SIDE_METERS, high / SQUARE_SIDE_METERS)
    model = RandomDirectionModel(params["nodes"], speed_range, rng=chunk_rng)
    counts = _split_evenly(count, windows)

    def snapshots():
        for _ in range(windows):
            yield model.positions.copy()
            model.advance(MOBILITY_WINDOW_SECONDS)

    def hierarchies():
        if dynamics == "rebuild":
            for positions in snapshots():
                topology = topology_at(positions, params["radius"])
                if metric == "density":
                    yield build_hierarchy(topology, rng=chunk_rng)
                else:
                    scratch = METRIC_SCRATCH[WORKLOAD_METRICS[metric]]
                    yield build_hierarchy(
                        topology, rng=chunk_rng,
                        physical_clustering=scratch(topology))
            return
        if metric != "density":
            engine = METRIC_ENGINES[WORKLOAD_METRICS[metric]]()
            for update in window_stream(snapshots(), params["radius"],
                                        track_densities=False):
                yield build_hierarchy(
                    update.topology, rng=chunk_rng,
                    physical_clustering=engine.apply_delta(update))
            return
        engine = engine_for("density")
        for update in window_stream(snapshots(), params["radius"]):
            topology = update.topology
            dag_ids = None
            if topology.graph.edge_count() > 0:
                dag_ids, _rounds = assign_dag_ids(topology, chunk_rng)
            clustering = engine.update(
                topology.graph, update.densities, tie_ids=topology.ids,
                dag_ids=dag_ids, density_changed=update.density_changed,
                graph_changed=bool(update.delta), dag_changed=True)
            yield build_hierarchy(topology, rng=chunk_rng,
                                  physical_clustering=clustering)

    total = None
    for window_count, hierarchy in zip(counts, hierarchies()):
        topology = hierarchy.physical.topology
        nodes = sorted(topology.graph.nodes)
        proxy = _make_collectors(hierarchy)
        requests = poisson_requests(
            nodes, window_count, rng=chunk_rng,
            popularity=ZipfPopularity(nodes, ZIPF_ALPHA))
        serve_workload(hierarchy, requests, proxy,
                       flat_every=_flat_every(window_count),
                       mode=params.get("serving", "batch"))
        total = proxy if total is None else total.merge(proxy)
    return total


@dataclass
class WorkloadReport:
    """The three serving tables plus the raw per-shape collector results."""

    latency: Table
    links: Table
    heads: Table
    results: dict  # kind -> {collector name -> results dict}

    def __str__(self):
        return "\n\n".join(str(table)
                           for table in (self.latency, self.links, self.heads))


def _reduce(preset, tasks, results, options):
    merged = {}
    for task, proxy in zip(tasks, results):
        kind = task[0]
        if kind in merged:
            merged[kind].merge(proxy)
        else:
            merged[kind] = proxy
    kinds = [kind for kind in options["kinds"] if kind in merged]
    raw = {kind: merged[kind].results() for kind in kinds}
    scale = (f"{options['requests']} requests/shape, "
             f"{preset.mobility_nodes} nodes, R={options['radius']}")
    latency = Table(
        title=f"Serving latency & stretch ({scale}; latency in hops)",
        headers=["workload", "requests", "unroutable", "p50", "p99",
                 "mean", "mean stretch", "p99 stretch", "flat hit%"])
    links = Table(
        title=f"Link load ({scale})",
        headers=["workload", "links used", "traversals", "mean", "p99",
                 "max"])
    heads = Table(
        title=f"Cluster-head load ({scale}; max/mean = hot-spot factor)",
        headers=["workload", "heads", "handled", "mean", "max", "max/mean",
                 "jain"])
    for kind in kinds:
        lat = raw[kind]["latency"]
        stretch = raw[kind]["stretch"]
        link = raw[kind]["link_load"]
        head = raw[kind]["head_load"]
        router = raw[kind]["router"]
        latency.add_row([kind, lat["requests"], lat["unroutable"],
                         lat["p50"], lat["p99"], lat["mean"],
                         stretch["mean"], stretch["p99"],
                         router["flat_hit_ratio"]])
        links.add_row([kind, link["links_used"], link["traversals"],
                       link["mean"], link["p99"], link["max"]])
        heads.add_row([kind, head["heads"], head["handled"], head["mean"],
                       head["max"], head["imbalance"], head["jain"]])
    return WorkloadReport(latency=latency, links=links, heads=heads,
                          results=raw)


WORKLOAD_SPEC = ExperimentSpec(name="workload", build=_build, run=_run_one,
                               reduce=_reduce)


def run_workload(preset="quick", rng=None, jobs=1, kinds=None, radius=0.1,
                 requests=None, chunks=CHUNKS,
                 mobility_windows=MOBILITY_WINDOWS, dynamics="delta",
                 metric="density", serving="batch", topology=None):
    """Serve every workload shape; returns a :class:`WorkloadReport`.

    ``requests`` overrides the per-shape request budget (default by
    preset: quick = 20k/shape = 10^5 total).  ``dynamics`` selects how
    the mobility shape maintains its per-window clustering (engine
    deltas vs scratch rebuilds; identical output).  ``metric`` selects
    the clustering the mobility shape maintains (``density`` or one of
    the baseline engines -- ``degree``, ``lowest_id``, ``maxmin``).
    ``serving`` selects the request loop (``batch``, the default, or
    the per-request reference ``request``; identical output).
    ``topology`` (a generator spec) replaces the static deployment; the
    mobility shape then drops out of the default kinds (motion needs
    geometry) and requesting it explicitly is an error.  Output is
    identical for every backend and worker count.
    """
    preset = get_preset(preset)
    if topology is not None:
        topology = resolve_topology_spec(
            topology, count=preset.mobility_nodes, radius=radius)
        if kinds is None:
            kinds = tuple(kind for kind in WORKLOAD_KINDS
                          if kind != "mobility")
    kinds = tuple(kinds) if kinds is not None else WORKLOAD_KINDS
    return run_experiment(
        WORKLOAD_SPEC, preset, rng=rng, jobs=jobs, kinds=kinds,
        radius=radius, requests=_requests_per_kind(preset, requests),
        chunks=chunks, mobility_windows=mobility_windows, dynamics=dynamics,
        metric=check_metric(metric), serving=check_serving(serving),
        topology=topology)
