"""Table 4: cluster features on random geometric graphs.

For each R in {0.05, 0.08, 0.1}, Poisson deployments of intensity 1000
are clustered with and without the DAG layer; the reported statistics are
the number of clusters, the mean cluster-head eccentricity and the mean
joining-tree length.  The paper's finding: on homogeneous random
deployments the DAG changes nothing measurable, because identifier
tie-breaks are almost never exercised.

Runs execute through the parallel experiment engine; RNGs are spawned in
the historical order (one child per table cell, one grandchild per run),
so results are identical for every ``jobs`` value.
"""

from repro.experiments.common import (
    build_topology,
    clustered,
    get_preset,
    per_run_rngs,
    resolve_topology_spec,
)
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.paper_values import TABLE4, TABLE4_RADII
from repro.metrics.clusters import cluster_stats, mean_stats
from repro.metrics.tables import Table

_CONFIGURATIONS = ((True, "with"), (False, "no"))


def _run_one(task):
    kind, intensity, radius, use_dag, spec, run_rng = task
    topology = build_topology(kind, intensity, radius, run_rng, topology=spec)
    clustering, _dag_ids = clustered(topology, rng=run_rng, use_dag=use_dag)
    return cluster_stats(clustering)


def _spec_for(options, preset, radius):
    """The per-radius resolved topology spec (matched degree tracks R)."""
    spec = options.get("topology")
    if spec is None:
        return None
    return resolve_topology_spec(spec, count=preset.intensity, radius=radius)


def _build(preset, rng, options):
    radii = options["radii"]
    cell_rngs = iter(per_run_rngs(rng, 2 * len(radii)))
    return [("random", preset.intensity, radius, use_dag,
             _spec_for(options, preset, radius), run_rng)
            for radius in radii
            for use_dag, _label in _CONFIGURATIONS
            for run_rng in per_run_rngs(next(cell_rngs), preset.runs)]


def _reduce(preset, tasks, results, options):
    radii = options["radii"]
    deployment = ("random geometric graphs" if options.get("topology") is None
                  else f"{options['topology']} (degree matched per R)")
    table = Table(
        title=(f"Table 4: clusters on {deployment} "
               f"(lambda={preset.intensity}, {preset.runs} runs; "
               "paper in parens)"),
        headers=["R", "DAG", "#clusters", "eccentricity", "tree length",
                 "paper (#, ecc, tree)"],
    )
    result_iter = iter(results)
    for radius in radii:
        for use_dag, label in _CONFIGURATIONS:
            stats = mean_stats([next(result_iter)
                                for _ in range(preset.runs)])
            reference = TABLE4.get(radius, {}).get(
                "with" if use_dag else "without", "-")
            table.add_row([radius, label, stats.cluster_count,
                           stats.mean_head_eccentricity,
                           stats.mean_tree_length, f"({reference})"])
    return table


TABLE4_SPEC = ExperimentSpec(name="table4", build=_build, run=_run_one,
                             reduce=_reduce)


def run_table4(preset="quick", radii=TABLE4_RADII, rng=None, jobs=1,
               topology=None):
    """Regenerate Table 4; returns a Table.

    ``topology`` swaps the Poisson deployment for any registered
    generator spec; the matched mean degree is re-derived per radius
    cell, so the sweep stays degree-matched to the paper's R values.
    """
    return run_experiment(TABLE4_SPEC, get_preset(preset), rng=rng,
                          jobs=jobs, radii=radii, topology=topology)
