"""Table 4: cluster features on random geometric graphs.

For each R in {0.05, 0.08, 0.1}, Poisson deployments of intensity 1000
are clustered with and without the DAG layer; the reported statistics are
the number of clusters, the mean cluster-head eccentricity and the mean
joining-tree length.  The paper's finding: on homogeneous random
deployments the DAG changes nothing measurable, because identifier
tie-breaks are almost never exercised.
"""

from repro.experiments.common import (
    build_topology,
    clustered,
    get_preset,
    per_run_rngs,
)
from repro.experiments.paper_values import TABLE4, TABLE4_RADII
from repro.metrics.clusters import cluster_stats, mean_stats
from repro.metrics.tables import Table


def clustering_statistics(kind, preset, radius, rng, use_dag):
    """Mean :class:`ClusterStats` over ``preset.runs`` deployments."""
    stats = []
    for run_rng in per_run_rngs(rng, preset.runs):
        topology = build_topology(kind, preset.intensity, radius, run_rng)
        clustering, _dag_ids = clustered(topology, rng=run_rng,
                                         use_dag=use_dag)
        stats.append(cluster_stats(clustering))
    return mean_stats(stats)


def run_table4(preset="quick", radii=TABLE4_RADII, rng=None):
    """Regenerate Table 4; returns a Table."""
    preset = get_preset(preset)
    table = Table(
        title=(f"Table 4: clusters on random geometric graphs "
               f"(lambda={preset.intensity}, {preset.runs} runs; "
               "paper in parens)"),
        headers=["R", "DAG", "#clusters", "eccentricity", "tree length",
                 "paper (#, ecc, tree)"],
    )
    rngs = per_run_rngs(rng, 2 * len(radii))
    rng_iter = iter(rngs)
    for radius in radii:
        for use_dag, label in ((True, "with"), (False, "no")):
            stats = clustering_statistics("random", preset, radius,
                                          next(rng_iter), use_dag)
            reference = TABLE4.get(radius, {}).get(
                "with" if use_dag else "without", "-")
            table.add_row([radius, label, stats.cluster_count,
                           stats.mean_head_eccentricity,
                           stats.mean_tree_length, f"({reference})"])
    return table
