"""Per-window evaluation of every clustering metric over one trace.

The comparison and overhead experiments walk the same four metrics
(density, degree, lowest-ID, max-min) over the same topology sequence
and differ only in what they record per window.  This module owns the
shared walk: :func:`metric_windows` yields one ``{metric name:
Clustering}`` dict per position snapshot, driven either by the exact
delta stream through the incremental engines (``dynamics="delta"``, the
default everywhere) or by per-window scratch rebuilds
(``dynamics="rebuild"``, the reference oracle).  The two paths produce
bit-identical clusterings window for window -- the engines are exact --
so every experiment table is invariant under the switch; the property
and experiment suites assert exactly that.
"""

from repro.clustering.baselines.degree import degree_clustering
from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.clustering.baselines.maxmin import maxmin_clustering
from repro.clustering.engine import engine_for
from repro.experiments.common import clustered
from repro.mobility.trace import topology_at, window_stream
from repro.util.errors import ConfigurationError

DYNAMICS_MODES = ("delta", "rebuild")


def check_dynamics(dynamics):
    """Validate a dynamics mode name and return it."""
    if dynamics not in DYNAMICS_MODES:
        raise ConfigurationError(
            f"unknown dynamics {dynamics!r}; expected one of {DYNAMICS_MODES}"
        )
    return dynamics


def _density_scratch(topology):
    clustering, _dag_ids = clustered(topology, use_dag=False)
    return clustering


#: Scratch builder per metric (the rebuild path and the oracle).
METRIC_SCRATCH = {
    "density": _density_scratch,
    "degree": lambda topo: degree_clustering(topo.graph, tie_ids=topo.ids),
    "lowest-id": lambda topo: lowest_id_clustering(topo.graph, tie_ids=topo.ids),
    "max-min (d=2)": lambda topo: maxmin_clustering(topo.graph, d=2, tie_ids=topo.ids),
}

#: Incremental engine factory per metric (the delta path).
METRIC_ENGINES = {
    "density": lambda: engine_for("density"),
    "degree": lambda: engine_for("degree"),
    "lowest-id": lambda: engine_for("lowest-id"),
    "max-min (d=2)": lambda: engine_for("max-min", d=2),
}


def model_snapshots(model, windows, window_seconds):
    """Yield ``windows + 1`` position snapshots, advancing ``model``
    after each one (the historical experiment-loop ordering, so the
    model's RNG stream is identical to the rebuild-in-place loops)."""
    for _ in range(windows + 1):
        yield model.positions.copy()
        model.advance(window_seconds)


def metric_windows(snapshots, radius, dynamics="delta", metrics=None):
    """Yield ``{metric name: Clustering}`` per position snapshot.

    ``metrics`` restricts the evaluation to a subset of metric names
    (default: all four).  ``dynamics="delta"`` maintains one topology
    and one engine per metric across the whole sequence; ``"rebuild"``
    reconstructs everything from scratch per window.  Identical output
    either way.
    """
    check_dynamics(dynamics)
    names = list(METRIC_SCRATCH) if metrics is None else list(metrics)
    if dynamics == "rebuild":
        for positions in snapshots:
            topology = topology_at(positions, radius)
            yield {name: METRIC_SCRATCH[name](topology) for name in names}
    else:
        engines = {name: METRIC_ENGINES[name]() for name in names}
        track = "density" in engines
        for update in window_stream(snapshots, radius, track_densities=track):
            yield {
                name: engine.apply_delta(update)
                for name, engine in engines.items()
            }
