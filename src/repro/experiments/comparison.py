"""Metric comparison: density vs degree vs lowest-ID vs max-min.

Section 3 ("Features") cites [16]'s finding that the density heuristic is
more stable under mobility than the degree and max-min metrics.  This
experiment replays one mobility trace per run and measures head retention
for every metric over the same topology sequence, making the comparison
paired.  It also reports mean cluster counts, since stability alone is
trivially won by degenerate clusterings.
"""

from repro.clustering.baselines.degree import degree_clustering
from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.clustering.baselines.maxmin import maxmin_clustering
from repro.experiments.common import clustered, get_preset
from repro.experiments.mobility import SPEED_REGIMES, speed_range_in_sides
from repro.metrics.stability import RetentionSeries
from repro.metrics.tables import Table
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.trace import topology_at
from repro.util.rng import as_rng, spawn_rngs


def _density_heads(topology, _rng):
    clustering, _ = clustered(topology, use_dag=False)
    return clustering


METRICS = {
    "density": _density_heads,
    "degree": lambda topo, rng: degree_clustering(topo.graph,
                                                  tie_ids=topo.ids),
    "lowest-id": lambda topo, rng: lowest_id_clustering(topo.graph,
                                                        tie_ids=topo.ids),
    "max-min (d=2)": lambda topo, rng: maxmin_clustering(topo.graph, d=2,
                                                         tie_ids=topo.ids),
}


def run_comparison(preset="quick", regime="pedestrian", radius=0.1, rng=None,
                   runs=1):
    """Head retention per clustering metric over shared mobility traces."""
    preset = get_preset(preset)
    rng = as_rng(rng)
    speed_range = speed_range_in_sides(SPEED_REGIMES[regime])
    retention = {name: RetentionSeries() for name in METRICS}
    membership_kept = {name: [] for name in METRICS}
    cluster_counts = {name: [] for name in METRICS}
    windows = int(round(preset.mobility_duration / preset.mobility_window))

    for run_rng in spawn_rngs(rng, runs):
        model = RandomDirectionModel(preset.mobility_nodes, speed_range,
                                     rng=run_rng)
        previous = {name: None for name in METRICS}
        for _ in range(windows + 1):
            topology = topology_at(model.positions, radius)
            for name, build in METRICS.items():
                clustering = build(topology, run_rng)
                cluster_counts[name].append(clustering.cluster_count)
                if previous[name] is not None:
                    retention[name].observe(previous[name].heads,
                                            clustering.heads)
                    membership_kept[name].append(_membership_retention(
                        previous[name], clustering))
                previous[name] = clustering
            model.advance(preset.mobility_window)

    table = Table(
        title=(f"Metric stability under {regime} mobility "
               f"({preset.mobility_nodes} nodes, "
               f"{preset.mobility_duration:.0f}s x {runs} trace(s))"),
        headers=["metric", "% heads retained / window",
                 "% nodes keeping their head", "mean #clusters"],
    )
    for name in METRICS:
        counts = cluster_counts[name]
        kept = membership_kept[name]
        table.add_row([name, retention[name].percent,
                       100.0 * sum(kept) / len(kept),
                       sum(counts) / len(counts)])
    return table


def _membership_retention(before, after):
    """Fraction of nodes whose cluster-head assignment survived the window.

    Head *retention* compares head sets only and favors metrics anchored
    to immutable identifiers (a max-min head keeps its role as long as it
    stays the area's max id); membership retention instead measures how
    much of the network gets re-homed, the cost [16] cares about when
    routing tables must be rebuilt.
    """
    common = set(before.head_of) & set(after.head_of)
    kept = sum(before.head_of[node] == after.head_of[node]
               for node in common)
    return kept / len(common) if common else 1.0
