"""Metric comparison: density vs degree vs lowest-ID vs max-min.

Section 3 ("Features") cites [16]'s finding that the density heuristic is
more stable under mobility than the degree and max-min metrics.  This
experiment replays one mobility trace per run and measures head retention
for every metric over the same topology sequence, making the comparison
paired.  It also reports mean cluster counts, since stability alone is
trivially won by degenerate clusterings.

Traces execute through the parallel experiment engine; each trace is one
task with its own pre-spawned generator, and the reducer concatenates the
per-window observations in task order, so the table is identical for
every ``jobs`` value.
"""

from repro.clustering.baselines.degree import degree_clustering
from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.clustering.baselines.maxmin import maxmin_clustering
from repro.experiments.common import clustered, get_preset
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.mobility import SPEED_REGIMES, speed_range_in_sides
from repro.metrics.stability import head_retention
from repro.metrics.tables import Table
from repro.util.errors import ConfigurationError
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.trace import topology_at
from repro.util.rng import spawn_rngs


def _density_heads(topology, _rng):
    clustering, _ = clustered(topology, use_dag=False)
    return clustering


METRICS = {
    "density": _density_heads,
    "degree": lambda topo, rng: degree_clustering(topo.graph,
                                                  tie_ids=topo.ids),
    "lowest-id": lambda topo, rng: lowest_id_clustering(topo.graph,
                                                        tie_ids=topo.ids),
    "max-min (d=2)": lambda topo, rng: maxmin_clustering(topo.graph, d=2,
                                                         tie_ids=topo.ids),
}


def _run_trace(task):
    """One mobility trace; returns per-metric observation lists."""
    nodes, speed_range, radius, windows, mobility_window, run_rng = task
    model = RandomDirectionModel(nodes, speed_range, rng=run_rng)
    retention = {name: [] for name in METRICS}
    membership_kept = {name: [] for name in METRICS}
    cluster_counts = {name: [] for name in METRICS}
    previous = {name: None for name in METRICS}
    for _ in range(windows + 1):
        topology = topology_at(model.positions, radius)
        for name, build in METRICS.items():
            clustering = build(topology, run_rng)
            cluster_counts[name].append(clustering.cluster_count)
            if previous[name] is not None:
                retention[name].append(head_retention(
                    previous[name].heads, clustering.heads))
                membership_kept[name].append(_membership_retention(
                    previous[name], clustering))
            previous[name] = clustering
        model.advance(mobility_window)
    return {"retention": retention, "membership": membership_kept,
            "counts": cluster_counts}


def _build(preset, rng, options):
    speed_range = speed_range_in_sides(SPEED_REGIMES[options["regime"]])
    windows = int(round(preset.mobility_duration / preset.mobility_window))
    return [(preset.mobility_nodes, speed_range, options["radius"], windows,
             preset.mobility_window, run_rng)
            for run_rng in spawn_rngs(rng, options["runs"])]


def _reduce(preset, tasks, results, options):
    merged = {name: {"retention": [], "membership": [], "counts": []}
              for name in METRICS}
    for trace in results:
        for name in METRICS:
            merged[name]["retention"].extend(trace["retention"][name])
            merged[name]["membership"].extend(trace["membership"][name])
            merged[name]["counts"].extend(trace["counts"][name])
    table = Table(
        title=(f"Metric stability under {options['regime']} mobility "
               f"({preset.mobility_nodes} nodes, "
               f"{preset.mobility_duration:.0f}s x "
               f"{options['runs']} trace(s))"),
        headers=["metric", "% heads retained / window",
                 "% nodes keeping their head", "mean #clusters"],
    )
    for name in METRICS:
        series = merged[name]
        if not series["retention"]:
            raise ConfigurationError("no retention windows observed")
        table.add_row([
            name,
            100.0 * sum(series["retention"]) / len(series["retention"]),
            100.0 * sum(series["membership"]) / len(series["membership"]),
            sum(series["counts"]) / len(series["counts"]),
        ])
    return table


COMPARISON_SPEC = ExperimentSpec(name="comparison", build=_build,
                                 run=_run_trace, reduce=_reduce)


def run_comparison(preset="quick", regime="pedestrian", radius=0.1, rng=None,
                   runs=1, jobs=1):
    """Head retention per clustering metric over shared mobility traces."""
    return run_experiment(COMPARISON_SPEC, get_preset(preset), rng=rng,
                          jobs=jobs, regime=regime, radius=radius, runs=runs)


def _membership_retention(before, after):
    """Fraction of nodes whose cluster-head assignment survived the window.

    Head *retention* compares head sets only and favors metrics anchored
    to immutable identifiers (a max-min head keeps its role as long as it
    stays the area's max id); membership retention instead measures how
    much of the network gets re-homed, the cost [16] cares about when
    routing tables must be rebuilt.
    """
    common = set(before.head_of) & set(after.head_of)
    kept = sum(before.head_of[node] == after.head_of[node]
               for node in common)
    return kept / len(common) if common else 1.0
