"""Metric comparison: density vs degree vs lowest-ID vs max-min.

Section 3 ("Features") cites [16]'s finding that the density heuristic is
more stable under mobility than the degree and max-min metrics.  This
experiment replays one mobility trace per run and measures head retention
for every metric over the same topology sequence, making the comparison
paired.  It also reports mean cluster counts, since stability alone is
trivially won by degenerate clusterings.

Traces execute through the parallel experiment engine; each trace is one
task with its own pre-spawned generator, and the reducer concatenates the
per-window observations in task order, so the table is identical for
every ``jobs`` value.  The per-window clusterings come from the shared
:mod:`~repro.experiments.metric_windows` walk: the delta stream through
the incremental engines by default, scratch rebuilds on request
(``dynamics="rebuild"``) -- identical tables either way.
"""

from repro.experiments.common import get_preset
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.metric_windows import (METRIC_SCRATCH, check_dynamics,
                                              metric_windows, model_snapshots)
from repro.experiments.mobility import SPEED_REGIMES, speed_range_in_sides
from repro.metrics.stability import head_retention
from repro.metrics.tables import Table
from repro.util.errors import ConfigurationError
from repro.mobility.random_direction import RandomDirectionModel
from repro.util.rng import spawn_rngs

METRICS = METRIC_SCRATCH


def _run_trace(task):
    """One mobility trace; returns per-metric observation lists."""
    (nodes, speed_range, radius, windows, mobility_window, dynamics,
     run_rng) = task
    model = RandomDirectionModel(nodes, speed_range, rng=run_rng)
    retention = {name: [] for name in METRICS}
    membership_kept = {name: [] for name in METRICS}
    cluster_counts = {name: [] for name in METRICS}
    previous = {name: None for name in METRICS}
    snapshots = model_snapshots(model, windows, mobility_window)
    for clusterings in metric_windows(snapshots, radius, dynamics=dynamics):
        for name, clustering in clusterings.items():
            cluster_counts[name].append(clustering.cluster_count)
            if previous[name] is not None:
                retention[name].append(head_retention(
                    previous[name].heads, clustering.heads))
                membership_kept[name].append(_membership_retention(
                    previous[name], clustering))
            previous[name] = clustering
    return {"retention": retention, "membership": membership_kept,
            "counts": cluster_counts}


def _build(preset, rng, options):
    speed_range = speed_range_in_sides(SPEED_REGIMES[options["regime"]])
    windows = int(round(preset.mobility_duration / preset.mobility_window))
    dynamics = check_dynamics(options.get("dynamics", "delta"))
    return [(preset.mobility_nodes, speed_range, options["radius"], windows,
             preset.mobility_window, dynamics, run_rng)
            for run_rng in spawn_rngs(rng, options["runs"])]


def _reduce(preset, tasks, results, options):
    merged = {name: {"retention": [], "membership": [], "counts": []}
              for name in METRICS}
    for trace in results:
        for name in METRICS:
            merged[name]["retention"].extend(trace["retention"][name])
            merged[name]["membership"].extend(trace["membership"][name])
            merged[name]["counts"].extend(trace["counts"][name])
    table = Table(
        title=(f"Metric stability under {options['regime']} mobility "
               f"({preset.mobility_nodes} nodes, "
               f"{preset.mobility_duration:.0f}s x "
               f"{options['runs']} trace(s))"),
        headers=["metric", "% heads retained / window",
                 "% nodes keeping their head", "mean #clusters"],
    )
    for name in METRICS:
        series = merged[name]
        if not series["retention"]:
            raise ConfigurationError("no retention windows observed")
        table.add_row([
            name,
            100.0 * sum(series["retention"]) / len(series["retention"]),
            100.0 * sum(series["membership"]) / len(series["membership"]),
            sum(series["counts"]) / len(series["counts"]),
        ])
    return table


COMPARISON_SPEC = ExperimentSpec(name="comparison", build=_build,
                                 run=_run_trace, reduce=_reduce)


def run_comparison(preset="quick", regime="pedestrian", radius=0.1, rng=None,
                   runs=1, jobs=1, dynamics="delta", topology=None):
    """Head retention per clustering metric over shared mobility traces.

    ``topology`` (a list of generator specs) switches the family to the
    static off-UDG robustness table: mobility traces need geometry, so
    arbitrary generators are instead compared by cluster count, head
    eccentricity and routing stretch at matched mean degree -- see
    :func:`repro.experiments.robustness.run_robustness`.
    """
    if topology:
        # Deferred import: robustness composes scalability's helpers,
        # keeping this module import-light for the mobility-only path.
        from repro.experiments.robustness import run_robustness
        return run_robustness(topology, preset=preset, radius=radius,
                              rng=rng, runs=runs, jobs=jobs)
    return run_experiment(COMPARISON_SPEC, get_preset(preset), rng=rng,
                          jobs=jobs, regime=regime, radius=radius, runs=runs,
                          dynamics=dynamics)


def _membership_retention(before, after):
    """Fraction of nodes whose cluster-head assignment survived the window.

    Head *retention* compares head sets only and favors metrics anchored
    to immutable identifiers (a max-min head keeps its role as long as it
    stays the area's max id); membership retention instead measures how
    much of the network gets re-homed, the cost [16] cares about when
    routing tables must be rebuilt.
    """
    common = set(before.head_of) & set(after.head_of)
    kept = sum(before.head_of[node] == after.head_of[node]
               for node in common)
    return kept / len(common) if common else 1.0
