"""Scalability experiment: routing state, flat vs hierarchical.

The paper's introduction motivates clustering with the scalability of
hierarchical routing; this experiment quantifies it on the reproduced
stack.  For growing deployments it reports the mean per-node routing
state under flat routing (``n - 1``) and under the cluster hierarchy, and
the path-stretch price paid for the savings.

Deployment sizes execute through the parallel experiment engine, one
task per size with its own pre-spawned generator.
"""

import numpy as np

from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.graph.generators import uniform_topology
from repro.graph.paths import connected_components
from repro.hierarchy.hierarchy import build_hierarchy
from repro.hierarchy.routing import route_stretch
from repro.metrics.tables import Table
from repro.util.rng import spawn_rngs


def _largest_component_topology(topology):
    components = connected_components(topology.graph)
    largest = max(components, key=len)
    if len(largest) == len(topology.graph):
        return topology
    from repro.graph.generators import Topology
    graph = topology.graph.induced_subgraph(largest)
    positions = {n: topology.positions[n] for n in largest} \
        if topology.positions else None
    ids = {n: topology.ids[n] for n in largest}
    return Topology(graph, positions=positions, ids=ids,
                    radius=topology.radius)


def _run_one(task):
    """One deployment size; returns its full table row."""
    size, radius, pairs, run_rng = task
    topology = _largest_component_topology(
        uniform_topology(size, radius, rng=run_rng))
    hierarchy = build_hierarchy(topology, rng=run_rng)
    nodes = topology.graph.nodes
    flat_state = len(nodes) - 1
    hier_state = float(np.mean([hierarchy.routing_state(n) for n in nodes]))
    stretches = []
    node_array = list(nodes)
    for _ in range(pairs):
        a, b = run_rng.choice(len(node_array), 2, replace=False)
        _, _, stretch = route_stretch(hierarchy, node_array[int(a)],
                                      node_array[int(b)])
        stretches.append(stretch)
    return [len(nodes), flat_state, hier_state,
            flat_state / max(hier_state, 1e-9),
            hierarchy.depth,
            float(np.mean(stretches))]


def _build(preset, rng, options):
    sizes = options["sizes"]
    return [(size, options["radius"], options["pairs"], run_rng)
            for size, run_rng in zip(sizes, spawn_rngs(rng, len(sizes)))]


def _reduce(preset, tasks, results, options):
    table = Table(
        title=("Scalability: per-node routing state, flat vs hierarchical "
               f"(R={options['radius']}, {options['pairs']} sampled pairs)"),
        headers=["nodes", "flat state", "hier state", "savings x",
                 "levels", "mean stretch"],
    )
    for row in results:
        table.add_row(row)
    return table


SCALABILITY_SPEC = ExperimentSpec(name="scalability", build=_build,
                                  run=_run_one, reduce=_reduce)


def run_scalability(sizes=(200, 400, 800), radius=0.12, pairs=40, rng=None,
                    jobs=1):
    """Routing state and stretch per deployment size; returns a Table."""
    return run_experiment(SCALABILITY_SPEC, rng=rng, jobs=jobs,
                          sizes=tuple(sizes), radius=radius, pairs=pairs)
