"""Scalability experiment: routing state, flat vs hierarchical.

The paper's introduction motivates clustering with the scalability of
hierarchical routing; this experiment quantifies it on the reproduced
stack.  For growing deployments it reports the mean per-node routing
state under flat routing (``n - 1``) and under the cluster hierarchy, and
the path-stretch price paid for the savings.

The topology and hierarchy for each deployment size are built once in
the parent; the Monte-Carlo part -- sampling source/destination pairs
and routing them -- fans out as per-size *chunks* that each carry the
hierarchy and a pre-spawned generator.  On the pool backend the
hierarchy's physical graph therefore pickles as a shared-memory handle
(:mod:`repro.graph.shm`), not as an adjacency copy per task.  The
shipped hierarchy is built on a positions-free topology: routing and
stretch never read coordinates, so the per-task payload stays at the
clustering state rather than the geometry.
"""

import numpy as np

from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.graph.generators import Topology, uniform_topology
from repro.graph.paths import connected_components
from repro.hierarchy.hierarchy import build_hierarchy
from repro.metrics.tables import Table
from repro.workload.serve import CachedRouter
from repro.util.rng import spawn_rngs

# Stretch sampling fans out over at most this many chunks per size; more
# would ship the hierarchy more often than the sampling is worth.
DEFAULT_CHUNKS = 4


def _largest_component_topology(topology):
    components = connected_components(topology.graph)
    largest = max(components, key=len)
    if len(largest) == len(topology.graph):
        return topology
    graph = topology.graph.induced_subgraph(largest)
    positions = {n: topology.positions[n] for n in largest} \
        if topology.positions else None
    ids = {n: topology.ids[n] for n in largest}
    return Topology(graph, positions=positions, ids=ids,
                    radius=topology.radius)


def _strip_positions(topology):
    """The same topology without coordinates (smaller task payloads)."""
    if not topology.positions:
        return topology
    return Topology(topology.graph, positions=None, ids=topology.ids,
                    radius=topology.radius)


def _run_one(task):
    """One chunk of sampled pairs; returns the list of their stretches.

    Stretch is computed through a per-chunk :class:`CachedRouter`: its
    ``route_stretch`` mirrors ``hierarchy.routing.route_stretch`` output
    for output while reusing sub-CSR legs, overlay trees, and flat BFS
    answers across the chunk's samples.
    """
    index, _prefix, hierarchy, count, chunk_rng = task
    nodes = list(hierarchy.physical.topology.graph.nodes)
    router = CachedRouter(hierarchy)
    stretches = []
    for _ in range(count):
        a, b = chunk_rng.choice(len(nodes), 2, replace=False)
        _, _, stretch = router.route_stretch(nodes[int(a)], nodes[int(b)])
        stretches.append(stretch)
    return stretches


def _build(preset, rng, options):
    sizes = options["sizes"]
    radius = options["radius"]
    pairs = options["pairs"]
    chunks = max(1, min(pairs, options.get("chunks") or DEFAULT_CHUNKS))
    tasks = []
    for index, (size, run_rng) in enumerate(
            zip(sizes, spawn_rngs(rng, len(sizes)))):
        topology = _strip_positions(_largest_component_topology(
            uniform_topology(size, radius, rng=run_rng)))
        hierarchy = build_hierarchy(topology, rng=run_rng)
        nodes = topology.graph.nodes
        flat_state = len(nodes) - 1
        hier_state = float(np.mean(
            [hierarchy.routing_state(n) for n in nodes]))
        prefix = [len(nodes), flat_state, hier_state,
                  flat_state / max(hier_state, 1e-9),
                  hierarchy.depth]
        counts = [pairs // chunks + (1 if c < pairs % chunks else 0)
                  for c in range(chunks)]
        for count, chunk_rng in zip(counts, spawn_rngs(run_rng, chunks)):
            tasks.append((index, prefix, hierarchy, count, chunk_rng))
    return tasks


def _reduce(preset, tasks, results, options):
    table = Table(
        title=("Scalability: per-node routing state, flat vs hierarchical "
               f"(R={options['radius']}, {options['pairs']} sampled pairs)"),
        headers=["nodes", "flat state", "hier state", "savings x",
                 "levels", "mean stretch"],
    )
    rows = {}
    order = []
    for task, stretches in zip(tasks, results):
        index, prefix = task[0], task[1]
        if index not in rows:
            rows[index] = (prefix, [])
            order.append(index)
        rows[index][1].extend(stretches)
    for index in order:
        prefix, stretches = rows[index]
        mean = float(np.mean(stretches)) if stretches else float("nan")
        table.add_row(list(prefix) + [mean])
    return table


SCALABILITY_SPEC = ExperimentSpec(name="scalability", build=_build,
                                  run=_run_one, reduce=_reduce)


def run_scalability(sizes=(200, 400, 800), radius=0.12, pairs=40, rng=None,
                    jobs=1, chunks=None):
    """Routing state and stretch per deployment size; returns a Table.

    ``chunks`` bounds how many stretch-sampling tasks each size fans out
    as (default :data:`DEFAULT_CHUNKS`, never more than ``pairs``).
    """
    return run_experiment(SCALABILITY_SPEC, rng=rng, jobs=jobs,
                          sizes=tuple(sizes), radius=radius, pairs=pairs,
                          chunks=chunks)
