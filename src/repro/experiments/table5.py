"""Table 5: cluster features on the adversarial grid.

Nodes on a regular grid with identifiers increasing left-to-right and
bottom-to-top: all interior nodes share the same density, so the
identifier is the only tie-break and -- without the DAG -- every node
ultimately joins a single cluster whose joining tree spans the network
(Figure 2).  With locally unique random DAG names the tie-breaks decouple
and many small clusters emerge (Figure 3).

Runs execute through the parallel experiment engine with the historical
RNG spawn order, so results are identical for every ``jobs`` value.
"""

from repro.experiments.common import build_topology, clustered, get_preset, \
    per_run_rngs, resolve_topology_spec
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.paper_values import TABLE4_RADII, TABLE5
from repro.metrics.clusters import cluster_stats, mean_stats
from repro.metrics.tables import Table

_CONFIGURATIONS = ((True, "with"), (False, "no"))


def _cell_runs(preset, use_dag):
    # The grid itself is deterministic; runs differ only in DAG name
    # draws, so the no-DAG case needs a single run.
    return preset.runs if use_dag else 1


def _run_one(task):
    intensity, radius, use_dag, spec, run_rng = task
    topology = build_topology("grid", intensity, radius, run_rng,
                              topology=spec)
    clustering, _dag_ids = clustered(topology, rng=run_rng, use_dag=use_dag)
    return cluster_stats(clustering)


def _spec_for(options, preset, radius):
    spec = options.get("topology")
    if spec is None:
        return None
    return resolve_topology_spec(spec, count=preset.intensity, radius=radius)


def _build(preset, rng, options):
    radii = options["radii"]
    cell_rngs = iter(per_run_rngs(rng, 2 * len(radii)))
    return [(preset.intensity, radius, use_dag,
             _spec_for(options, preset, radius), run_rng)
            for radius in radii
            for use_dag, _label in _CONFIGURATIONS
            for run_rng in per_run_rngs(next(cell_rngs),
                                        _cell_runs(preset, use_dag))]


def _reduce(preset, tasks, results, options):
    radii = options["radii"]
    deployment = ("the grid with sequential ids"
                  if options.get("topology") is None
                  else f"{options['topology']} (degree matched per R)")
    table = Table(
        title=(f"Table 5: clusters on {deployment} "
               f"(~{preset.intensity} nodes, {preset.runs} runs; "
               "paper in parens)"),
        headers=["R", "DAG", "#clusters", "eccentricity", "tree length",
                 "paper (#, ecc, tree)"],
    )
    result_iter = iter(results)
    for radius in radii:
        for use_dag, label in _CONFIGURATIONS:
            stats = mean_stats([next(result_iter)
                                for _ in range(_cell_runs(preset, use_dag))])
            reference = TABLE5.get(radius, {}).get(
                "with" if use_dag else "without", "-")
            table.add_row([radius, label, stats.cluster_count,
                           stats.mean_head_eccentricity,
                           stats.mean_tree_length, f"({reference})"])
    return table


TABLE5_SPEC = ExperimentSpec(name="table5", build=_build, run=_run_one,
                             reduce=_reduce)


def run_table5(preset="quick", radii=TABLE4_RADII, rng=None, jobs=1,
               topology=None):
    """Regenerate Table 5; returns a Table.

    ``topology`` swaps the adversarial grid for any registered generator
    spec (the DAG columns then measure tie-break decoupling on that
    model's own identifier layout).
    """
    return run_experiment(TABLE5_SPEC, get_preset(preset), rng=rng,
                          jobs=jobs, radii=radii, topology=topology)
