"""Table 5: cluster features on the adversarial grid.

Nodes on a regular grid with identifiers increasing left-to-right and
bottom-to-top: all interior nodes share the same density, so the
identifier is the only tie-break and -- without the DAG -- every node
ultimately joins a single cluster whose joining tree spans the network
(Figure 2).  With locally unique random DAG names the tie-breaks decouple
and many small clusters emerge (Figure 3).
"""

from repro.experiments.common import build_topology, clustered, get_preset, \
    per_run_rngs
from repro.experiments.paper_values import TABLE4_RADII, TABLE5
from repro.metrics.clusters import cluster_stats, mean_stats
from repro.metrics.tables import Table


def grid_statistics(preset, radius, rng, use_dag):
    """Mean :class:`ClusterStats` over grid runs.

    The grid itself is deterministic; runs differ only in DAG name draws,
    so the no-DAG case needs a single run.
    """
    runs = preset.runs if use_dag else 1
    stats = []
    for run_rng in per_run_rngs(rng, runs):
        topology = build_topology("grid", preset.intensity, radius, run_rng)
        clustering, _dag_ids = clustered(topology, rng=run_rng,
                                         use_dag=use_dag)
        stats.append(cluster_stats(clustering))
    return mean_stats(stats)


def run_table5(preset="quick", radii=TABLE4_RADII, rng=None):
    """Regenerate Table 5; returns a Table."""
    preset = get_preset(preset)
    table = Table(
        title=(f"Table 5: clusters on the grid with sequential ids "
               f"(~{preset.intensity} nodes, {preset.runs} runs; "
               "paper in parens)"),
        headers=["R", "DAG", "#clusters", "eccentricity", "tree length",
                 "paper (#, ecc, tree)"],
    )
    rngs = per_run_rngs(rng, 2 * len(radii))
    rng_iter = iter(rngs)
    for radius in radii:
        for use_dag, label in ((True, "with"), (False, "no")):
            stats = grid_statistics(preset, radius, next(rng_iter), use_dag)
            reference = TABLE5.get(radius, {}).get(
                "with" if use_dag else "without", "-")
            table.add_row([radius, label, stats.cluster_count,
                           stats.mean_head_eccentricity,
                           stats.mean_tree_length, f"({reference})"])
    return table
