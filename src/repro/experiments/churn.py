"""Churn experiment: self-stabilization under node arrivals/departures.

Runs the full protocol stack through churn epochs: each epoch the node
population changes (departures take their state with them; arrivals boot
fresh), the simulator's topology is swapped, and the stack gets a fixed
budget of steps to re-stabilize.  Reported per churn intensity:

* the fraction of epochs in which full legitimacy was re-reached within
  the budget ("ready fraction");
* the mean number of steps to re-legitimacy over the epochs that made it.

The shape claim: recovery cost is local -- moderate churn heals within a
near-constant number of steps, because the density metric and the DAG
keep the affected region small (the robustness argument of Section 2).
"""

from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.metrics.tables import Table
from repro.mobility.churn import ChurnProcess
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.stabilization.monitor import steps_to_legitimacy
from repro.stabilization.predicates import make_stack_predicate
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng, spawn_rngs


def run_churn_epochs(initial_count, radius, leave_probability, arrival_rate,
                     epochs, rng=None, step_budget=60, dynamics="delta"):
    """One churn run; returns ``(ready_epochs, total_epochs, mean_steps)``.

    ``dynamics="delta"`` (default) maintains one
    :class:`~repro.graph.dynamic.DynamicTopology` across epochs -- the
    graph, triangle, and density state downstream of each epoch's edge
    delta is updated in place (the geometry grid itself re-joins over
    the surviving population) -- while ``"rebuild"`` reconstructs every
    epoch's topology from scratch.
    The two runs are bit-identical: the maintained graph preserves the
    sorted node order and CSR layout the simulator's determinism depends
    on, and the churn process itself consumes the RNG identically.
    """
    if dynamics not in ("delta", "rebuild"):
        raise ConfigurationError(
            f"unknown dynamics {dynamics!r}; expected 'delta' or 'rebuild'")
    rng = as_rng(rng)
    delta = dynamics == "delta"
    process = ChurnProcess(initial_count, radius, leave_probability,
                           arrival_rate, rng=rng)
    topology = process.dynamics().topology if delta else process.topology()
    stack = standard_stack(namespace=4 * initial_count)
    simulator = StepSimulator(topology, stack, rng=rng)
    predicate = make_stack_predicate()
    steps_to_legitimacy(simulator, predicate, 300)

    ready = 0
    steps_total = 0.0
    for _ in range(epochs):
        if delta:
            simulator.set_topology(process.epoch_update().topology)
        else:
            process.epoch()
            simulator.set_topology(process.topology())
        report = steps_to_legitimacy(simulator, predicate, step_budget)
        if report.converged:
            ready += 1
            steps_total += report.steps
    mean_steps = steps_total / ready if ready else float(step_budget)
    return ready, epochs, mean_steps


def _run_one(task):
    initial_count, radius, leave_probability, arrival_rate, epochs, \
        run_rng = task
    return run_churn_epochs(initial_count, radius, leave_probability,
                            arrival_rate, epochs, rng=run_rng)


def _build(preset, rng, options):
    # spawn_rngs is called once per churn level with the caller's raw
    # argument, matching the historical loop.
    return [(options["initial_count"], options["radius"], leave_probability,
             arrival_rate, options["epochs"], run_rng)
            for leave_probability, arrival_rate in options["churn_levels"]
            for run_rng in spawn_rngs(rng, options["runs"])]


def _reduce(preset, tasks, results, options):
    runs = options["runs"]
    table = Table(
        title=(f"Churn recovery ({options['initial_count']} nodes, "
               f"R={options['radius']}, "
               f"{options['epochs']} epochs x {runs} runs)"),
        headers=["leave prob", "arrival rate", "ready fraction %",
                 "mean recovery steps"],
    )
    result_iter = iter(results)
    for leave_probability, arrival_rate in options["churn_levels"]:
        ready_total = 0
        epoch_total = 0
        steps_accumulated = 0.0
        for _ in range(runs):
            ready, total, mean_steps = next(result_iter)
            ready_total += ready
            epoch_total += total
            steps_accumulated += mean_steps
        table.add_row([leave_probability, arrival_rate,
                       100.0 * ready_total / epoch_total,
                       steps_accumulated / runs])
    return table


CHURN_SPEC = ExperimentSpec(name="churn", build=_build, run=_run_one,
                            reduce=_reduce)


def run_churn_experiment(initial_count=60, radius=0.22, epochs=15, runs=2,
                         rng=None, jobs=1,
                         churn_levels=((0.0, 0.0), (0.05, 3.0), (0.15, 9.0))):
    """Sweep churn intensities; returns a Table.

    ``churn_levels`` pairs a per-epoch leave probability with a Poisson
    arrival rate (matched so the population stays roughly stationary).
    """
    return run_experiment(CHURN_SPEC, rng=rng, jobs=jobs,
                          initial_count=initial_count, radius=radius,
                          epochs=epochs, runs=runs,
                          churn_levels=tuple(churn_levels))
