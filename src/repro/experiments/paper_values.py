"""The numbers the paper reports, for side-by-side comparison.

Transcribed from the INRIA RR-5426 text.  Benches print "paper vs
measured" columns from these constants; EXPERIMENTS.md records the
comparison.  Absolute agreement is not expected (the paper's simulator,
node counts and mobility law are underspecified); *shape* agreement is.
"""

# Table 1: densities of the Figure 1 example (node -> (neighbors, links,
# density)).  Node g appears in the figure's label row but not in the
# table; the reconstruction in repro.graph.generators covers the 9
# tabulated nodes.
TABLE1 = {
    "a": (2, 2, 1.0),
    "b": (4, 5, 1.25),
    "c": (1, 1, 1.0),
    "d": (4, 5, 1.25),
    "e": (1, 1, 1.0),
    "f": (2, 3, 1.5),
    "h": (2, 3, 1.5),
    "i": (4, 5, 1.25),
    "j": (2, 3, 1.5),
}

# Table 2: what a node can compute after each step.
TABLE2 = {
    1: "neighborhood table",
    2: "its density",
    3: "its father",
}

# Table 3: mean steps to build the DAG, lambda = 1000.
TABLE3_RADII = (0.05, 0.06, 0.07, 0.08, 0.09, 0.1)
TABLE3 = {
    "grid": {0.05: 2.20, 0.06: 2.17, 0.07: 2.06, 0.08: 2.01, 0.09: 2.01,
             0.1: 2.0},
    "random": {0.05: 2.0, 0.06: 2.0, 0.07: 2.0, 0.08: 1.9, 0.09: 2.0,
               0.1: 1.9},
}

# Table 4: random geometric graph, lambda = 1000;
# radius -> {"with"/"without" DAG -> (#clusters, eccentricity, tree length)}.
TABLE4_RADII = (0.05, 0.08, 0.1)
TABLE4 = {
    0.05: {"with": (61.0, 2.6, 2.7), "without": (61.4, 2.6, 2.7)},
    0.08: {"with": (19.2, 3.1, 3.3), "without": (19.5, 3.1, 3.3)},
    0.1: {"with": (11.7, 3.2, 3.5), "without": (11.7, 3.2, 3.5)},
}

# Table 5: grid with sequential identifiers, ~1000 nodes.
TABLE5 = {
    0.05: {"with": (52.8, 3.4, 3.7), "without": (1.0, 29.1, 83.4)},
    0.08: {"with": (29.3, 4.1, 4.7), "without": (1.0, 19.1, 100.5)},
    0.1: {"with": (18.5, 3.6, 4.5), "without": (1.0, 6.5, 32.1)},
}

# Section 5 mobility experiment: mean % of heads re-elected per 2 s window.
# speed regime -> (with improvement rules, without).
MOBILITY = {
    "pedestrian": {"improved": 82.0, "basic": 78.0, "speed_range_mps": (0.0, 1.6)},
    "vehicular": {"improved": 31.0, "basic": 25.0, "speed_range_mps": (0.0, 10.0)},
}

# Experiment-wide constants of Section 5.
POISSON_INTENSITY = 1000
GRID_NODE_TARGET = 1000
PAPER_RUNS = 1000
MOBILITY_DURATION_S = 15 * 60
MOBILITY_WINDOW_S = 2.0
SQUARE_SIDE_METERS = 1000.0  # interpretation of the 1x1 square (see DESIGN.md)
