"""Overhead experiment: the traffic cost of cluster maintenance.

Two measurements back the paper's motivation that the density metric
"limits the exchanged traffic generated while clusters are re-built and
the nodes' tables updated":

* **re-affiliation churn** -- under mobility, how many nodes change
  cluster-heads per window, per metric (each change is routing-table
  update traffic).  Measured over the same traces for all metrics.
* **beacon cost** -- bytes per step broadcast by the protocol stack on
  the wire-level model, per configuration (the fusion summary is the
  expensive payload; this quantifies what the 3-hop head separation
  costs in steady state).

Both run through the parallel experiment engine: churn fans out one task
per mobility trace, beacon cost one task per protocol configuration.
"""

from repro.experiments.common import get_preset, resolve_topology_spec
from repro.graph.models.registry import build_topology_spec
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.metric_windows import (METRIC_SCRATCH, check_dynamics,
                                              metric_windows, model_snapshots)
from repro.experiments.mobility import SPEED_REGIMES, speed_range_in_sides
from repro.graph.generators import uniform_topology
from repro.metrics.overhead import reaffiliations
from repro.metrics.tables import Table
from repro.mobility.random_direction import RandomDirectionModel
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.util.rng import spawn_rngs

_METRICS = METRIC_SCRATCH


# ----------------------------------------------------------------------
# Re-affiliation churn
# ----------------------------------------------------------------------

def _run_churn_trace(task):
    """One trace; returns total re-affiliations per metric.

    With a topology spec the trace is *resampled*: each window draws an
    independent deployment from the same generator, so the measured
    churn is the identifier-anchoring floor -- how much affiliation a
    metric retains when the topology is completely redrawn (max-min's
    id anchoring survives it; density's structural heads do not).
    """
    (nodes, speed_range, radius, windows, mobility_window, dynamics, spec,
     run_rng) = task
    totals = {name: 0.0 for name in _METRICS}
    previous = {name: None for name in _METRICS}
    if spec is not None:
        window_clusterings = _resample_windows(spec, windows, run_rng)
    else:
        model = RandomDirectionModel(nodes, speed_range, rng=run_rng)
        snapshots = model_snapshots(model, windows, mobility_window)
        window_clusterings = metric_windows(snapshots, radius,
                                            dynamics=dynamics)
    for clusterings in window_clusterings:
        for name, clustering in clusterings.items():
            if previous[name] is not None:
                totals[name] += reaffiliations(previous[name], clustering)
            previous[name] = clustering
    return totals


def _resample_windows(spec, windows, run_rng):
    """Per-window clusterings over independent draws of ``spec``."""
    for window_rng in spawn_rngs(run_rng, windows + 1):
        topology = build_topology_spec(spec, rng=window_rng)
        yield {name: scratch(topology)
               for name, scratch in _METRICS.items()}


def _build_churn(preset, rng, options):
    speed_range = speed_range_in_sides(SPEED_REGIMES[options["regime"]])
    windows = int(round(preset.mobility_duration / preset.mobility_window))
    dynamics = check_dynamics(options.get("dynamics", "delta"))
    spec = options.get("topology")
    if spec is not None:
        spec = resolve_topology_spec(spec, count=preset.mobility_nodes,
                                     radius=options["radius"])
    return [(preset.mobility_nodes, speed_range, options["radius"], windows,
             preset.mobility_window, dynamics, spec, run_rng)
            for run_rng in spawn_rngs(rng, options["runs"])]


def _reduce_churn(preset, tasks, results, options):
    totals = {name: sum(trace[name] for trace in results)
              for name in _METRICS}
    windows = int(round(preset.mobility_duration / preset.mobility_window))
    window_count = options["runs"] * windows
    spec = tasks[0][6] if tasks else None
    regime = (f"total resampling of {spec}" if spec is not None
              else f"{options['regime']} mobility")
    table = Table(
        title=(f"Re-affiliation churn under {regime} "
               f"({preset.mobility_nodes} nodes, per window per 100 nodes)"),
        headers=["metric", "re-affiliations / window / 100 nodes"],
    )
    for name, total in totals.items():
        rate = 100.0 * total / (window_count * preset.mobility_nodes)
        table.add_row([name, rate])
    return table


REAFFILIATION_SPEC = ExperimentSpec(name="reaffiliation_churn",
                                    build=_build_churn,
                                    run=_run_churn_trace,
                                    reduce=_reduce_churn)


def run_reaffiliation_churn(preset="quick", regime="pedestrian", radius=0.1,
                            rng=None, runs=2, jobs=1, dynamics="delta",
                            topology=None):
    """Mean re-affiliations per window per 100 nodes, per metric.

    ``topology`` (a generator spec) replaces the mobility trace with
    independent per-window redraws of that topology -- the total-churn
    regime that isolates identifier anchoring from motion continuity.
    """
    return run_experiment(REAFFILIATION_SPEC, get_preset(preset), rng=rng,
                          jobs=jobs, regime=regime, radius=radius, runs=runs,
                          dynamics=dynamics, topology=topology)


# ----------------------------------------------------------------------
# Beacon cost
# ----------------------------------------------------------------------

_BEACON_CONFIGURATIONS = {
    "no DAG, basic": {"use_dag": False},
    "DAG, basic": {"use_dag": True},
    "DAG, fusion": {"use_dag": True, "fusion": True},
}


def _run_beacon(task):
    """Steady-state bytes per node per step for one configuration."""
    name, stack_options, nodes, radius, steps, run_rng = task
    topology = uniform_topology(nodes, radius, rng=42)
    sim = StepSimulator(topology, standard_stack(topology=topology,
                                                 **stack_options),
                        rng=run_rng)
    sim.run(10)  # converge first: steady-state payloads are the point
    sim.traffic = type(sim.traffic)()
    sim.run(steps)
    return sim.traffic.mean_bytes_per_step() / len(topology.graph)


def _build_beacon(preset, rng, options):
    run_rngs = spawn_rngs(rng, len(_BEACON_CONFIGURATIONS))
    return [(name, stack_options, options["nodes"], options["radius"],
             options["steps"], run_rng)
            for (name, stack_options), run_rng
            in zip(_BEACON_CONFIGURATIONS.items(), run_rngs)]


def _reduce_beacon(preset, tasks, results, options):
    table = Table(
        title=(f"Beacon cost ({options['nodes']} nodes, "
               f"R={options['radius']}, steady state over "
               f"{options['steps']} steps)"),
        headers=["configuration", "bytes / node / step"],
    )
    for task, cost in zip(tasks, results):
        table.add_row([task[0], cost])
    return table


BEACON_SPEC = ExperimentSpec(name="beacon_cost", build=_build_beacon,
                             run=_run_beacon, reduce=_reduce_beacon)


def run_beacon_cost(nodes=150, radius=0.15, steps=30, rng=None, jobs=1):
    """Steady-state broadcast bytes per node per step, per configuration."""
    return run_experiment(BEACON_SPEC, rng=rng, jobs=jobs, nodes=nodes,
                          radius=radius, steps=steps)
