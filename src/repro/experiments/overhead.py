"""Overhead experiment: the traffic cost of cluster maintenance.

Two measurements back the paper's motivation that the density metric
"limits the exchanged traffic generated while clusters are re-built and
the nodes' tables updated":

* **re-affiliation churn** -- under mobility, how many nodes change
  cluster-heads per window, per metric (each change is routing-table
  update traffic).  Measured over the same traces for all metrics.
* **beacon cost** -- bytes per step broadcast by the protocol stack on
  the wire-level model, per configuration (the fusion summary is the
  expensive payload; this quantifies what the 3-hop head separation
  costs in steady state).
"""

from repro.clustering.baselines.degree import degree_clustering
from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.clustering.baselines.maxmin import maxmin_clustering
from repro.experiments.common import clustered, get_preset
from repro.experiments.mobility import SPEED_REGIMES, speed_range_in_sides
from repro.graph.generators import uniform_topology
from repro.metrics.overhead import reaffiliations
from repro.metrics.tables import Table
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.trace import topology_at
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.util.rng import as_rng, spawn_rngs

_METRICS = {
    "density": lambda topo: clustered(topo, use_dag=False)[0],
    "degree": lambda topo: degree_clustering(topo.graph, tie_ids=topo.ids),
    "lowest-id": lambda topo: lowest_id_clustering(topo.graph,
                                                   tie_ids=topo.ids),
    "max-min (d=2)": lambda topo: maxmin_clustering(topo.graph, d=2,
                                                    tie_ids=topo.ids),
}


def run_reaffiliation_churn(preset="quick", regime="pedestrian", radius=0.1,
                            rng=None, runs=2):
    """Mean re-affiliations per window per 100 nodes, per metric."""
    preset = get_preset(preset)
    rng = as_rng(rng)
    speed_range = speed_range_in_sides(SPEED_REGIMES[regime])
    windows = int(round(preset.mobility_duration / preset.mobility_window))
    totals = {name: 0.0 for name in _METRICS}
    observed = 0
    for run_rng in spawn_rngs(rng, runs):
        model = RandomDirectionModel(preset.mobility_nodes, speed_range,
                                     rng=run_rng)
        previous = {name: None for name in _METRICS}
        for _ in range(windows + 1):
            topology = topology_at(model.positions, radius)
            for name, build in _METRICS.items():
                clustering = build(topology)
                if previous[name] is not None:
                    totals[name] += reaffiliations(previous[name],
                                                   clustering)
                previous[name] = clustering
            observed += 1
            model.advance(preset.mobility_window)
    window_count = runs * windows
    table = Table(
        title=(f"Re-affiliation churn under {regime} mobility "
               f"({preset.mobility_nodes} nodes, per window per 100 nodes)"),
        headers=["metric", "re-affiliations / window / 100 nodes"],
    )
    for name, total in totals.items():
        rate = 100.0 * total / (window_count * preset.mobility_nodes)
        table.add_row([name, rate])
    return table


def run_beacon_cost(nodes=150, radius=0.15, steps=30, rng=None):
    """Steady-state broadcast bytes per node per step, per configuration."""
    rng = as_rng(rng)
    configurations = {
        "no DAG, basic": {"use_dag": False},
        "DAG, basic": {"use_dag": True},
        "DAG, fusion": {"use_dag": True, "fusion": True},
    }
    table = Table(
        title=(f"Beacon cost ({nodes} nodes, R={radius}, steady state over "
               f"{steps} steps)"),
        headers=["configuration", "bytes / node / step"],
    )
    for name, options in configurations.items():
        topology = uniform_topology(nodes, radius, rng=42)
        sim = StepSimulator(topology, standard_stack(topology=topology,
                                                     **options), rng=rng)
        sim.run(10)  # converge first: steady-state payloads are the point
        sim.traffic = type(sim.traffic)()
        sim.run(steps)
        table.add_row([name,
                       sim.traffic.mean_bytes_per_step() / len(topology.graph)])
    return table
