"""Table 2: the learning schedule of the step model.

The paper states that after step 1 every node knows its 1-neighbors, after
step 2 its 2-neighborhood (hence its density), and after step 3 its father;
head identities then need as many extra steps as the joining-tree depth.
This experiment runs the real protocol stack over an ideal channel and
records the first step at which each knowledge milestone holds globally.

Note on seeds: the engine port gave each deployment its own spawned
generator (the historical loop threaded one generator through all runs),
so fixed-seed numbers drifted once at that change; the milestone
structure (steps 1/2/3) is seed-independent.
"""

from repro.clustering.density import all_densities
from repro.clustering.oracle import compute_clustering
from repro.experiments.common import (
    build_topology,
    get_preset,
    resolve_topology_spec,
)
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.metrics.tables import Table
from repro.protocols.stack import standard_stack
from repro.runtime.simulator import StepSimulator
from repro.util.errors import ConvergenceError
from repro.util.rng import as_rng, spawn_rngs


def learning_milestones(topology, rng=None, max_steps=200, use_dag=False):
    """First steps at which each Table 2 milestone holds on every node.

    Returns a dict with keys ``"neighbors"``, ``"density"``, ``"father"``
    and ``"head"``.
    """
    rng = as_rng(rng)
    stack = standard_stack(topology=topology, use_dag=use_dag)
    simulator = StepSimulator(topology, stack, rng=rng)
    graph = topology.graph
    truth_density = all_densities(graph, exact=True)
    milestones = {}

    def check(name, condition):
        if name not in milestones and condition():
            milestones[name] = simulator.now

    def neighbors_known():
        return all(simulator.runtime(n).known_neighbors() == graph.neighbors(n)
                   for n in graph)

    def density_known():
        shared = simulator.shared_map("density")
        return all(shared[n] == truth_density[n] for n in graph)

    oracle = None

    def father_known():
        nonlocal oracle
        if oracle is None:
            dag_ids = simulator.shared_map("dag_id") if use_dag else None
            oracle = compute_clustering(graph, tie_ids=topology.ids,
                                        dag_ids=dag_ids)
        parents = simulator.shared_map("parent")
        return all(parents[n] == oracle.parent(n) for n in graph)

    def head_known():
        if oracle is None:
            return False
        heads = simulator.shared_map("head")
        return all(heads[n] == oracle.head(n) for n in graph)

    for _ in range(max_steps):
        simulator.step()
        check("neighbors", neighbors_known)
        check("density", density_known)
        if "density" in milestones:
            check("father", father_known)
        if "father" in milestones:
            check("head", head_known)
        if len(milestones) == 4:
            return milestones
    raise ConvergenceError(
        f"learning schedule incomplete after {max_steps} steps: {milestones}")


def _build(preset, rng, options):
    spec = options.get("topology")
    if spec is not None:
        spec = resolve_topology_spec(spec, count=round(preset.intensity / 4),
                                     radius=options["radius"])
    return [(preset.intensity / 4, options["radius"], spec, run_rng)
            for run_rng in spawn_rngs(rng, preset.runs)]


def _run_one(task):
    intensity, radius, spec, run_rng = task
    topology = build_topology("random", intensity, radius, run_rng,
                              topology=spec)
    if len(topology.graph) == 0:
        return None
    return learning_milestones(topology, rng=run_rng)


def _reduce(preset, tasks, results, options):
    totals = {"neighbors": 0.0, "density": 0.0, "father": 0.0, "head": 0.0}
    for milestones in results:
        if milestones is None:
            continue
        for key in totals:
            totals[key] += milestones[key]
    spec = tasks[0][2] if tasks else None
    deployment = "" if spec is None else f" on {spec}"
    table = Table(
        title=(f"Table 2: learning schedule{deployment} "
               "(mean first step, paper in parens)"),
        headers=["knowledge", "measured step", "paper"],
    )
    table.add_row(["1-neighbors (neighborhood table)",
                   totals["neighbors"] / preset.runs, "(1)"])
    table.add_row(["2-neighbors -> density",
                   totals["density"] / preset.runs, "(2)"])
    table.add_row(["neighbors' densities -> father",
                   totals["father"] / preset.runs, "(3)"])
    table.add_row(["cluster-head (3 + tree depth)",
                   totals["head"] / preset.runs, "(3 + depth)"])
    return table


TABLE2_SPEC = ExperimentSpec(name="table2", build=_build, run=_run_one,
                             reduce=_reduce)


def run_table2(preset="quick", radius=0.15, rng=None, jobs=1, topology=None):
    """Average milestone steps over random deployments; returns a Table.

    Each deployment gets its own independently spawned generator, so runs
    are order-independent and the table is identical for every ``jobs``.
    ``topology`` swaps the Poisson deployment for any registered
    generator spec (family defaults filled; explicit parameters win).
    """
    return run_experiment(TABLE2_SPEC, get_preset(preset), rng=rng,
                          jobs=jobs, radius=radius, topology=topology)
