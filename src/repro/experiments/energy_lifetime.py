"""Energy experiment: network lifetime, static vs energy-aware heads.

The paper keeps heads in place as long as possible (the incumbent rule
improves *stability*); its conclusion asks what happens when energy enters
the picture.  This experiment drains batteries by role over clustering
windows and compares the incumbent policy against energy-aware rotation
on the same deployments.
"""

from repro.energy.lifetime import simulate_lifetime
from repro.graph.generators import uniform_topology
from repro.metrics.tables import Table
from repro.util.rng import as_rng, spawn_rngs


def run_energy_lifetime(nodes=200, radius=0.15, windows=120, runs=3,
                        head_cost=4.0, member_cost=1.0, capacity=100.0,
                        rng=None):
    """Lifetime metrics per policy; returns a Table."""
    rng = as_rng(rng)
    table = Table(
        title=(f"Network lifetime over {windows} windows "
               f"({nodes} nodes, head cost {head_cost}x member cost "
               f"{member_cost}, {runs} runs)"),
        headers=["policy", "first death (window)", "half-life (window)",
                 "alive at end %", "head changes"],
    )
    accumulators = {policy: {"first": 0.0, "half": 0.0, "alive": 0.0,
                             "changes": 0.0}
                    for policy in ("static", "energy-aware")}
    for run_rng in spawn_rngs(rng, runs):
        topology = uniform_topology(nodes, radius, rng=run_rng)
        for policy, acc in accumulators.items():
            result = simulate_lifetime(topology, policy, windows,
                                       head_cost=head_cost,
                                       member_cost=member_cost,
                                       capacity=capacity)
            acc["first"] += result.first_death
            acc["half"] += result.half_life
            acc["alive"] += 100.0 * result.final_alive_fraction
            acc["changes"] += result.head_changes
    for policy, acc in accumulators.items():
        table.add_row([policy, acc["first"] / runs, acc["half"] / runs,
                       acc["alive"] / runs, acc["changes"] / runs])
    return table
