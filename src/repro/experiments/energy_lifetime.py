"""Energy experiment: network lifetime, static vs energy-aware heads.

The paper keeps heads in place as long as possible (the incumbent rule
improves *stability*); its conclusion asks what happens when energy enters
the picture.  This experiment drains batteries by role over clustering
windows and compares the incumbent policy against energy-aware rotation
on the same deployments.

Deployments execute through the parallel experiment engine: one task per
deployment, both policies evaluated on the same topology inside the task
so the comparison stays paired under any ``jobs`` value.
"""

from repro.energy.lifetime import simulate_lifetime
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.graph.generators import uniform_topology
from repro.metrics.tables import Table
from repro.util.rng import spawn_rngs

_POLICIES = ("static", "energy-aware")


def _run_one(task):
    """One deployment; returns per-policy lifetime metrics."""
    nodes, radius, windows, head_cost, member_cost, capacity, run_rng = task
    topology = uniform_topology(nodes, radius, rng=run_rng)
    metrics = {}
    for policy in _POLICIES:
        result = simulate_lifetime(topology, policy, windows,
                                   head_cost=head_cost,
                                   member_cost=member_cost,
                                   capacity=capacity)
        metrics[policy] = (result.first_death, result.half_life,
                           100.0 * result.final_alive_fraction,
                           result.head_changes)
    return metrics


def _build(preset, rng, options):
    return [(options["nodes"], options["radius"], options["windows"],
             options["head_cost"], options["member_cost"],
             options["capacity"], run_rng)
            for run_rng in spawn_rngs(rng, options["runs"])]


def _reduce(preset, tasks, results, options):
    runs = options["runs"]
    table = Table(
        title=(f"Network lifetime over {options['windows']} windows "
               f"({options['nodes']} nodes, "
               f"head cost {options['head_cost']}x member cost "
               f"{options['member_cost']}, {runs} runs)"),
        headers=["policy", "first death (window)", "half-life (window)",
                 "alive at end %", "head changes"],
    )
    for policy in _POLICIES:
        sums = [0.0, 0.0, 0.0, 0.0]
        for metrics in results:
            for index, value in enumerate(metrics[policy]):
                sums[index] += value
        table.add_row([policy] + [value / runs for value in sums])
    return table


ENERGY_SPEC = ExperimentSpec(name="energy_lifetime", build=_build,
                             run=_run_one, reduce=_reduce)


def run_energy_lifetime(nodes=200, radius=0.15, windows=120, runs=3,
                        head_cost=4.0, member_cost=1.0, capacity=100.0,
                        rng=None, jobs=1):
    """Lifetime metrics per policy; returns a Table."""
    return run_experiment(ENERGY_SPEC, rng=rng, jobs=jobs, nodes=nodes,
                          radius=radius, windows=windows, runs=runs,
                          head_cost=head_cost, member_cost=member_cost,
                          capacity=capacity)
