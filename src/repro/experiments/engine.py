"""Unified parallel experiment engine with pluggable execution backends.

Every experiment family in this package is a Monte-Carlo average over
independent runs (the paper's Tables 2-5 average 1000 deployments each).
:func:`run_experiment` factors that shape out: a family declares an
:class:`ExperimentSpec` -- a *workload builder* that expands a preset into
a flat list of per-run task descriptions, a *per-run function* that
executes one task, and a *reducer* that folds the per-run results back
into the family's table -- and the engine decides how the runs execute.

Execution is delegated to an :class:`Executor`:

* :class:`SerialExecutor` runs the tasks in-process in submission order,
  bit-for-bit identical to the historical hand-written loops: builders
  spawn per-run generators with the same :func:`repro.util.rng.spawn_rngs`
  calls, in the same order, the old loops used.
* :class:`PoolExecutor` fans the tasks out over a ``multiprocessing``
  pool; ``Pool.map`` preserves ordering, so the reducer sees the exact
  same result sequence as the serial path.
* :class:`~repro.experiments.distributed.DistributedExecutor` (the
  ``"distributed"`` backend) streams task chunks to TCP workers -- on
  this host or remote ones -- and reassembles the results in submission
  order, so the output is again identical regardless of worker count,
  scheduling, or mid-run worker failures.

Because every task carries its own pre-spawned RNG and every executor
returns results in submission order, the reduced output is identical for
any backend.  Backends are selected per call (``backend=``/``executor=``),
or ambiently for a whole program via :func:`use_executor` /
:func:`set_default_executor` -- which is how the CLI and pytest wire
``--backend`` through without touching any experiment family.

Requirements on spec components:

* ``run`` must be a module-level function (workers pickle it by
  qualified name) and tasks/results must be picklable;
* ``build`` receives the *raw* ``rng`` argument (seed, generator or
  ``None``) so families can reproduce their historical coercion order;
* ``reduce`` runs in the parent and is free to build :class:`Table`\\ s.
"""

import os
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Callable

from repro.experiments.common import get_preset
from repro.graph.shm import share_graphs
from repro.util.errors import ConfigurationError

BACKENDS = ("serial", "pool", "distributed")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment family, decomposed for the engine.

    Attributes
    ----------
    name:
        Family name (diagnostics only).
    build:
        ``build(preset, rng, options) -> list[task]`` -- expands the
        workload into per-run tasks.  ``preset`` is a resolved
        :class:`~repro.experiments.common.Preset` or ``None`` for
        families without a preset; ``options`` is the dict of extra
        keyword arguments passed to :func:`run_experiment`.
    run:
        ``run(task) -> result`` -- executes one independent run.  Must be
        a picklable module-level function.
    reduce:
        ``reduce(preset, tasks, results, options) -> table`` -- folds the
        ordered per-run results into the family's output.
    """

    name: str
    build: Callable
    run: Callable
    reduce: Callable


def resolve_jobs(jobs):
    """Coerce a ``--jobs`` value into a positive worker count.

    ``None``, ``0`` and ``"auto"`` mean "all available cores".
    """
    if jobs in (None, "auto"):
        return os.cpu_count() or 1
    try:
        jobs = int(str(jobs))  # via str: rejects non-integral floats too
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"jobs must be a positive integer, 0 or 'auto', got {jobs!r}")
    if jobs == 0:  # after the coercion, so the CLI/pytest string "0" works
        return os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(
            f"jobs must be a positive integer, 0 or 'auto', got {jobs!r}")
    return jobs


class Executor:
    """How a flat task list becomes an ordered result list.

    ``submit_all(tasks, run)`` executes ``run`` over every task and
    returns the results *in submission order* -- the engine's determinism
    contract rests entirely on that ordering.  Executors may keep
    expensive state (process pools, TCP workers) alive across calls;
    ``close`` releases it.  Executors are context managers.
    """

    name = "base"

    def submit_all(self, tasks, run, label=None):
        """Execute ``run`` over ``tasks``; return ordered results.

        ``label`` names the submission (the spec name) for diagnostics
        and checkpoint layout; executors may ignore it.
        """
        raise NotImplementedError

    def close(self):
        """Release any resources held across submissions."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class SerialExecutor(Executor):
    """In-process, in-order execution -- the reference backend."""

    name = "serial"

    def submit_all(self, tasks, run, label=None):
        return [run(task) for task in tasks]


class PoolExecutor(Executor):
    """``multiprocessing.Pool`` fan-out, one pool per submission.

    ``mp_context`` selects the start method (``"fork"``, ``"spawn"``,
    ...); the platform default is used when ``None``, and the
    ``REPRO_MP_CONTEXT`` environment variable overrides that default.
    A single-task submission (or ``jobs=1``) stays in-process.

    While the pool maps, a :func:`repro.graph.shm.share_graphs` session
    is active, so tasks that embed big graphs pickle them as
    shared-memory handles the workers attach to zero-copy instead of
    per-task adjacency copies.  The distributed backend never activates
    a session -- its workers may live on other hosts, so its wire
    protocol keeps pickling graphs.
    """

    name = "pool"

    def __init__(self, jobs=None, mp_context=None):
        self.jobs = resolve_jobs(jobs)
        self.mp_context = mp_context

    def submit_all(self, tasks, run, label=None):
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            return [run(task) for task in tasks]
        mp_context = self.mp_context
        if mp_context is None:
            mp_context = os.environ.get("REPRO_MP_CONTEXT") or None
        context = get_context(mp_context)
        # The pool is created *before* the session activates so forked
        # children never inherit it (a worker publishing segments while
        # pickling its results would leak them).
        with context.Pool(processes=min(self.jobs, len(tasks))) as pool:
            with share_graphs():
                return pool.map(run, tasks)


def make_executor(backend, jobs=1, mp_context=None, **options):
    """Build an :class:`Executor` from a backend name.

    ``"serial"`` ignores ``jobs``; ``"pool"`` fans out over ``jobs``
    processes; ``"distributed"`` starts a TCP coordinator and, unless
    ``options`` says otherwise, ``jobs`` loopback workers.  Extra
    ``options`` are passed to the backend's constructor (the distributed
    backend takes ``workers``, ``bind``, ``checkpoint``, ...).
    """
    if isinstance(backend, Executor):
        return backend
    if backend == "serial":
        return SerialExecutor()
    if backend == "pool":
        return PoolExecutor(jobs=jobs, mp_context=mp_context)
    if backend == "distributed":
        from repro.experiments.distributed import DistributedExecutor
        options.setdefault("workers", resolve_jobs(jobs))
        return DistributedExecutor(**options)
    raise ConfigurationError(
        f"unknown backend {backend!r}; expected one of {BACKENDS} "
        "or an Executor instance")


_default_executor = None


def get_default_executor():
    """The ambient executor installed by :func:`set_default_executor`."""
    return _default_executor


def set_default_executor(executor):
    """Install ``executor`` as the ambient default; returns the previous.

    Every :func:`run_experiment` call without an explicit ``executor``
    or ``backend`` uses the ambient default, which is how the CLI and
    pytest apply ``--backend`` without touching any experiment family.
    Pass ``None`` to restore the jobs-based behaviour.
    """
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


@contextmanager
def use_executor(executor):
    """Scoped :func:`set_default_executor` (restores on exit)."""
    previous = set_default_executor(executor)
    try:
        yield executor
    finally:
        set_default_executor(previous)


def map_runs(run, tasks, jobs=1, mp_context=None):
    """Execute ``run`` over ``tasks``, preserving task order in the result.

    ``jobs=1`` (or a single task) stays in-process with a plain loop;
    otherwise a ``multiprocessing`` pool of ``min(jobs, len(tasks))``
    workers is used (see :class:`PoolExecutor`).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        return SerialExecutor().submit_all(tasks, run)
    return PoolExecutor(jobs=jobs, mp_context=mp_context).submit_all(
        tasks, run)


def run_experiment(spec, preset=None, rng=None, jobs=1, mp_context=None,
                   backend=None, executor=None, **options):
    """Run one experiment family end to end.

    Resolves ``preset`` (when the family uses one), expands the workload
    with ``spec.build``, executes the per-run tasks on the selected
    backend, and reduces the ordered results.  For a fixed ``rng`` the
    output is identical for every backend, worker count, and failure
    schedule.

    Backend precedence: an explicit ``executor`` wins; then ``backend``
    (a name from :data:`BACKENDS` or an :class:`Executor`); then the
    ambient default installed by :func:`set_default_executor`; finally
    the historical ``jobs`` path (serial for ``jobs=1``, pool
    otherwise).  An executor the engine builds itself from a ``backend``
    name is closed before returning.
    """
    if not isinstance(spec, ExperimentSpec):
        raise ConfigurationError(
            f"spec must be an ExperimentSpec, got {type(spec).__name__}")
    if preset is not None:
        preset = get_preset(preset)
    tasks = list(spec.build(preset, rng, options))
    owned = None
    if executor is None and backend is not None:
        if isinstance(backend, Executor):
            executor = backend
        else:
            executor = owned = make_executor(backend, jobs=jobs,
                                             mp_context=mp_context)
    if executor is None:
        executor = get_default_executor()
    try:
        if executor is None:
            results = map_runs(spec.run, tasks, jobs=jobs,
                               mp_context=mp_context)
        else:
            results = executor.submit_all(tasks, spec.run, label=spec.name)
    finally:
        if owned is not None:
            owned.close()
    return spec.reduce(preset, tasks, results, options)
