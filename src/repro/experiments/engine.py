"""Unified parallel experiment engine.

Every experiment family in this package is a Monte-Carlo average over
independent runs (the paper's Tables 2-5 average 1000 deployments each).
:func:`run_experiment` factors that shape out: a family declares an
:class:`ExperimentSpec` -- a *workload builder* that expands a preset into
a flat list of per-run task descriptions, a *per-run function* that
executes one task, and a *reducer* that folds the per-run results back
into the family's table -- and the engine decides how the runs execute.

``jobs=1`` executes the tasks serially in submission order, which is
bit-for-bit identical to the historical hand-written loops: builders
spawn per-run generators with the same :func:`repro.util.rng.spawn_rngs`
calls, in the same order, the old loops used.  ``jobs>1`` fans the tasks
out over a ``multiprocessing`` pool; because every task carries its own
pre-spawned RNG and ``Pool.map`` preserves ordering, the reducer sees the
exact same result sequence and the output is identical to the serial
path regardless of worker count or scheduling.

Requirements on spec components:

* ``run`` must be a module-level function (workers pickle it by
  qualified name) and tasks/results must be picklable;
* ``build`` receives the *raw* ``rng`` argument (seed, generator or
  ``None``) so families can reproduce their historical coercion order;
* ``reduce`` runs in the parent and is free to build :class:`Table`\\ s.
"""

import os
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Callable

from repro.experiments.common import get_preset
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment family, decomposed for the engine.

    Attributes
    ----------
    name:
        Family name (diagnostics only).
    build:
        ``build(preset, rng, options) -> list[task]`` -- expands the
        workload into per-run tasks.  ``preset`` is a resolved
        :class:`~repro.experiments.common.Preset` or ``None`` for
        families without a preset; ``options`` is the dict of extra
        keyword arguments passed to :func:`run_experiment`.
    run:
        ``run(task) -> result`` -- executes one independent run.  Must be
        a picklable module-level function.
    reduce:
        ``reduce(preset, tasks, results, options) -> table`` -- folds the
        ordered per-run results into the family's output.
    """

    name: str
    build: Callable
    run: Callable
    reduce: Callable


def resolve_jobs(jobs):
    """Coerce a ``--jobs`` value into a positive worker count.

    ``None``, ``0`` and ``"auto"`` mean "all available cores".
    """
    if jobs in (None, "auto"):
        return os.cpu_count() or 1
    try:
        jobs = int(str(jobs))  # via str: rejects non-integral floats too
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"jobs must be a positive integer, 0 or 'auto', got {jobs!r}")
    if jobs == 0:  # after the coercion, so the CLI/pytest string "0" works
        return os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(
            f"jobs must be a positive integer, 0 or 'auto', got {jobs!r}")
    return jobs


def map_runs(run, tasks, jobs=1, mp_context=None):
    """Execute ``run`` over ``tasks``, preserving task order in the result.

    ``jobs=1`` (or a single task) stays in-process with a plain loop;
    otherwise a ``multiprocessing`` pool of ``min(jobs, len(tasks))``
    workers is used.  ``mp_context`` selects the start method (``"fork"``,
    ``"spawn"``, ...); the platform default is used when ``None``, and the
    ``REPRO_MP_CONTEXT`` environment variable overrides that default.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        return [run(task) for task in tasks]
    if mp_context is None:
        mp_context = os.environ.get("REPRO_MP_CONTEXT") or None
    context = get_context(mp_context)
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(run, tasks)


def run_experiment(spec, preset=None, rng=None, jobs=1, mp_context=None,
                   **options):
    """Run one experiment family end to end.

    Resolves ``preset`` (when the family uses one), expands the workload
    with ``spec.build``, executes the per-run tasks serially or over a
    worker pool, and reduces the ordered results.  For a fixed ``rng``
    the output is identical for every ``jobs`` value.
    """
    if not isinstance(spec, ExperimentSpec):
        raise ConfigurationError(
            f"spec must be an ExperimentSpec, got {type(spec).__name__}")
    if preset is not None:
        preset = get_preset(preset)
    tasks = list(spec.build(preset, rng, options))
    results = map_runs(spec.run, tasks, jobs=jobs, mp_context=mp_context)
    return spec.reduce(preset, tasks, results, options)
