"""Experiment runners: one module per paper table/figure, plus extensions."""

from repro.experiments.churn import run_churn_experiment
from repro.experiments.common import PRESETS, Preset, get_preset
from repro.experiments.comparison import run_comparison
from repro.experiments.energy_lifetime import run_energy_lifetime
from repro.experiments.figures import run_figure1, run_figure2, run_figure3
from repro.experiments.intensity_sweep import run_intensity_sweep
from repro.experiments.overhead import run_beacon_cost, \
    run_reaffiliation_churn
from repro.experiments.scalability import run_scalability
from repro.experiments.mobility import run_mobility_experiment, \
    run_mobility_trace
from repro.experiments.stabilization_time import (
    run_recovery_experiment,
    run_scaling_experiment,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import learning_milestones, run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5

__all__ = [
    "PRESETS",
    "Preset",
    "get_preset",
    "learning_milestones",
    "run_comparison",
    "run_beacon_cost",
    "run_churn_experiment",
    "run_energy_lifetime",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_intensity_sweep",
    "run_mobility_experiment",
    "run_mobility_trace",
    "run_reaffiliation_churn",
    "run_recovery_experiment",
    "run_scalability",
    "run_scaling_experiment",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
]
