"""Crash-safe journaling of completed chunk results.

A distributed run journals every completed chunk to disk so an
interrupted submission resumes without re-executing finished work.  The
journal is a single append-only file of records::

    [crc32: 4 bytes][length: 8 bytes][pickled payload: length bytes]

The first record is a *meta* payload ``("meta", {...})`` describing the
submission (label, task count, chunk size); every later record is
``("chunk", chunk_id, [result, ...])``.  Records are flushed and
fsync'd, so after a crash the file is a valid prefix plus at most one
torn tail record; :meth:`CheckpointJournal.open` keeps every record
whose checksum verifies and truncates the torn tail before appending
resumes.

Resume correctness rests on the submission being *deterministic*: the
engine rebuilds the identical task list from the same seed and the
executor chunks it the same way, so a journaled ``chunk_id`` refers to
the same tasks as in the interrupted run.  The meta record guards that
assumption -- resuming with a different task count, chunk size, or label
raises :class:`CheckpointMismatch` instead of silently splicing results
from a different workload.
"""

import hashlib
import os
import pickle
import struct
import threading
import zlib

from repro.util.errors import ReproError

RECORD_HEADER = struct.Struct(">IQ")


def tasks_digest(tasks):
    """Content digest binding a journal to one exact task list.

    Tasks carry their pre-spawned RNGs, so the digest changes with the
    seed as well as with the workload shape -- resuming the same command
    line under a different ``--seed`` is refused instead of silently
    splicing the old seed's results into the new run.
    """
    payload = pickle.dumps(list(tasks), protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()[:32]


class CheckpointMismatch(ReproError):
    """An existing journal was written by a different submission."""


class CheckpointJournal:
    """One submission's journal; see the module docstring for layout."""

    def __init__(self, path, meta, completed):
        self.path = path
        self.meta = meta
        self.completed = completed  # chunk_id -> list of results
        self._handle = None
        self._lock = threading.Lock()  # appends come from handler threads

    @classmethod
    def open(cls, path, meta):
        """Open (or create) the journal at ``path`` for ``meta``.

        Loads every intact record, validates the stored meta against
        ``meta``, truncates a torn tail, and returns the journal ready
        for appending.  ``completed`` maps journaled chunk ids to their
        result lists.
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        records, valid_end = _scan(path)
        completed = {}
        stored_meta = None
        for payload in records:
            if payload[0] == "meta":
                stored_meta = payload[1]
            elif payload[0] == "chunk":
                completed[payload[1]] = payload[2]
        if stored_meta is not None and stored_meta != meta:
            raise CheckpointMismatch(
                f"checkpoint {path} was written by a different submission "
                f"(journal meta {stored_meta!r} != current {meta!r}); "
                "delete it to start over")
        journal = cls(path, meta, completed)
        mode = "r+b" if os.path.exists(path) else "wb"
        journal._handle = open(path, mode)
        journal._handle.seek(valid_end)
        journal._handle.truncate(valid_end)
        if stored_meta is None:
            journal._append(("meta", meta))
        return journal

    def record(self, chunk_id, results):
        """Journal one completed chunk (flushed and fsync'd); thread-safe."""
        with self._lock:
            if chunk_id in self.completed:
                return
            self.completed[chunk_id] = results
            self._append(("chunk", chunk_id, results))

    def _append(self, payload):
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._handle.write(
            RECORD_HEADER.pack(zlib.crc32(data), len(data)) + data)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def _scan(path):
    """All intact record payloads of ``path`` plus the valid prefix size.

    Stops at the first torn or corrupt record: everything after it is
    unreachable anyway (records carry no resync marker), and the only
    legitimate cause is a crash mid-append, which by construction tears
    the *last* record.
    """
    if not os.path.exists(path):
        return [], 0
    records = []
    valid_end = 0
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        while True:
            header = handle.read(RECORD_HEADER.size)
            if len(header) < RECORD_HEADER.size:
                break
            crc, length = RECORD_HEADER.unpack(header)
            if length > size - handle.tell():
                break  # torn tail: the record claims more than the file has
            data = handle.read(length)
            if len(data) < length or zlib.crc32(data) != crc:
                break
            try:
                records.append(pickle.loads(data))
            except Exception:
                break
            valid_end = handle.tell()
    return records, valid_end
