"""Wire protocol of the distributed backend: length-prefixed pickle frames.

Coordinator and workers exchange *frames*: an 8-byte big-endian length
followed by a pickled payload.  Payloads are plain tuples whose first
element is one of the message kinds below -- tuples keep the protocol
trivially forward-compatible (extra elements are ignored by older peers)
and avoid any class-identity coupling between coordinator and worker
processes beyond the task/result objects themselves.

Message flow::

    worker -> coordinator   (HELLO, worker_name)
    coordinator -> worker   (CHUNK, chunk_id, run, [task, ...])
    worker -> coordinator   (HEARTBEAT,)              # while computing
    worker -> coordinator   (RESULT, chunk_id, [result, ...])
    worker -> coordinator   (ERROR, chunk_id, exception, traceback_str)
    worker -> coordinator   (DRAIN,)                  # graceful goodbye
    coordinator -> worker   (SHUTDOWN,)

Sockets are written from more than one thread on both sides (heartbeats
race results on the worker; dispatch races shutdown on the coordinator),
so :func:`send_frame` takes an optional lock serializing the write.

.. warning::
   The protocol is *unauthenticated pickle over TCP*: shipping callables
   to workers is its purpose, so either endpoint fully trusts the other,
   and anyone who can reach the coordinator's port can execute code in
   it (and vice versa).  The default bind is loopback; only bind
   non-loopback addresses on networks where every host is trusted (a
   private cluster VLAN, an SSH-tunnel mesh, ...), exactly as with
   ``multiprocessing.connection`` or an unsecured Dask scheduler.
"""

import pickle
import struct

from repro.util.errors import ReproError

HEADER = struct.Struct(">Q")

# A frame larger than this is a corrupt header, not a real payload (the
# biggest legitimate frames are chunk results, far below this).
MAX_FRAME_BYTES = 1 << 32

HELLO = "hello"
CHUNK = "chunk"
HEARTBEAT = "heartbeat"
RESULT = "result"
ERROR = "error"
DRAIN = "drain"
SHUTDOWN = "shutdown"


class ProtocolError(ReproError):
    """A malformed frame arrived on a distributed-backend socket."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (EOF mid-frame or between frames)."""


def send_frame(sock, message, lock=None):
    """Pickle ``message`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    data = HEADER.pack(len(payload)) + payload
    if lock is None:
        sock.sendall(data)
    else:
        with lock:
            sock.sendall(data)


def _recv_exact(sock, size):
    """Read exactly ``size`` bytes or raise :class:`ConnectionClosed`."""
    chunks = []
    received = 0
    while received < size:
        piece = sock.recv(min(size - received, 1 << 20))
        if not piece:
            raise ConnectionClosed(
                f"peer closed the connection ({received}/{size} bytes "
                "of the current frame received)")
        chunks.append(piece)
        received += len(piece)
    return b"".join(chunks)


def recv_frame(sock):
    """Read one frame and unpickle it.

    Raises :class:`ConnectionClosed` on EOF, :class:`ProtocolError` on a
    corrupt header, and propagates socket timeouts (``TimeoutError``)
    unchanged so callers can treat them as missed heartbeats.
    """
    (size,) = HEADER.unpack(_recv_exact(sock, HEADER.size))
    if size > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {size} bytes exceeds the protocol "
                            f"maximum ({MAX_FRAME_BYTES})")
    return pickle.loads(_recv_exact(sock, size))


def parse_endpoint(endpoint, default_port=0):
    """``"host:port"`` (or ``(host, port)``) -> ``(host, port)`` tuple."""
    if isinstance(endpoint, (tuple, list)):
        host, port = endpoint
        return str(host), int(port)
    host, sep, port = str(endpoint).rpartition(":")
    if not sep:
        return str(endpoint), int(default_port)
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(f"invalid endpoint {endpoint!r}; expected host:port")
