"""TCP coordinator: chunk, dispatch, reassemble -- deterministically.

The coordinator owns one listening socket.  Workers connect (locally or
from other hosts), identify themselves, and are then fed task *chunks*:
contiguous slices of the submission's task list, identified by their
position.  Results stream back per chunk and are reassembled **in
submission order**, so every reducer sees the exact sequence the serial
backend would produce -- which chunk ran where, in what order, or how
often (after a failure) is invisible in the output.

Fault model
-----------
* A worker that dies mid-chunk (connection drop) or goes silent longer
  than ``heartbeat_timeout`` has its in-flight chunk re-queued onto the
  surviving workers.  Chunks carry a submission generation tag, so a
  result from a presumed-dead straggler of an older submission is
  discarded instead of corrupting a newer one.
* A worker may *drain* (SIGTERM): it finishes its current chunk, sends
  the result, announces the drain, and exits; nothing is lost.
* If every worker is gone and no replacement registers within
  ``worker_wait`` seconds, the submission fails loudly rather than
  hanging forever.
* With a :class:`~repro.experiments.distributed.checkpoint.
  CheckpointJournal` attached, every completed chunk is journaled before
  it counts as done; a resumed submission pre-fills journaled chunks and
  only executes the remainder.

:class:`DistributedExecutor` packages a coordinator behind the engine's
:class:`~repro.experiments.engine.Executor` seam and can spawn loopback
worker processes for single-host fan-out.
"""

import os
import socket
import subprocess
import sys
import threading
import time
import traceback
from collections import deque

from repro.experiments.distributed.checkpoint import (
    CheckpointJournal,
    tasks_digest,
)
from repro.experiments.distributed.protocol import (
    CHUNK,
    DRAIN,
    ERROR,
    HEARTBEAT,
    HELLO,
    RESULT,
    SHUTDOWN,
    ProtocolError,
    parse_endpoint,
    recv_frame,
    send_frame,
)
from repro.experiments.engine import Executor
from repro.util.errors import ReproError

DEFAULT_CHUNK_SIZE = 1


class DistributedError(ReproError):
    """A distributed submission could not complete."""


class _WorkerState:
    """Book-keeping for one connected worker (owned by its handler)."""

    def __init__(self, sock, address, name):
        self.sock = sock
        self.address = address
        self.name = name
        self.in_flight = None  # (generation, chunk_id, tasks) or None
        self.draining = False


class Coordinator:
    """Accepts workers and schedules submissions over them."""

    def __init__(self, bind=("127.0.0.1", 0), heartbeat_timeout=10.0,
                 worker_wait=30.0):
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.worker_wait = float(worker_wait)
        self._listener = socket.create_server(parse_endpoint(bind))
        self._cond = threading.Condition()
        self._workers = {}  # id(state) -> _WorkerState
        self._handlers = []
        self._pending = deque()  # (chunk_id, tasks) of the live submission
        self._results = {}
        self._expected = 0
        self._run = None
        self._journal = None
        self._failure = None  # (exception, traceback string)
        self._generation = 0
        self._closing = False
        self._progress_at = time.monotonic()
        self._submit_lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept",
            daemon=True)
        self._accept_thread.start()

    @property
    def address(self):
        """The ``(host, port)`` workers should connect to."""
        return self._listener.getsockname()[:2]

    @property
    def worker_count(self):
        with self._cond:
            return len(self._workers)

    def wait_for_workers(self, count, timeout=None):
        """Block until ``count`` workers are registered (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._workers) < count:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(0.05 if remaining is None
                                else min(0.05, remaining))
        return True

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit_all(self, tasks, run, label=None, chunk_size=None,
                   journal=None):
        """Execute ``run`` over ``tasks`` on the connected workers.

        Returns the per-task results in submission order.  ``journal``
        (a :class:`CheckpointJournal`) pre-fills chunks completed by an
        interrupted run and records every chunk completed by this one.
        """
        tasks = list(tasks)
        chunk_size = max(1, int(chunk_size or DEFAULT_CHUNK_SIZE))
        chunks = [(index, tasks[offset:offset + chunk_size])
                  for index, offset in enumerate(
                      range(0, len(tasks), chunk_size))]
        if not chunks:
            return []
        with self._submit_lock:
            with self._cond:
                if self._closing:
                    raise DistributedError("coordinator is closed")
                self._generation += 1
                self._results = {}
                if journal is not None:
                    self._results.update(
                        {chunk_id: results
                         for chunk_id, results in journal.completed.items()
                         if chunk_id < len(chunks)})
                self._pending = deque(
                    chunk for chunk in chunks
                    if chunk[0] not in self._results)
                self._expected = len(chunks)
                self._run = run
                self._journal = journal
                self._failure = None
                self._progress_at = time.monotonic()
                self._cond.notify_all()
                self._await_completion()
                failure = self._failure
                self._pending = deque()
                self._run = None
                self._journal = None
        if failure is not None:
            exception, trace = failure
            if trace:
                raise exception from DistributedError(
                    f"worker task failed; remote traceback:\n{trace}")
            raise exception
        return [result
                for chunk_id in range(len(chunks))
                for result in self._results[chunk_id]]

    def _await_completion(self):
        """Wait (cond held) until the submission finishes or fails."""
        while True:
            if self._failure is not None:
                return
            if len(self._results) >= self._expected:
                return
            if not self._workers and not self._accepting():
                self._failure = (DistributedError(
                    "coordinator listener is closed with work pending"), "")
                return
            stalled = time.monotonic() - self._progress_at
            if not self._workers and stalled > self.worker_wait:
                self._failure = (DistributedError(
                    f"no workers connected within {self.worker_wait:.0f}s "
                    f"({self._expected - len(self._results)} chunk(s) "
                    "unfinished)"), "")
                return
            self._cond.wait(0.05)

    def _accepting(self):
        return not self._closing

    # ------------------------------------------------------------------
    # worker handling
    # ------------------------------------------------------------------

    def _accept_loop(self):
        while True:
            try:
                sock, address = self._listener.accept()
            except OSError:
                return  # listener closed
            handler = threading.Thread(
                target=self._serve_worker, args=(sock, address),
                name=f"repro-coordinator-worker-{address}", daemon=True)
            self._handlers = [thread for thread in self._handlers
                              if thread.is_alive()]
            self._handlers.append(handler)
            handler.start()

    def _serve_worker(self, sock, address):
        state = None
        try:
            sock.settimeout(self.heartbeat_timeout)
            hello = recv_frame(sock)
            if not (isinstance(hello, tuple) and hello
                    and hello[0] == HELLO):
                raise ProtocolError(f"expected hello, got {hello!r}")
            name = hello[1] if len(hello) > 1 else f"{address[0]}:{address[1]}"
            state = _WorkerState(sock, address, name)
            with self._cond:
                if self._closing:
                    return
                self._workers[id(state)] = state
                self._progress_at = time.monotonic()
                self._cond.notify_all()
            self._feed_worker(state)
        except Exception:
            # Timeouts, connection drops, malformed or unpicklable frames:
            # whatever killed this worker, retiring it re-queues the
            # in-flight chunk onto the survivors, which is always safe.
            pass
        finally:
            self._retire_worker(state)
            try:
                sock.close()
            except OSError:
                pass

    def _feed_worker(self, state):
        """Dispatch chunks to one worker until shutdown or drain."""
        while True:
            assignment = self._next_chunk(state)
            if assignment is None:
                try:
                    send_frame(state.sock, (SHUTDOWN,))
                except OSError:
                    pass
                return
            generation, chunk_id, chunk_tasks, run = assignment
            try:
                send_frame(state.sock, (CHUNK, chunk_id, run, chunk_tasks))
            except OSError:
                raise  # socket death: retire this worker, re-queue the chunk
            except Exception as exc:
                # The chunk itself cannot be pickled (lambda run, closure
                # task, ...): no worker could ever run it, so fail the
                # submission with the real error instead of retiring
                # healthy workers one by one until the run times out.
                self._record_failure(state, generation, exc,
                                     traceback.format_exc())
                continue
            while True:  # await the result, absorbing heartbeats
                message = recv_frame(state.sock)
                kind = message[0]
                if kind == HEARTBEAT:
                    continue
                if kind == DRAIN:
                    state.draining = True
                    continue
                if kind == RESULT:
                    if message[1] != chunk_id:
                        raise ProtocolError(
                            f"worker {state.name} answered chunk "
                            f"{message[1]} while {chunk_id} was in flight")
                    self._record_result(state, generation, chunk_id,
                                        message[2])
                    break
                if kind == ERROR:
                    self._record_failure(state, generation, message[2],
                                         message[3])
                    break
                raise ProtocolError(
                    f"unexpected {kind!r} frame from worker {state.name}")

    def _next_chunk(self, state):
        with self._cond:
            while True:
                if self._closing or state.draining:
                    return None
                if self._pending and self._failure is None:
                    chunk_id, chunk_tasks = self._pending.popleft()
                    state.in_flight = (self._generation, chunk_id,
                                       chunk_tasks)
                    return (self._generation, chunk_id, chunk_tasks,
                            self._run)
                self._cond.wait()

    def _record_result(self, state, generation, chunk_id, results):
        with self._cond:
            if generation != self._generation:
                state.in_flight = None
                return  # straggler from a superseded submission
            journal = self._journal
        # Journal outside the condition lock: an fsync per chunk must not
        # stall every other handler's dispatch.  It happens *before* the
        # result is published, so the submission (which closes the
        # journal) cannot finish while an append is still in flight.
        if journal is not None:
            journal.record(chunk_id, results)
        with self._cond:
            state.in_flight = None
            if (generation == self._generation
                    and chunk_id not in self._results):
                self._results[chunk_id] = results
            self._progress_at = time.monotonic()
            self._cond.notify_all()

    def _record_failure(self, state, generation, exception, trace):
        with self._cond:
            state.in_flight = None
            if generation != self._generation:
                return
            if self._failure is None:
                self._failure = (exception, trace)
            self._pending = deque()
            self._cond.notify_all()

    def _retire_worker(self, state):
        """Unregister a dead/drained worker, re-queueing its chunk."""
        if state is None:
            return
        with self._cond:
            self._workers.pop(id(state), None)
            # A death/drain counts as progress for the no-worker clock:
            # replacements get the full worker_wait from this moment,
            # not from whenever the last *result* landed.
            self._progress_at = time.monotonic()
            if state.in_flight is not None:
                generation, chunk_id, chunk_tasks = state.in_flight
                state.in_flight = None
                if (generation == self._generation
                        and chunk_id not in self._results
                        and self._failure is None):
                    self._pending.appendleft((chunk_id, chunk_tasks))
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self):
        """Stop accepting, shut down connected workers, join threads."""
        with self._cond:
            if self._closing:
                return
            self._closing = True
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5)
        for handler in list(self._handlers):
            handler.join(timeout=5)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class DistributedExecutor(Executor):
    """The ``"distributed"`` backend behind the engine's executor seam.

    Lazily starts a :class:`Coordinator` on ``bind`` and, when
    ``workers`` is a positive count, that many loopback worker processes
    (``python -m repro worker --connect ...``).  With ``workers=0`` the
    coordinator waits for externally launched workers instead -- the
    multi-host mode.  ``checkpoint`` names a directory that receives one
    journal per submission, enabling crash/resume (see
    :mod:`repro.experiments.distributed.checkpoint`).
    """

    name = "distributed"

    def __init__(self, workers=None, bind="127.0.0.1:0", checkpoint=None,
                 chunk_size=None, heartbeat_interval=1.0,
                 heartbeat_timeout=10.0, worker_wait=30.0):
        self.workers = None if workers is None else int(workers)
        self.bind = bind
        self.checkpoint = checkpoint
        self.chunk_size = chunk_size
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.worker_wait = float(worker_wait)
        if self.heartbeat_interval * 2 > self.heartbeat_timeout:
            # A single delayed beat would read as a dead worker and
            # re-queue chunks from perfectly healthy hosts.
            raise ReproError(
                f"heartbeat_interval ({self.heartbeat_interval}s) must be "
                f"at most half of heartbeat_timeout "
                f"({self.heartbeat_timeout}s)")
        self._coordinator = None
        self._processes = []
        self._submission_counts = {}

    def start(self):
        """Start the coordinator (and loopback workers); idempotent.

        Returns the coordinator's ``(host, port)`` so externally
        launched workers know where to connect.
        """
        if self._coordinator is None:
            self._coordinator = Coordinator(
                bind=parse_endpoint(self.bind),
                heartbeat_timeout=self.heartbeat_timeout,
                worker_wait=self.worker_wait)
            for _ in range(self.workers or 0):
                self._processes.append(self._spawn_worker())
        return self._coordinator.address

    def _spawn_worker(self):
        host, port = self._coordinator.address
        import repro
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (package_root if not existing
                             else package_root + os.pathsep + existing)
        command = [sys.executable, "-m", "repro", "worker",
                   "--connect", f"{host}:{port}",
                   "--heartbeat", str(self.heartbeat_interval)]
        return subprocess.Popen(command, env=env)

    def submit_all(self, tasks, run, label=None):
        self.start()
        tasks = list(tasks)
        journal = None
        if self.checkpoint:
            journal = self._open_journal(label, tasks)
        try:
            return self._coordinator.submit_all(
                tasks, run, label=label, chunk_size=self.chunk_size,
                journal=journal)
        finally:
            if journal is not None:
                journal.close()

    def _open_journal(self, label, tasks):
        """One journal per (label, per-label submission index).

        The index makes repeated submissions under one label (e.g. a
        family run twice in a program) resume independently; it is
        deterministic because resumption replays the same submissions in
        the same order.
        """
        key = label or "submission"
        index = self._submission_counts.get(key, 0)
        self._submission_counts[key] = index + 1
        chunk_size = max(1, int(self.chunk_size or DEFAULT_CHUNK_SIZE))
        # The digest covers the task *content* (including each task's
        # pre-spawned RNG state), so a journal recorded under a
        # different seed or workload is refused, not spliced in.
        meta = {"label": key, "index": index, "tasks": len(tasks),
                "chunk_size": chunk_size, "digest": tasks_digest(tasks)}
        path = os.path.join(self.checkpoint, f"{key}-{index:04d}.journal")
        return CheckpointJournal.open(path, meta)

    def close(self):
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
        for process in self._processes:
            if process.poll() is None:
                process.terminate()
        for process in self._processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5)
        self._processes = []
