"""Distributed experiment backend: TCP coordinator + remote workers.

The engine's ``"distributed"`` backend.  A :class:`Coordinator` chunks a
submission's task list and streams the chunks to registered workers over
length-prefixed pickle frames (:mod:`.protocol`); workers
(:mod:`.worker`, ``python -m repro worker --connect host:port``)
heartbeat while computing, drain gracefully on SIGTERM, and crash-safely
hand their in-flight chunk back to the survivors.  Completed chunks can
be journaled (:mod:`.checkpoint`) so an interrupted run resumes without
re-executing finished work.  Results are reassembled in submission
order, so the reduced output is bit-identical to the serial backend for
any worker count or failure schedule.
"""

from repro.experiments.distributed.checkpoint import (
    CheckpointJournal,
    CheckpointMismatch,
)
from repro.experiments.distributed.coordinator import (
    Coordinator,
    DistributedError,
    DistributedExecutor,
)
from repro.experiments.distributed.protocol import (
    ConnectionClosed,
    ProtocolError,
    parse_endpoint,
)
from repro.experiments.distributed.worker import Worker, serve

__all__ = [
    "CheckpointJournal",
    "CheckpointMismatch",
    "ConnectionClosed",
    "Coordinator",
    "DistributedError",
    "DistributedExecutor",
    "ProtocolError",
    "Worker",
    "parse_endpoint",
    "serve",
]
