"""Worker daemon: executes task chunks for a remote coordinator.

Launch one per core on every machine that should take part::

    python -m repro worker --connect coordinator-host:5555

The worker connects, says hello, and then serves chunks: it unpickles
the submission's ``run`` function (by qualified name, so the ``repro``
package must be importable -- the loopback spawner arranges ``sys.path``
automatically), executes the chunk's tasks in order, and streams the
results back.  While computing it heartbeats every
``heartbeat_interval`` seconds from a side thread so the coordinator can
tell "slow" from "dead"; a worker that misses the coordinator's
``heartbeat_timeout`` has its chunk re-queued elsewhere.

Shutdown paths:

* coordinator says ``SHUTDOWN`` (or closes the socket): exit now;
* :meth:`Worker.request_drain` (wired to SIGTERM by the CLI): finish the
  chunk in hand, send its result, announce the drain, exit.  Nothing is
  re-executed and nothing is lost.

Task exceptions are pickled and shipped back so the submission fails in
the parent with the original exception type, like the pool backend.
"""

import pickle
import select
import signal
import socket as socketlib
import threading
import traceback

from repro.experiments.distributed.protocol import (
    CHUNK,
    DRAIN,
    ERROR,
    HEARTBEAT,
    HELLO,
    RESULT,
    SHUTDOWN,
    ConnectionClosed,
    ProtocolError,
    parse_endpoint,
    recv_frame,
    send_frame,
)

# How often an idle worker polls for a pending drain request (seconds).
IDLE_POLL_SECONDS = 0.2


class Worker:
    """One connection-lifetime of a worker daemon; see module docstring."""

    def __init__(self, connect, heartbeat_interval=1.0, name=None):
        self.address = parse_endpoint(connect)
        self.heartbeat_interval = float(heartbeat_interval)
        self.name = name or f"worker-{self.address[0]}:{self.address[1]}"
        self._drain = threading.Event()
        self._stop = threading.Event()
        self._busy = threading.Event()
        self._send_lock = threading.Lock()

    def request_drain(self):
        """Finish the chunk in hand (if any), then exit gracefully."""
        self._drain.set()

    def run(self):
        """Serve chunks until shutdown or drain; returns chunks served."""
        served = 0
        sock = socketlib.create_connection(self.address)
        try:
            send_frame(sock, (HELLO, self.name), self._send_lock)
            heartbeats = threading.Thread(
                target=self._heartbeat_loop, args=(sock,),
                name=f"{self.name}-heartbeat", daemon=True)
            heartbeats.start()
            while True:
                message = self._next_message(sock)
                if message is None or message[0] == SHUTDOWN:
                    return served
                if message[0] != CHUNK:
                    raise ProtocolError(
                        f"unexpected {message[0]!r} frame from coordinator")
                _, chunk_id, run, tasks = message
                self._execute(sock, chunk_id, run, tasks)
                served += 1
                if self._drain.is_set():
                    self._announce_drain(sock)
                    return served
        finally:
            self._stop.set()
            try:
                sock.close()
            except OSError:
                pass

    def _next_message(self, sock):
        """Await the next frame, polling for drain requests while idle."""
        while True:
            if self._drain.is_set():
                self._announce_drain(sock)
                return None
            readable, _, _ = select.select([sock], [], [], IDLE_POLL_SECONDS)
            if not readable:
                continue
            try:
                return recv_frame(sock)
            except ConnectionClosed:
                return None

    def _execute(self, sock, chunk_id, run, tasks):
        self._busy.set()
        try:
            results = [run(task) for task in tasks]
        except Exception as exc:
            trace = traceback.format_exc()
            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(
                    f"unpicklable worker exception: {exc!r}")
            self._busy.clear()
            send_frame(sock, (ERROR, chunk_id, exc, trace), self._send_lock)
        else:
            self._busy.clear()
            send_frame(sock, (RESULT, chunk_id, results), self._send_lock)

    def _announce_drain(self, sock):
        try:
            send_frame(sock, (DRAIN,), self._send_lock)
        except OSError:
            pass

    def _heartbeat_loop(self, sock):
        """Heartbeat while a chunk is computing (idle workers are silent,
        so the coordinator's receive buffer stays empty between chunks)."""
        while not self._stop.wait(self.heartbeat_interval):
            if not self._busy.is_set():
                continue
            try:
                send_frame(sock, (HEARTBEAT,), self._send_lock)
            except OSError:
                return


def serve(connect, heartbeat_interval=1.0, name=None, handle_signals=True):
    """Run a worker until the coordinator shuts it down.

    Installs a SIGTERM -> graceful-drain handler when called from the
    main thread (the CLI path); in-process workers (tests) skip it.
    """
    worker = Worker(connect, heartbeat_interval=heartbeat_interval,
                    name=name)
    if handle_signals and threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda *_: worker.request_drain())
    return worker.run()
