"""The Section 5 mobility experiment: cluster-head re-election stability.

Nodes move randomly for 15 minutes; every 2 seconds the clusters are
re-evaluated and we record which heads kept their role.  The paper
reports the mean percentage of retained heads per window:

* pedestrian speeds (0 to 1.6 m/s): ~82% with the Section 4.3 improvement
  rules vs ~78% without;
* vehicular speeds (0 to 10 m/s): ~31% vs ~25%.

The improved configuration uses the incumbent order *and* the fusion rule;
the basic configuration is the plain Section 4.2 algorithm.  Both are
evaluated over the *same* mobility trace so the comparison is paired.
DAG names persist on nodes across windows and are incrementally repaired
when movement creates conflicts, as a real deployment would.
"""

from dataclasses import dataclass

from repro.experiments.common import clustered, get_preset
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.naming.assign import assign_dag_ids
from repro.experiments.paper_values import MOBILITY, SQUARE_SIDE_METERS
from repro.metrics.stability import RetentionSeries
from repro.metrics.tables import Table
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.trace import topology_at
from repro.util.rng import as_rng, spawn_rngs

SPEED_REGIMES = {
    "pedestrian": MOBILITY["pedestrian"]["speed_range_mps"],
    "vehicular": MOBILITY["vehicular"]["speed_range_mps"],
}

CONFIGURATIONS = {
    "improved": {"order": "incumbent", "fusion": True},
    "basic": {"order": "basic", "fusion": False},
}


@dataclass(frozen=True)
class MobilityRun:
    """Retention percentages of one trace, per configuration."""

    regime: str
    retention_percent: dict  # configuration name -> percent
    windows: int


def speed_range_in_sides(speed_range_mps, side_meters=SQUARE_SIDE_METERS):
    """Convert m/s to square-sides/s under the 1 km interpretation."""
    low, high = speed_range_mps
    return (low / side_meters, high / side_meters)


def run_mobility_trace(regime, preset, radius=0.1, rng=None,
                       configurations=None, model_factory=None):
    """One mobility trace, evaluated under each configuration.

    ``model_factory(count, speed_range_sides, rng)`` builds the mobility
    model (default: random direction).
    """
    preset = get_preset(preset)
    rng = as_rng(rng)
    configurations = configurations or CONFIGURATIONS
    speed_range = speed_range_in_sides(SPEED_REGIMES[regime])
    if model_factory is None:
        def model_factory(count, speeds, model_rng):
            return RandomDirectionModel(count, speeds, rng=model_rng)
    model = model_factory(preset.mobility_nodes, speed_range, rng)

    state = {name: {"previous": None, "dag_ids": None, "series":
                    RetentionSeries()} for name in configurations}
    windows = int(round(preset.mobility_duration / preset.mobility_window))
    dag_ids = None
    for _ in range(windows + 1):
        topology = topology_at(model.positions, radius)
        if len(topology.graph) == 0:
            model.advance(preset.mobility_window)
            continue
        # DAG names persist across windows; repair conflicts incrementally.
        dag_ids, _rounds = assign_dag_ids(topology, rng, initial_ids=dag_ids)
        for name, options in configurations.items():
            run_state = state[name]
            clustering, _ = clustered(
                topology, use_dag=True, dag_ids=dag_ids,
                order=options["order"], fusion=options["fusion"],
                previous=run_state["previous"])
            if run_state["previous"] is not None:
                run_state["series"].observe(run_state["previous"].heads,
                                            clustering.heads)
            run_state["previous"] = clustering
        model.advance(preset.mobility_window)
    return MobilityRun(
        regime=regime,
        retention_percent={name: run_state["series"].percent
                           for name, run_state in state.items()},
        windows=windows,
    )


def _run_one(task):
    regime, preset, radius, run_rng = task
    return run_mobility_trace(regime, preset, radius=radius, rng=run_rng)


def _build(preset, rng, options):
    # spawn_rngs is called once per regime with the caller's raw argument,
    # matching the historical loop (an integer seed gives both regimes the
    # same trace seeds, keeping the regime comparison paired).
    return [(regime, preset, options["radius"], run_rng)
            for regime in SPEED_REGIMES
            for run_rng in spawn_rngs(rng, options["runs"])]


def _reduce(preset, tasks, results, options):
    runs = options["runs"]
    table = Table(
        title=(f"Mobility stability: % heads retained per "
               f"{preset.mobility_window:.0f}s window "
               f"({preset.mobility_nodes} nodes, "
               f"{preset.mobility_duration:.0f}s, {runs} trace(s); "
               "paper in parens)"),
        headers=["regime", "improved %", "improved paper", "basic %",
                 "basic paper"],
    )
    result_iter = iter(results)
    for regime in SPEED_REGIMES:
        totals = {name: 0.0 for name in CONFIGURATIONS}
        for _ in range(runs):
            outcome = next(result_iter)
            for name in totals:
                totals[name] += outcome.retention_percent[name]
        table.add_row([
            regime,
            totals["improved"] / runs, f"({MOBILITY[regime]['improved']})",
            totals["basic"] / runs, f"({MOBILITY[regime]['basic']})",
        ])
    return table


MOBILITY_SPEC = ExperimentSpec(name="mobility", build=_build, run=_run_one,
                               reduce=_reduce)


def run_mobility_experiment(preset="quick", radius=0.1, rng=None, runs=None,
                            jobs=1):
    """Full experiment: both regimes, averaged over traces; returns a Table."""
    preset = get_preset(preset)
    runs = runs if runs is not None else max(1, preset.runs // 4)
    return run_experiment(MOBILITY_SPEC, preset, rng=rng, jobs=jobs,
                          radius=radius, runs=runs)
