"""The Section 5 mobility experiment: cluster-head re-election stability.

Nodes move randomly for 15 minutes; every 2 seconds the clusters are
re-evaluated and we record which heads kept their role.  The paper
reports the mean percentage of retained heads per window:

* pedestrian speeds (0 to 1.6 m/s): ~82% with the Section 4.3 improvement
  rules vs ~78% without;
* vehicular speeds (0 to 10 m/s): ~31% vs ~25%.

The improved configuration uses the incumbent order *and* the fusion rule;
the basic configuration is the plain Section 4.2 algorithm.  Both are
evaluated over the *same* mobility trace so the comparison is paired.
DAG names persist on nodes across windows and are incrementally repaired
when movement creates conflicts, as a real deployment would.

Two evaluation paths produce bit-identical runs:

* ``dynamics="delta"`` (default) maintains one
  :class:`~repro.graph.dynamic.DynamicTopology` across the whole trace --
  exact per-window edge deltas, incremental triangle/density updates, and
  per-configuration :class:`~repro.clustering.incremental.
  IncrementalElection` engines.  DAG names are only re-repaired when an
  *added* edge collides two names, which is exactly when the scratch
  path's legitimacy check would trigger a redraw (and the only time it
  consumes RNG), so the random streams stay aligned.
* ``dynamics="rebuild"`` is the original scratch pipeline
  (``topology_at`` + ``compute_clustering`` per window), kept as the
  reference oracle.
"""

from dataclasses import dataclass

from repro.clustering.incremental import IncrementalElection
from repro.experiments.common import clustered, get_preset
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.graph.dynamic import DynamicTopology
from repro.naming.assign import assign_dag_ids
from repro.experiments.paper_values import MOBILITY, SQUARE_SIDE_METERS
from repro.metrics.stability import RetentionSeries
from repro.metrics.tables import Table
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.trace import topology_at
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng, spawn_rngs

SPEED_REGIMES = {
    "pedestrian": MOBILITY["pedestrian"]["speed_range_mps"],
    "vehicular": MOBILITY["vehicular"]["speed_range_mps"],
}

CONFIGURATIONS = {
    "improved": {"order": "incumbent", "fusion": True},
    "basic": {"order": "basic", "fusion": False},
}


@dataclass(frozen=True)
class MobilityRun:
    """Retention percentages of one trace, per configuration.

    ``windows`` is the requested window count; ``skipped`` how many
    evaluation windows were skipped because the deployment was empty --
    skipped windows contribute to no retention denominator, so the pair
    keeps the reported percentages honest.
    """

    regime: str
    retention_percent: dict  # configuration name -> percent
    windows: int
    skipped: int = 0


def speed_range_in_sides(speed_range_mps, side_meters=SQUARE_SIDE_METERS):
    """Convert m/s to square-sides/s under the 1 km interpretation."""
    low, high = speed_range_mps
    return (low / side_meters, high / side_meters)


def run_mobility_trace(regime, preset, radius=0.1, rng=None,
                       configurations=None, model_factory=None,
                       dynamics="delta"):
    """One mobility trace, evaluated under each configuration.

    ``model_factory(count, speed_range_sides, rng)`` builds the mobility
    model (default: random direction).  ``dynamics`` selects the
    delta-maintained fast path or the scratch rebuild oracle; both return
    bit-identical runs.
    """
    preset = get_preset(preset)
    rng = as_rng(rng)
    configurations = configurations or CONFIGURATIONS
    speed_range = speed_range_in_sides(SPEED_REGIMES[regime])
    if model_factory is None:
        def model_factory(count, speeds, model_rng):
            return RandomDirectionModel(count, speeds, rng=model_rng)
    model = model_factory(preset.mobility_nodes, speed_range, rng)
    windows = int(round(preset.mobility_duration / preset.mobility_window))

    if dynamics == "delta":
        evaluate = _DeltaTraceEvaluator(radius, configurations, rng)
    elif dynamics == "rebuild":
        evaluate = _RebuildTraceEvaluator(radius, configurations, rng)
    else:
        raise ConfigurationError(
            f"unknown dynamics {dynamics!r}; expected 'delta' or 'rebuild'")

    state = {name: {"previous": None, "series": RetentionSeries()}
             for name in configurations}
    skipped = 0
    for _ in range(windows + 1):
        if len(model.positions) == 0:
            skipped += 1
            model.advance(preset.mobility_window)
            continue
        for name, clustering in evaluate(model.positions, state):
            run_state = state[name]
            if run_state["previous"] is not None:
                run_state["series"].observe(run_state["previous"].heads,
                                            clustering.heads)
            run_state["previous"] = clustering
        model.advance(preset.mobility_window)
    return MobilityRun(
        regime=regime,
        retention_percent={name: run_state["series"].percent
                           for name, run_state in state.items()},
        windows=windows,
        skipped=skipped,
    )


class _RebuildTraceEvaluator:
    """The scratch per-window pipeline (reference oracle)."""

    def __init__(self, radius, configurations, rng):
        self.radius = radius
        self.configurations = configurations
        self.rng = rng
        self.dag_ids = None

    def __call__(self, positions, state):
        topology = topology_at(positions, self.radius)
        # DAG names persist across windows; repair conflicts incrementally.
        self.dag_ids, _rounds = assign_dag_ids(topology, self.rng,
                                               initial_ids=self.dag_ids)
        for name, options in self.configurations.items():
            clustering, _ = clustered(
                topology, use_dag=True, dag_ids=self.dag_ids,
                order=options["order"], fusion=options["fusion"],
                previous=state[name]["previous"])
            yield name, clustering


class _DeltaTraceEvaluator:
    """The delta-maintained per-window pipeline.

    Keeps the :class:`DynamicTopology` and one election engine per
    configuration alive across windows; re-runs the polite renaming only
    when an added edge collides two persisted DAG names (the scratch
    path's only redraw trigger, so RNG consumption matches draw for
    draw).
    """

    def __init__(self, radius, configurations, rng):
        self.radius = radius
        self.configurations = configurations
        self.rng = rng
        self.dag_ids = None
        self.dynamic = None
        self.engines = {name: IncrementalElection(order=options["order"],
                                                  fusion=options["fusion"])
                        for name, options in configurations.items()}

    def __call__(self, positions, state):
        if self.dynamic is None or len(self.dynamic.graph) != len(positions):
            # First (non-empty) window, or a model that changed its
            # population: seed the maintained state from scratch.  With
            # persisted names and a changed population the repair below
            # raises exactly as the scratch path's assign_dag_ids does.
            self.dynamic = DynamicTopology(positions, self.radius)
            topology = self.dynamic.topology
            delta = None
            density_changed = None
            graph_changed = True
        else:
            update = self.dynamic.move(positions)
            topology = update.topology
            delta = update.delta
            density_changed = update.density_changed
            graph_changed = bool(delta)
        dag_changed = self._repair_names(topology, delta)
        for name in self.configurations:
            clustering = self.engines[name].update(
                topology.graph, self.dynamic.densities,
                tie_ids=topology.ids, dag_ids=self.dag_ids,
                previous=state[name]["previous"],
                density_changed=density_changed,
                graph_changed=graph_changed, dag_changed=dag_changed)
            yield name, clustering

    def _repair_names(self, topology, delta):
        """Keep ``dag_ids`` exactly as the per-window scratch repair would.

        Names only change when two neighbors collide; with persisted
        names and an exact edge delta, a new collision can only ride an
        added edge, and a window without collisions consumes no RNG on
        the scratch path either -- so skipping the no-op repair keeps
        the random stream (and therefore every later redraw) identical.
        """
        if self.dag_ids is None:
            self.dag_ids, _rounds = assign_dag_ids(topology, self.rng)
            return True
        dag_ids = self.dag_ids
        if delta is None:
            # Re-seeded mid-trace: run the full repair (which rejects a
            # changed population exactly as the scratch path does).
            self.dag_ids, _rounds = assign_dag_ids(topology, self.rng,
                                                   initial_ids=dag_ids)
            return True
        if any(dag_ids[u] == dag_ids[v] for u, v in delta.added.tolist()):
            self.dag_ids, _rounds = assign_dag_ids(topology, self.rng,
                                                   initial_ids=dag_ids)
            return True
        return False


def _run_one(task):
    regime, preset, radius, run_rng = task
    return run_mobility_trace(regime, preset, radius=radius, rng=run_rng)


def _build(preset, rng, options):
    # spawn_rngs is called once per regime with the caller's raw argument,
    # matching the historical loop (an integer seed gives both regimes the
    # same trace seeds, keeping the regime comparison paired).
    return [(regime, preset, options["radius"], run_rng)
            for regime in SPEED_REGIMES
            for run_rng in spawn_rngs(rng, options["runs"])]


def _reduce(preset, tasks, results, options):
    runs = options["runs"]
    table = Table(
        title=(f"Mobility stability: % heads retained per "
               f"{preset.mobility_window:.0f}s window "
               f"({preset.mobility_nodes} nodes, "
               f"{preset.mobility_duration:.0f}s, {runs} trace(s); "
               "paper in parens)"),
        headers=["regime", "improved %", "improved paper", "basic %",
                 "basic paper"],
    )
    result_iter = iter(results)
    for regime in SPEED_REGIMES:
        totals = {name: 0.0 for name in CONFIGURATIONS}
        for _ in range(runs):
            outcome = next(result_iter)
            for name in totals:
                totals[name] += outcome.retention_percent[name]
        table.add_row([
            regime,
            totals["improved"] / runs, f"({MOBILITY[regime]['improved']})",
            totals["basic"] / runs, f"({MOBILITY[regime]['basic']})",
        ])
    return table


MOBILITY_SPEC = ExperimentSpec(name="mobility", build=_build, run=_run_one,
                               reduce=_reduce)


def run_mobility_experiment(preset="quick", radius=0.1, rng=None, runs=None,
                            jobs=1):
    """Full experiment: both regimes, averaged over traces; returns a Table."""
    preset = get_preset(preset)
    runs = runs if runs is not None else max(1, preset.runs // 4)
    return run_experiment(MOBILITY_SPEC, preset, rng=rng, jobs=jobs,
                          radius=radius, runs=runs)
