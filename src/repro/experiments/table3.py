"""Table 3: steps needed to build the DAG.

For each transmission range R and both deployments (grid, random
geometry), run the Section 5 renaming -- each node draws a DAG identifier
in ``[0, δ²)``, conflicting neighbors with the smallest normal identifier
re-draw -- and report the mean number of steps to local uniqueness.

Runs execute through the parallel experiment engine; each task carries
its own pre-spawned generator, in the historical spawn order, so results
are identical for every ``jobs`` value.
"""

from repro.experiments.common import build_topology, get_preset, per_run_rngs
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.paper_values import TABLE3, TABLE3_RADII
from repro.metrics.tables import Table
from repro.naming.namespace import NameSpace, recommended_size
from repro.naming.renaming import PoliteRenaming

_KINDS = ("grid", "random")


def dag_build_rounds(topology, rng):
    """Rounds to build the DAG over one topology (Table 3 cell sample)."""
    delta = topology.graph.max_degree()
    namespace = NameSpace(recommended_size(delta))
    result = PoliteRenaming(namespace=namespace).run(
        topology.graph, rng=rng, tie_ids=topology.ids)
    return result.rounds


def _build(preset, rng, options):
    radii = options["radii"]
    rng_iter = iter(per_run_rngs(rng, preset.runs * len(radii) * 2))
    return [(kind, preset.intensity, radius, next(rng_iter))
            for radius in radii
            for kind in _KINDS
            for _ in range(preset.runs)]


def _run_one(task):
    kind, intensity, radius, run_rng = task
    topology = build_topology(kind, intensity, radius, run_rng)
    return dag_build_rounds(topology, run_rng)


def _reduce(preset, tasks, results, options):
    radii = options["radii"]
    table = Table(
        title=(f"Table 3: steps to build the DAG "
               f"(lambda={preset.intensity}, {preset.runs} runs; "
               "paper in parens)"),
        headers=["R", "grid", "grid paper", "random", "random paper"],
    )
    result_iter = iter(results)
    for radius in radii:
        means = {kind: sum(next(result_iter) for _ in range(preset.runs))
                 / preset.runs for kind in _KINDS}
        table.add_row([
            radius,
            means["grid"], f"({TABLE3['grid'].get(radius, '-')})",
            means["random"], f"({TABLE3['random'].get(radius, '-')})",
        ])
    return table


TABLE3_SPEC = ExperimentSpec(name="table3", build=_build, run=_run_one,
                             reduce=_reduce)


def run_table3(preset="quick", radii=TABLE3_RADII, rng=None, jobs=1):
    """Mean DAG-construction steps per (deployment, R); returns a Table."""
    return run_experiment(TABLE3_SPEC, get_preset(preset), rng=rng,
                          jobs=jobs, radii=radii)
