"""Table 3: steps needed to build the DAG.

For each transmission range R and both deployments (grid, random
geometry), run the Section 5 renaming -- each node draws a DAG identifier
in ``[0, δ²)``, conflicting neighbors with the smallest normal identifier
re-draw -- and report the mean number of steps to local uniqueness.
"""

from repro.experiments.common import build_topology, get_preset, per_run_rngs
from repro.experiments.paper_values import TABLE3, TABLE3_RADII
from repro.metrics.tables import Table
from repro.naming.namespace import NameSpace, recommended_size
from repro.naming.renaming import PoliteRenaming


def dag_build_rounds(topology, rng):
    """Rounds to build the DAG over one topology (Table 3 cell sample)."""
    delta = topology.graph.max_degree()
    namespace = NameSpace(recommended_size(delta))
    result = PoliteRenaming(namespace=namespace).run(
        topology.graph, rng=rng, tie_ids=topology.ids)
    return result.rounds


def run_table3(preset="quick", radii=TABLE3_RADII, rng=None):
    """Mean DAG-construction steps per (deployment, R); returns a Table."""
    preset = get_preset(preset)
    table = Table(
        title=(f"Table 3: steps to build the DAG "
               f"(lambda={preset.intensity}, {preset.runs} runs; "
               "paper in parens)"),
        headers=["R", "grid", "grid paper", "random", "random paper"],
    )
    rngs = per_run_rngs(rng, preset.runs * len(radii) * 2)
    rng_iter = iter(rngs)
    for radius in radii:
        means = {}
        for kind in ("grid", "random"):
            total = 0.0
            for _ in range(preset.runs):
                run_rng = next(rng_iter)
                topology = build_topology(kind, preset.intensity, radius,
                                          run_rng)
                total += dag_build_rounds(topology, run_rng)
            means[kind] = total / preset.runs
        table.add_row([
            radius,
            means["grid"], f"({TABLE3['grid'].get(radius, '-')})",
            means["random"], f"({TABLE3['random'].get(radius, '-')})",
        ])
    return table
