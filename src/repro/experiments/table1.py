"""Table 1: densities on the illustrative Figure 1 example.

Deterministic: the reconstruction of the example topology must reproduce
the paper's neighbor counts, link counts and densities exactly.
"""

from fractions import Fraction

from repro.clustering.density import all_densities, edges_among
from repro.experiments.paper_values import TABLE1
from repro.graph.generators import figure1_topology
from repro.metrics.tables import Table


def run_table1():
    """Recompute Table 1; returns (table, exact_match: bool)."""
    topology = figure1_topology()
    graph = topology.graph
    densities = all_densities(graph, exact=True)
    table = Table(
        title="Table 1: densities on the Figure 1 example (paper in parens)",
        headers=["node", "#neighbors", "#links", "density", "paper"],
    )
    exact = True
    for node in sorted(graph.nodes):
        neighbors = graph.neighbors(node)
        links = len(neighbors) + edges_among(graph, neighbors)
        expected = TABLE1[node]
        measured = (len(neighbors), links, float(densities[node]))
        exact = exact and measured == expected
        table.add_row([node, len(neighbors), links, float(densities[node]),
                       f"({expected[0]}, {expected[1]}, {expected[2]})"])
    return table, exact


def figure1_expected_densities():
    """The paper's densities as exact fractions (for tests)."""
    return {node: Fraction(values[2]).limit_denominator(8)
            for node, values in TABLE1.items()}
