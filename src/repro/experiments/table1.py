"""Table 1: densities on the illustrative Figure 1 example.

Deterministic: the reconstruction of the example topology must reproduce
the paper's neighbor counts, link counts and densities exactly.  It still
runs through the experiment engine -- as a single task -- so every paper
table shares one execution path.
"""

from fractions import Fraction

from repro.clustering.density import all_densities, edges_among
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.paper_values import TABLE1
from repro.graph.models.registry import as_topology_spec, build_topology_spec
from repro.metrics.tables import Table


def _build(preset, rng, options):
    spec = options.get("topology")
    return [as_topology_spec(spec) if spec is not None
            else as_topology_spec("figure1")]


def _run_one(spec):
    """Measure every Table 1 row on the task's topology."""
    topology = build_topology_spec(spec)
    graph = topology.graph
    densities = all_densities(graph, exact=True)
    rows = []
    for node in sorted(graph.nodes):
        neighbors = graph.neighbors(node)
        links = len(neighbors) + edges_among(graph, neighbors)
        rows.append((node, len(neighbors), links, float(densities[node])))
    return rows


def _reduce(preset, tasks, results, options):
    reference = tasks[0].name == "figure1"
    table = Table(
        title=("Table 1: densities on the Figure 1 example (paper in parens)"
               if reference else
               f"Table 1 measurements on topology {tasks[0]}"),
        headers=["node", "#neighbors", "#links", "density"]
                + (["paper"] if reference else []),
    )
    exact = True
    for node, neighbors, links, density in results[0]:
        row = [node, neighbors, links, density]
        if reference:
            expected = TABLE1[node]
            exact = exact and (neighbors, links, density) == expected
            row.append(f"({expected[0]}, {expected[1]}, {expected[2]})")
        table.add_row(row)
    return table, exact and reference


TABLE1_SPEC = ExperimentSpec(name="table1", build=_build, run=_run_one,
                             reduce=_reduce)


def run_table1(jobs=1, topology=None):
    """Recompute Table 1; returns (table, exact_match: bool).

    ``topology`` measures the same per-node columns on any registered
    generator spec instead of the Figure 1 example (the paper column and
    the exact-match flag then no longer apply).
    """
    return run_experiment(TABLE1_SPEC, jobs=jobs, topology=topology)


def figure1_expected_densities():
    """The paper's densities as exact fractions (for tests)."""
    return {node: Fraction(values[2]).limit_denominator(8)
            for node, values in TABLE1.items()}
