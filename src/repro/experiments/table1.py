"""Table 1: densities on the illustrative Figure 1 example.

Deterministic: the reconstruction of the example topology must reproduce
the paper's neighbor counts, link counts and densities exactly.  It still
runs through the experiment engine -- as a single task -- so every paper
table shares one execution path.
"""

from fractions import Fraction

from repro.clustering.density import all_densities, edges_among
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.paper_values import TABLE1
from repro.graph.generators import figure1_topology
from repro.metrics.tables import Table


def _build(preset, rng, options):
    return [None]


def _run_one(task):
    """Measure every Table 1 row on the reconstructed example."""
    topology = figure1_topology()
    graph = topology.graph
    densities = all_densities(graph, exact=True)
    rows = []
    for node in sorted(graph.nodes):
        neighbors = graph.neighbors(node)
        links = len(neighbors) + edges_among(graph, neighbors)
        rows.append((node, len(neighbors), links, float(densities[node])))
    return rows


def _reduce(preset, tasks, results, options):
    table = Table(
        title="Table 1: densities on the Figure 1 example (paper in parens)",
        headers=["node", "#neighbors", "#links", "density", "paper"],
    )
    exact = True
    for node, neighbors, links, density in results[0]:
        expected = TABLE1[node]
        exact = exact and (neighbors, links, density) == expected
        table.add_row([node, neighbors, links, density,
                       f"({expected[0]}, {expected[1]}, {expected[2]})"])
    return table, exact


TABLE1_SPEC = ExperimentSpec(name="table1", build=_build, run=_run_one,
                             reduce=_reduce)


def run_table1(jobs=1):
    """Recompute Table 1; returns (table, exact_match: bool)."""
    return run_experiment(TABLE1_SPEC, jobs=jobs)


def figure1_expected_densities():
    """The paper's densities as exact fractions (for tests)."""
    return {node: Fraction(values[2]).limit_denominator(8)
            for node, values in TABLE1.items()}
