"""Off-UDG robustness: the metric comparison swept across topology models.

The paper's evaluation lives entirely on unit-disk deployments.  This
experiment asks how much of the density heuristic's behaviour survives
when the unit disk is replaced by other topology models -- decaying
distance rules, Erdős–Rényi, small worlds, scale-free graphs -- at the
*matched mean degree* (``n * pi * R**2``, the UDG-equivalent), so any
difference is structural, not a density artifact.

Each task is one (topology spec, run) cell: the generator builds a fresh
graph from the task's pre-spawned generator, the evaluation restricts to
the largest connected component (non-geometric models are not
connectivity-guaranteed), and every clustering metric of the comparison
family runs on it.  Per metric the run reports the cluster count, the
mean head eccentricity, and the mean routing stretch of a hierarchy
grown from that metric's own level-0 clustering over sampled node pairs.

Tasks execute through the parallel experiment engine with pre-spawned
per-task generators and a task-ordered reduce, so the emitted table is
byte-identical for every ``jobs`` value and backend.
"""

from repro.experiments.common import get_preset, resolve_topology_spec
from repro.experiments.engine import ExperimentSpec, run_experiment
from repro.experiments.metric_windows import METRIC_SCRATCH
from repro.experiments.scalability import _largest_component_topology
from repro.graph.models.registry import build_topology_spec
from repro.hierarchy.hierarchy import build_hierarchy
from repro.metrics.tables import Table
from repro.util.errors import ConfigurationError
from repro.util.rng import spawn_rngs
from repro.workload.serve import CachedRouter

#: Sampled source/destination pairs per run for the stretch column.
DEFAULT_STRETCH_SAMPLES = 16

#: The default sweep: every non-UDG generator family, at matched degree.
DEFAULT_SPECS = ("distance_rule", "erdos_renyi", "nw_small_world", "scale_free")


def _mean_stretch(topology, clustering, samples, rng):
    """Mean routing stretch of a hierarchy grown from ``clustering``."""
    nodes = list(topology.graph.nodes)
    if len(nodes) < 2 or samples < 1:
        return 1.0
    hierarchy = build_hierarchy(topology, rng=rng, physical_clustering=clustering)
    router = CachedRouter(hierarchy)
    stretches = []
    for _ in range(samples):
        a, b = rng.choice(len(nodes), 2, replace=False)
        _hops, _flat, stretch = router.route_stretch(nodes[int(a)], nodes[int(b)])
        stretches.append(stretch)
    return sum(stretches) / len(stretches)


def _run_cell(task):
    """One (spec, run) cell; returns per-metric observation dicts."""
    spec, samples, task_rng = task
    build_rng, dag_rng, sample_rng = spawn_rngs(task_rng, 3)
    topology = _largest_component_topology(build_topology_spec(spec, rng=build_rng))
    cells = {}
    for name, scratch in METRIC_SCRATCH.items():
        clustering = scratch(topology)
        cells[name] = {
            "clusters": clustering.cluster_count,
            "eccentricity": clustering.average_head_eccentricity(),
            "stretch": _mean_stretch(topology, clustering, samples, sample_rng),
        }
    # dag_rng reserved: keeps the spawn layout stable if a DAG-renaming
    # column is added without invalidating recorded tables.
    del dag_rng
    return {"nodes": len(topology.graph), "metrics": cells}


def _build(preset, rng, options):
    specs = options["specs"]
    runs = options["runs"]
    samples = options["samples"]
    rngs = spawn_rngs(rng, len(specs) * runs)
    return [
        (spec, samples, rngs[index * runs + run])
        for index, spec in enumerate(specs)
        for run in range(runs)
    ]


def _reduce(preset, tasks, results, options):
    specs = options["specs"]
    runs = options["runs"]
    table = Table(
        title=(
            f"Clustering robustness across topology models "
            f"({runs} run(s) per model, matched mean degree)"
        ),
        headers=[
            "topology",
            "metric",
            "mean n",
            "mean #clusters",
            "mean head ecc.",
            "mean stretch",
        ],
    )
    for index, spec in enumerate(specs):
        cells = results[index * runs : (index + 1) * runs]
        if not cells:
            raise ConfigurationError(f"no runs observed for topology {spec}")
        mean_nodes = sum(c["nodes"] for c in cells) / len(cells)
        for name in METRIC_SCRATCH:
            series = [c["metrics"][name] for c in cells]
            table.add_row(
                [
                    spec.name,
                    name,
                    mean_nodes,
                    sum(s["clusters"] for s in series) / len(series),
                    sum(s["eccentricity"] for s in series) / len(series),
                    sum(s["stretch"] for s in series) / len(series),
                ]
            )
    return table


ROBUSTNESS_SPEC = ExperimentSpec(
    name="robustness", build=_build, run=_run_cell, reduce=_reduce
)


def run_robustness(
    topologies=None,
    preset="quick",
    radius=0.1,
    rng=None,
    runs=None,
    jobs=1,
    samples=DEFAULT_STRETCH_SAMPLES,
):
    """The off-UDG robustness table over the given topology specs.

    ``topologies`` is a list of spec strings or ``TopologySpec``s
    (default: the four non-UDG families at matched mean degree); family
    defaults -- node count from the preset, matched degree from
    ``radius`` -- are filled per spec, explicit parameters winning.
    """
    preset = get_preset(preset)
    if runs is None:
        runs = preset.runs
    specs = [
        resolve_topology_spec(spec, count=preset.intensity, radius=radius)
        for spec in (topologies or DEFAULT_SPECS)
    ]
    return run_experiment(
        ROBUSTNESS_SPEC,
        preset,
        rng=rng,
        jobs=jobs,
        specs=specs,
        runs=runs,
        samples=samples,
    )
