"""Shared experiment machinery: presets, workload builders, runners."""

from dataclasses import dataclass, replace

from repro.clustering.oracle import compute_clustering
from repro.graph.generators import poisson_topology, square_grid_topology
from repro.naming.assign import assign_dag_ids
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng, spawn_rngs


@dataclass(frozen=True)
class Preset:
    """Workload scale for one experiment family.

    ``paper`` reproduces the paper's parameters (1000 runs of
    1000-intensity deployments, 15-minute mobility); ``quick`` is sized for
    the benchmark suite and CI; ``smoke`` for unit tests.  Statistical
    estimators are identical across presets -- only sample counts and
    population sizes shrink.
    """

    name: str
    runs: int
    intensity: int           # Poisson intensity / approximate grid size
    mobility_nodes: int
    mobility_duration: float  # seconds
    mobility_window: float    # seconds


PRESETS = {
    "paper": Preset(name="paper", runs=1000, intensity=1000,
                    mobility_nodes=1000, mobility_duration=900.0,
                    mobility_window=2.0),
    "quick": Preset(name="quick", runs=8, intensity=1000,
                    mobility_nodes=400, mobility_duration=120.0,
                    mobility_window=2.0),
    "smoke": Preset(name="smoke", runs=2, intensity=200,
                    mobility_nodes=80, mobility_duration=20.0,
                    mobility_window=2.0),
}


def get_preset(preset, **overrides):
    """Resolve a preset by name (or pass through a :class:`Preset`),
    optionally overriding individual fields."""
    if isinstance(preset, Preset):
        resolved = preset
    elif preset in PRESETS:
        resolved = PRESETS[preset]
    else:
        raise ConfigurationError(
            f"unknown preset {preset!r}; expected one of {sorted(PRESETS)} "
            "or a Preset instance")
    if overrides:
        resolved = replace(resolved, **overrides)
    return resolved


def build_topology(kind, intensity, radius, rng):
    """One evaluation workload: ``"random"`` (Poisson) or ``"grid"``."""
    if kind == "random":
        return poisson_topology(intensity, radius, rng=rng)
    if kind == "grid":
        return square_grid_topology(intensity, radius)
    raise ConfigurationError(f"unknown topology kind {kind!r}")


def clustered(topology, rng=None, use_dag=True, order="basic", fusion=False,
              previous=None, dag_ids=None):
    """Oracle clustering of a topology, with or without the DAG layer.

    When ``use_dag`` and no ``dag_ids`` are supplied, names are built by
    the polite renaming first.  Returns ``(clustering, dag_ids)`` so
    callers can thread names across mobility windows.
    """
    if use_dag and dag_ids is None:
        dag_ids, _rounds = assign_dag_ids(topology, as_rng(rng))
    clustering = compute_clustering(
        topology.graph, tie_ids=topology.ids,
        dag_ids=dag_ids if use_dag else None,
        order=order, fusion=fusion, previous=previous)
    return clustering, dag_ids


def per_run_rngs(rng, runs):
    """Independent child RNGs, one per simulation run."""
    return spawn_rngs(rng, runs)
