"""Shared experiment machinery: presets, workload builders, runners."""

import math
from dataclasses import dataclass, replace

from repro.clustering.oracle import compute_clustering
from repro.graph.generators import poisson_topology, square_grid_topology
from repro.graph.models.registry import (
    accepted_parameters,
    as_topology_spec,
    build_topology_spec,
    degree_parameters,
)
from repro.naming.assign import assign_dag_ids
from repro.util.errors import ConfigurationError
from repro.util.rng import as_rng, spawn_rngs


@dataclass(frozen=True)
class Preset:
    """Workload scale for one experiment family.

    ``paper`` reproduces the paper's parameters (1000 runs of
    1000-intensity deployments, 15-minute mobility); ``quick`` is sized for
    the benchmark suite and CI; ``smoke`` for unit tests.  Statistical
    estimators are identical across presets -- only sample counts and
    population sizes shrink.
    """

    name: str
    runs: int
    intensity: int           # Poisson intensity / approximate grid size
    mobility_nodes: int
    mobility_duration: float  # seconds
    mobility_window: float    # seconds


PRESETS = {
    "paper": Preset(name="paper", runs=1000, intensity=1000,
                    mobility_nodes=1000, mobility_duration=900.0,
                    mobility_window=2.0),
    "quick": Preset(name="quick", runs=8, intensity=1000,
                    mobility_nodes=400, mobility_duration=120.0,
                    mobility_window=2.0),
    "smoke": Preset(name="smoke", runs=2, intensity=200,
                    mobility_nodes=80, mobility_duration=20.0,
                    mobility_window=2.0),
}


def get_preset(preset, **overrides):
    """Resolve a preset by name (or pass through a :class:`Preset`),
    optionally overriding individual fields."""
    if isinstance(preset, Preset):
        resolved = preset
    elif preset in PRESETS:
        resolved = PRESETS[preset]
    else:
        raise ConfigurationError(
            f"unknown preset {preset!r}; expected one of {sorted(PRESETS)} "
            "or a Preset instance")
    if overrides:
        resolved = replace(resolved, **overrides)
    return resolved


def build_topology(kind, intensity, radius, rng, topology=None):
    """One evaluation workload: ``"random"`` (Poisson), ``"grid"``, or --
    when ``topology`` carries a spec -- any registered generator."""
    if topology is not None:
        spec = resolve_topology_spec(topology, count=intensity, radius=radius)
        return build_topology_spec(spec, rng=rng)
    if kind == "random":
        return poisson_topology(intensity, radius, rng=rng)
    if kind == "grid":
        return square_grid_topology(intensity, radius)
    raise ConfigurationError(f"unknown topology kind {kind!r}")


def matched_mean_degree(count, radius):
    """The UDG-equivalent mean degree: ``count * pi * radius**2``.

    A unit-square deployment of ``count`` nodes at transmission range
    ``radius`` has this expected degree (up to border effects); filling
    it into non-geometric generators makes cross-model comparisons
    degree-matched by construction.
    """
    return count * math.pi * radius * radius


def resolve_topology_spec(spec, preset=None, count=None, radius=None):
    """Fill experiment-family defaults into a topology spec.

    Only parameters the generator accepts *and* the spec doesn't pin are
    filled:

    * ``count`` (``intensity`` for the Poisson family) from the explicit
      ``count`` or the preset's intensity;
    * ``radius`` from the family's transmission range (quasi-UDG gets the
      matched ``r_max=radius``, ``r_min=radius/2`` pair);
    * ``degree`` -- the matched mean degree ``count * pi * radius**2`` --
      unless the spec already pins connectivity through the generator's
      own degree parameter (``p``, ``k``, ``m``, ...).

    Explicit spec parameters always win over every default.
    """
    spec = as_topology_spec(spec)
    accepted = set(accepted_parameters(spec.name))
    params = spec.param_dict()
    if count is None and preset is not None:
        count = get_preset(preset).intensity
    defaults = {}
    if count is not None:
        if "intensity" in accepted:
            if "count" not in params:
                defaults["intensity"] = int(count)
        elif "count" in accepted:
            defaults["count"] = int(count)
    if radius is not None:
        if "radius" in accepted:
            defaults["radius"] = radius
        if "r_max" in accepted and "r_min" in accepted:
            defaults["r_max"] = radius
            defaults["r_min"] = radius / 2.0
    if "degree" in accepted and "degree" not in params:
        pinned = any(name in params for name in degree_parameters(spec.name))
        filled = params.get("count", params.get("intensity", count))
        fill_radius = params.get("radius", radius)
        if not pinned and filled is not None and fill_radius is not None:
            defaults["degree"] = round(
                matched_mean_degree(filled, fill_radius), 4
            )
    return spec.with_defaults(**defaults)


def clustered(topology, rng=None, use_dag=True, order="basic", fusion=False,
              previous=None, dag_ids=None):
    """Oracle clustering of a topology, with or without the DAG layer.

    When ``use_dag`` and no ``dag_ids`` are supplied, names are built by
    the polite renaming first.  Returns ``(clustering, dag_ids)`` so
    callers can thread names across mobility windows.
    """
    if use_dag and dag_ids is None:
        dag_ids, _rounds = assign_dag_ids(topology, as_rng(rng))
    clustering = compute_clustering(
        topology.graph, tie_ids=topology.ids,
        dag_ids=dag_ids if use_dag else None,
        order=order, fusion=fusion, previous=previous)
    return clustering, dag_ids


def per_run_rngs(rng, runs):
    """Independent child RNGs, one per simulation run."""
    return spawn_rngs(rng, runs)
