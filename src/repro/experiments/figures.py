"""Figures 1-3: clustering renderings.

* Figure 1 -- the 9-node example, clustered into heads ``h`` and ``j``;
* Figure 2 -- the grid without the DAG: one network-wide cluster;
* Figure 3 -- the grid with the DAG: many compact clusters.
"""

from dataclasses import dataclass

from repro.experiments.common import clustered
from repro.graph.generators import figure1_topology, square_grid_topology
from repro.util.rng import as_rng
from repro.viz.ascii import cluster_legend, render_clustering


@dataclass(frozen=True)
class FigureResult:
    """A rendered figure plus the clustering behind it."""

    name: str
    topology: object
    clustering: object
    rendering: str
    legend: str

    def __str__(self):
        return f"{self.name}\n{self.rendering}\n{self.legend}"


def run_figure1():
    """The clustered example of Figure 1 (right side)."""
    topology = figure1_topology()
    clustering, _ = clustered(topology, use_dag=False)
    return FigureResult(
        name="Figure 1: example clustering (heads: h and j)",
        topology=topology,
        clustering=clustering,
        rendering=render_clustering(topology, clustering, width=40,
                                    height=12),
        legend=cluster_legend(clustering),
    )


def run_figure2(nodes=1000, radius=0.05):
    """Grid, no DAG: the single giant cluster of Figure 2."""
    topology = square_grid_topology(nodes, radius)
    clustering, _ = clustered(topology, use_dag=False)
    return FigureResult(
        name=f"Figure 2: grid (~{nodes} nodes, R={radius}) without DAG",
        topology=topology,
        clustering=clustering,
        rendering=render_clustering(topology, clustering),
        legend=cluster_legend(clustering),
    )


def run_figure3(nodes=1000, radius=0.05, rng=None):
    """Grid with DAG names: the many compact clusters of Figure 3."""
    topology = square_grid_topology(nodes, radius)
    clustering, _ = clustered(topology, rng=as_rng(rng), use_dag=True)
    return FigureResult(
        name=f"Figure 3: grid (~{nodes} nodes, R={radius}) with DAG",
        topology=topology,
        clustering=clustering,
        rendering=render_clustering(topology, clustering),
        legend=cluster_legend(clustering),
    )
