"""Per-request latency accounting (hop-count service model).

The abstract service model every hierarchy-routing evaluation uses: one
latency unit per physical hop, so a request's latency is its route
length.  The collector keeps an exact hop-count histogram inside a
:class:`~repro.collectors.summary.StreamingQuantile` (hop counts are
small integers, so the summary never leaves its exact regime), plus
read/write and unroutable counters.
"""

from collections import Counter

from repro.collectors.base import DataCollector, register_collector
from repro.collectors.summary import StreamingQuantile
from repro.workload.generators import WRITE


@register_collector
class LatencyCollector(DataCollector):
    """p50/p99/mean latency in hops, plus op and unroutable counts."""

    name = "latency"

    def __init__(self):
        self.hops = StreamingQuantile(lo=0.0, hi=4096.0)
        self.reads = 0
        self.writes = 0
        self.unroutable = 0

    def process(self, served):
        if served.route is None:
            self.unroutable += 1
            return
        if served.request.op == WRITE:
            self.writes += 1
        else:
            self.reads += 1
        self.hops.observe(served.hops)

    def process_batch(self, batch):
        """Counter-based fast path; state identical to the event loop.

        The quantile summary's state is a pure function of the observed
        multiset, so feeding each distinct hop count once with its
        multiplicity lands in exactly the per-event state.
        """
        routed = [served for served in batch if served.route is not None]
        self.unroutable += len(batch) - len(routed)
        writes = sum(1 for served in routed if served.request.op == WRITE)
        self.writes += writes
        self.reads += len(routed) - writes
        for hops, count in Counter(s.hops for s in routed).items():
            self.hops.observe(hops, count=count)

    def merge(self, other):
        self._check_mergeable(other)
        self.hops.merge(other.hops)
        self.reads += other.reads
        self.writes += other.writes
        self.unroutable += other.unroutable
        return self

    def results(self):
        summary = self.hops.results()
        return {
            "requests": summary["count"] + self.unroutable,
            "served": summary["count"],
            "unroutable": self.unroutable,
            "reads": self.reads,
            "writes": self.writes,
            "p50": summary["p50"],
            "p99": summary["p99"],
            "mean": summary["mean"],
            "max": summary["max"],
        }
