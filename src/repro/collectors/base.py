"""The ``DataCollector`` protocol and the fan-out proxy.

A collector consumes :class:`~repro.workload.serve.ServedRequest`
events and keeps *mergeable* partial state: ``merge`` must be
associative and order-independent (the property suite enforces both),
so any chunking of a request stream -- serial, pooled, or distributed
-- reduces to the same final state.  ``results()`` renders the state to
a flat ``dict`` of plain scalars for table building.
"""

from repro.util.errors import ConfigurationError

#: Registered collector classes by name (``register_collector``).
REGISTRY = {}


def register_collector(cls):
    """Class decorator: make a collector discoverable by ``name``."""
    if not getattr(cls, "name", None):
        raise ConfigurationError(f"{cls.__name__} needs a non-empty name")
    REGISTRY[cls.name] = cls
    return cls


class DataCollector:
    """One measurement over a served request stream.

    Subclasses implement :meth:`process` (one event), :meth:`merge`
    (fold another collector of the same type in, in place) and
    :meth:`results` (plain-scalar summary).  State must be picklable --
    chunk collectors travel back from worker processes.
    """

    name = "base"

    def process(self, served):
        """Absorb one :class:`~repro.workload.serve.ServedRequest`."""
        raise NotImplementedError

    def process_batch(self, batch):
        """Absorb a sequence of served requests.

        Equivalent by contract to ``for served in batch:
        self.process(served)`` -- the default does exactly that.
        Subclasses override it with vectorized/counter-based fast paths
        (the batched serving loop hands whole request chunks over), but
        the final state must stay bit-identical to the per-event loop.
        """
        for served in batch:
            self.process(served)

    def merge(self, other):
        """Fold ``other``'s partial state into this one; returns self."""
        raise NotImplementedError

    def results(self):
        """Summarize the absorbed events as a flat dict."""
        raise NotImplementedError

    def _check_mergeable(self, other):
        if type(other) is not type(self):
            raise ConfigurationError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )


class CollectorProxy(DataCollector):
    """Fan one event stream out to many collectors.

    Itself a :class:`DataCollector`: ``process`` forwards to every
    member, ``merge`` folds two proxies member by member (matched by
    collector name -- both sides must carry the same set), ``results``
    nests each member's summary under its name.
    """

    name = "proxy"

    def __init__(self, collectors):
        self.collectors = list(collectors)
        names = [collector.name for collector in self.collectors]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"collector names must be unique, got {names}")

    def __getitem__(self, name):
        for collector in self.collectors:
            if collector.name == name:
                return collector
        raise ConfigurationError(f"no collector named {name!r}")

    def process(self, served):
        for collector in self.collectors:
            collector.process(served)

    def process_batch(self, batch):
        batch = batch if isinstance(batch, (list, tuple)) else list(batch)
        for collector in self.collectors:
            collector.process_batch(batch)

    def merge(self, other):
        self._check_mergeable(other)
        theirs = {collector.name: collector for collector in other.collectors}
        if set(theirs) != {c.name for c in self.collectors}:
            raise ConfigurationError(
                "cannot merge proxies with different collector sets"
            )
        for collector in self.collectors:
            collector.merge(theirs[collector.name])
        return self

    def results(self):
        return {collector.name: collector.results() for collector in self.collectors}
