"""Pluggable measurement pipeline for the traffic-serving layer.

Icarus-style execution collectors: the serving loop hands every routed
request to a :class:`~repro.collectors.base.DataCollector`; a
:class:`~repro.collectors.base.CollectorProxy` fans one event out to
any set of collectors.  Every collector keeps *mergeable* partial state
-- counting dicts and the order-independent
:class:`~repro.collectors.summary.StreamingQuantile` -- so results from
independently served request chunks compose exactly (associatively and
order-independently), which is what lets the ``run_workload``
experiment family fan chunks out over any
:class:`~repro.experiments.engine.Executor` and still produce
byte-identical tables.
"""

from repro.collectors.base import (
    REGISTRY,
    CollectorProxy,
    DataCollector,
    register_collector,
)
from repro.collectors.latency import LatencyCollector
from repro.collectors.load import HeadLoadCollector, LinkLoadCollector
from repro.collectors.stretch import StretchCollector
from repro.collectors.summary import StreamingQuantile

__all__ = [
    "REGISTRY",
    "CollectorProxy",
    "DataCollector",
    "HeadLoadCollector",
    "LatencyCollector",
    "LinkLoadCollector",
    "StreamingQuantile",
    "StretchCollector",
    "register_collector",
]
