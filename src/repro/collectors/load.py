"""Link-load and cluster-head-load collectors.

The production-scale questions FLEAM-style IIoT serving asks of a
cluster hierarchy: which physical links carry the traffic, and how
badly does destination skew hot-spot the aggregation points (the
cluster-heads)?  Both collectors are counting dicts -- exactly
mergeable, order-independent.
"""

import math
from collections import Counter
from itertools import chain, pairwise

from repro.collectors.base import DataCollector, register_collector


@register_collector
class LinkLoadCollector(DataCollector):
    """Traversal count per physical link (undirected, canonicalized)."""

    name = "link_load"

    def __init__(self):
        self.loads = {}  # canonical (u, v) -> traversal count

    def process(self, served):
        route = served.route
        if route is None:
            return
        loads = self.loads
        for i in range(len(route) - 1):
            u, v = route[i], route[i + 1]
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            loads[key] = loads.get(key, 0) + 1

    def process_batch(self, batch):
        """Counter fast path: canonicalize per distinct *directed* pair.

        The per-event loop calls ``repr`` twice per hop; counting hops
        per directed pair first and canonicalizing once per distinct
        pair absorbs the same multiset of undirected traversals, so the
        final dict is identical.
        """
        counter = Counter()
        for served in batch:
            if served.route is not None:
                counter.update(pairwise(served.route))
        loads = self.loads
        for (u, v), count in counter.items():
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            loads[key] = loads.get(key, 0) + count

    def merge(self, other):
        self._check_mergeable(other)
        loads = self.loads
        for key, count in other.loads.items():
            loads[key] = loads.get(key, 0) + count
        return self

    def results(self):
        if not self.loads:
            return {
                "links_used": 0,
                "traversals": 0,
                "mean": math.nan,
                "p99": math.nan,
                "max": math.nan,
            }
        counts = sorted(self.loads.values())
        total = sum(counts)
        rank = max(1, math.ceil(0.99 * len(counts)))
        return {
            "links_used": len(counts),
            "traversals": total,
            "mean": total / len(counts),
            "p99": counts[rank - 1],
            "max": counts[-1],
        }


@register_collector
class HeadLoadCollector(DataCollector):
    """Requests handled per cluster-head (hot-spotting under skew).

    Every head on a request's overlay head path -- source head,
    transit heads, destination head -- handles that request once.
    Heads that never appear still belong in the balance statistics, so
    the collector is seeded with the clustering's full head set (and
    merging unions the sets, which keeps mobility windows with changing
    head populations composable).
    """

    name = "head_load"

    def __init__(self, heads=()):
        self.loads = {head: 0 for head in heads}

    def process(self, served):
        if served.head_path is None:
            return
        loads = self.loads
        for head in served.head_path:
            loads[head] = loads.get(head, 0) + 1

    def process_batch(self, batch):
        counter = Counter(chain.from_iterable(
            served.head_path for served in batch
            if served.head_path is not None))
        loads = self.loads
        for head, count in counter.items():
            loads[head] = loads.get(head, 0) + count

    def merge(self, other):
        self._check_mergeable(other)
        loads = self.loads
        for head, count in other.loads.items():
            loads[head] = loads.get(head, 0) + count
        return self

    def results(self):
        """Balance statistics over *all* known heads (idle ones count).

        ``max/mean`` is the hot-spot factor (1.0 = perfectly balanced);
        ``jain`` is Jain's fairness index ``(sum x)^2 / (n * sum x^2)``
        (1.0 = perfectly fair, ``1/n`` = one head does everything).
        """
        if not self.loads:
            return {
                "heads": 0,
                "handled": 0,
                "mean": math.nan,
                "max": math.nan,
                "imbalance": math.nan,
                "jain": math.nan,
            }
        counts = sorted(self.loads.values())
        total = sum(counts)
        mean = total / len(counts)
        square_sum = sum(count * count for count in counts)
        if square_sum:
            jain = total * total / (len(counts) * square_sum)
        else:
            jain = math.nan
        return {
            "heads": len(counts),
            "handled": total,
            "mean": mean,
            "max": counts[-1],
            "imbalance": counts[-1] / mean if total else math.nan,
            "jain": jain,
        }
