"""Mergeable, order-independent streaming quantile summaries.

The chunked serving pipeline needs percentiles whose value is a
function of the observed *multiset* alone -- never of arrival order or
of how the stream was split across workers.  General-purpose sketches
(GK, t-digest) break that: their state depends on insertion order.
:class:`StreamingQuantile` instead runs in two regimes, both multiset-
deterministic:

* **exact** while the number of *distinct* values is at most
  ``exact_cap``: a counting dict keyed by value, percentiles by
  nearest rank over the sorted keys -- no error at all (hop-count
  latencies and stretch ratios live here permanently);
* **binned** once distinct values exceed the cap: every value collapses
  to the fixed equal-width grid of ``bins`` bins over ``[lo, hi]``
  (clamped at the edges), counts summed per bin, percentiles taken at
  bin centers.  The grid is fixed at construction, so the binned state
  is again a pure function of the multiset.

Documented error bound: exact mode is exact; binned mode reports
quantiles off by at most one bin width, ``(hi - lo) / bins`` (plus the
clamp distortion for values outside ``[lo, hi]``; ``min``/``max`` stay
exact in both modes).  The property suite checks both the bound and
merge associativity/order-independence.
"""

import math

from repro.util.errors import ConfigurationError


class StreamingQuantile:
    """Bounded-memory quantile summary with multiset-deterministic state.

    All instances being merged must share identical ``(lo, hi, bins,
    exact_cap)`` parameters.
    """

    def __init__(self, lo=0.0, hi=1024.0, bins=4096, exact_cap=4096):
        if not hi > lo:
            raise ConfigurationError(f"need hi > lo, got [{lo}, {hi}]")
        if bins < 1 or exact_cap < 1:
            raise ConfigurationError("bins and exact_cap must be >= 1")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.exact_cap = int(exact_cap)
        self.counts = {}
        self.binned = False
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        # Totals kept as exact integer-scaled sums would constrain the
        # domain; instead the mean is derived from the counts dict at
        # query time (sorted order), keeping it multiset-deterministic.

    @property
    def width(self):
        """Bin width = the documented binned-mode error bound."""
        return (self.hi - self.lo) / self.bins

    def _bin_value(self, value):
        """The bin-center representative of ``value`` on the fixed grid."""
        clamped = min(max(value, self.lo), self.hi)
        index = min(int((clamped - self.lo) / self.width), self.bins - 1)
        return self.lo + (index + 0.5) * self.width

    def _collapse(self):
        binned = {}
        for value, count in self.counts.items():
            key = self._bin_value(value)
            binned[key] = binned.get(key, 0) + count
        self.counts = binned
        self.binned = True

    def observe(self, value, count=1):
        """Absorb ``count`` occurrences of ``value``."""
        value = float(value)
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        self.count += count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key = self._bin_value(value) if self.binned else value
        self.counts[key] = self.counts.get(key, 0) + count
        if not self.binned and len(self.counts) > self.exact_cap:
            self._collapse()

    def merge(self, other):
        """Fold ``other`` in; both summaries must share parameters."""
        if not isinstance(other, StreamingQuantile):
            raise ConfigurationError(
                f"cannot merge {type(other).__name__} into a summary"
            )
        ours = (self.lo, self.hi, self.bins, self.exact_cap)
        if ours != (other.lo, other.hi, other.bins, other.exact_cap):
            raise ConfigurationError("summary parameters do not match")
        if other.binned and not self.binned:
            self._collapse()
        for value, count in other.counts.items():
            key = self._bin_value(value) if self.binned else value
            self.counts[key] = self.counts.get(key, 0) + count
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if not self.binned and len(self.counts) > self.exact_cap:
            self._collapse()
        return self

    def percentile(self, q):
        """Nearest-rank ``q``-th percentile (``q`` in [0, 100])."""
        if not 0 <= q <= 100:
            raise ConfigurationError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= rank:
                return value
        return self.max  # unreachable; guards float accumulation quirks

    @property
    def mean(self):
        """Multiset-deterministic mean (summed in sorted-value order)."""
        if self.count == 0:
            return math.nan
        total = 0.0
        for value in sorted(self.counts):
            total += value * self.counts[value]
        return total / self.count

    def results(self):
        """Common summary scalars."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
        }
