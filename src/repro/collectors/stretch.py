"""Path-stretch accounting: hierarchical hops over flat hops.

Stretch is the price of routing through the hierarchy instead of flat
shortest paths.  The serving loop computes the flat denominator only
for sampled requests (``flat_every`` in :func:`~repro.workload.serve.
serve_workload`); this collector absorbs exactly those.  State is a
counting dict keyed by the ``(hier hops, flat hops)`` pair -- both
small integers -- so the partial state is exact, tiny, and composes
across chunks without any floating-point order sensitivity; ratios are
only formed at query time, in sorted key order.
"""

import math

from repro.collectors.base import DataCollector, register_collector


@register_collector
class StretchCollector(DataCollector):
    """Mean/p99 stretch over the stretch-sampled requests."""

    name = "stretch"

    def __init__(self):
        self.pairs = {}  # (hier hops, flat hops) -> count

    def process(self, served):
        if served.route is None or served.flat_hops is None:
            return
        # A zero-hop pair (source == destination) has stretch 1 by
        # convention; it is recorded as (0, 0).
        key = (served.hops, served.flat_hops)
        self.pairs[key] = self.pairs.get(key, 0) + 1

    def merge(self, other):
        self._check_mergeable(other)
        pairs = self.pairs
        for key, count in other.pairs.items():
            pairs[key] = pairs.get(key, 0) + count
        return self

    @staticmethod
    def _ratio(hier, flat):
        return 1.0 if flat == 0 else hier / flat

    def results(self):
        if not self.pairs:
            return {
                "sampled": 0,
                "mean": math.nan,
                "p50": math.nan,
                "p99": math.nan,
                "max": math.nan,
            }
        ratios = sorted(
            (self._ratio(hier, flat), count)
            for (hier, flat), count in self.pairs.items()
        )
        total = sum(count for _, count in ratios)
        # All percentiles in one pass over the sorted ratio histogram:
        # walk it once, resolving each nearest-rank threshold as the
        # cumulative count crosses it (thresholds ascend with q, so a
        # single cursor suffices), and accumulate the weighted mean in
        # the same sweep.
        ranks = [
            (name, max(1, math.ceil(q / 100.0 * total)))
            for name, q in (("p50", 50), ("p99", 99))
        ]
        percentiles = {}
        cursor = 0
        seen = 0
        weighted = 0.0
        for ratio, count in ratios:
            seen += count
            weighted += ratio * count
            while cursor < len(ranks) and seen >= ranks[cursor][1]:
                percentiles[ranks[cursor][0]] = ratio
                cursor += 1
        return {
            "sampled": total,
            "mean": weighted / total,
            "p50": percentiles["p50"],
            "p99": percentiles["p99"],
            "max": ratios[-1][0],
        }
