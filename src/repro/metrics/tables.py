"""Plain-text table rendering for experiment outputs.

Every experiment runner returns a :class:`Table`; benches print it so the
benchmark logs show the same rows the paper's tables do, next to the
paper's reference values where available.
"""

from repro.util.errors import ConfigurationError


class Table:
    """A titled grid of cells with a header row."""

    def __init__(self, title, headers, rows=None):
        self.title = title
        self.headers = list(headers)
        self.rows = []
        for row in rows or []:
            self.add_row(row)

    def add_row(self, cells):
        cells = list(cells)
        if len(cells) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(cells)} cells for {len(self.headers)} headers")
        self.rows.append(cells)

    def formatted(self, precision=2):
        """Render to aligned text."""
        def fmt(cell):
            if isinstance(cell, float):
                return f"{cell:.{precision}f}"
            return str(cell)

        grid = [self.headers] + [[fmt(c) for c in row] for row in self.rows]
        widths = [max(len(row[i]) for row in grid)
                  for i in range(len(self.headers))]
        lines = [self.title]
        for index, row in enumerate(grid):
            lines.append("  ".join(cell.rjust(widths[i])
                                   for i, cell in enumerate(row)))
            if index == 0:
                lines.append("  ".join("-" * widths[i]
                                       for i in range(len(widths))))
        return "\n".join(lines)

    def __str__(self):
        return self.formatted()

    def column(self, header):
        """All cells of the named column."""
        if header not in self.headers:
            raise ConfigurationError(f"no column {header!r} in {self.headers}")
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def to_csv(self):
        """Comma-separated rendering (header row first).

        Cells containing commas or quotes are quoted per RFC 4180 so the
        output loads into any spreadsheet or pandas.
        """
        def escape(cell):
            text = str(cell)
            if any(ch in text for ch in ",\"\n"):
                return '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(escape(h) for h in self.headers)]
        for row in self.rows:
            lines.append(",".join(escape(cell) for cell in row))
        return "\n".join(lines)
