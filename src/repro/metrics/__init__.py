"""Evaluation metrics: cluster structure, head stability, table rendering."""

from repro.metrics.clusters import ClusterStats, cluster_stats, mean_stats
from repro.metrics.overhead import (
    TrafficStats,
    frame_bytes,
    payload_bytes,
    reaffiliations,
)
from repro.metrics.stability import (
    RetentionSeries,
    head_retention,
    retention_over_clusterings,
)
from repro.metrics.tables import Table

__all__ = [
    "ClusterStats",
    "RetentionSeries",
    "Table",
    "TrafficStats",
    "cluster_stats",
    "frame_bytes",
    "head_retention",
    "mean_stats",
    "payload_bytes",
    "reaffiliations",
    "retention_over_clusterings",
]
