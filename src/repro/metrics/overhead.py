"""Control-overhead accounting.

The paper's case for the density metric is *traffic*: a good clustering
"allows to limit the exchanged traffic generated while clusters are
re-built and the nodes' tables updated."  This module provides the two
sides of that ledger:

* wire-level: an estimated serialized size for every frame payload the
  runtime broadcasts (:func:`payload_bytes`), accumulated by the
  simulator into :class:`TrafficStats`;
* event-level: re-affiliation counts between consecutive clusterings
  (:func:`reaffiliations`) -- each node whose head changes forces routing
  table updates throughout its old and new clusters.
"""

from dataclasses import dataclass, field
from fractions import Fraction

_SCALAR_BYTES = 4
_FRACTION_BYTES = 8


def payload_bytes(value):
    """Estimated on-air bytes for one payload value.

    A deliberately simple fixed-width model: 4 bytes per scalar
    (identifier, int, float, bool), 8 per exact fraction, UTF-8 length
    for strings, recursive sum plus a 1-byte length prefix for
    containers.  Absolute values are nominal; *comparisons* between
    protocol configurations are the point.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, Fraction):
        return _FRACTION_BYTES
    if isinstance(value, (int, float)):
        return _SCALAR_BYTES
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple, set, frozenset)):
        return 1 + sum(payload_bytes(item) for item in value)
    if isinstance(value, dict):
        return 1 + sum(payload_bytes(k) + payload_bytes(v)
                       for k, v in value.items())
    return _SCALAR_BYTES


def frame_bytes(frame):
    """Estimated bytes of a full frame: sender id + payload."""
    return _SCALAR_BYTES + payload_bytes(frame.payload)


@dataclass
class TrafficStats:
    """Cumulative channel usage of one simulation."""

    frames_sent: int = 0
    bytes_sent: int = 0
    frames_delivered: int = 0
    per_step_bytes: list = field(default_factory=list)

    def record_step(self, frames, inboxes):
        step_bytes = 0
        for frame in frames.values():
            self.frames_sent += 1
            step_bytes += frame_bytes(frame)
        self.bytes_sent += step_bytes
        self.per_step_bytes.append(step_bytes)
        self.frames_delivered += sum(len(inbox) for inbox in inboxes.values())

    def mean_bytes_per_step(self):
        if not self.per_step_bytes:
            return 0.0
        return self.bytes_sent / len(self.per_step_bytes)


def reaffiliations(before, after):
    """Nodes whose cluster-head assignment changed between two windows.

    Counted over the nodes present in both clusterings; each one is a
    routing-table update event.
    """
    common = set(before.head_of) & set(after.head_of)
    return sum(before.head_of[node] != after.head_of[node]
               for node in common)
