"""Cluster-head stability metrics (the Section 5 mobility experiment).

The paper's criterion: *the percentage of cluster-heads which remained
cluster-heads after each 2 seconds*.  Given the head sets of consecutive
evaluation windows, the per-window retention is
``|heads_t ∩ heads_{t+1}| / |heads_t|`` and the reported figure is its
mean over the run.
"""

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


def head_retention(heads_before, heads_after):
    """Fraction of previous heads still heads in the next window."""
    heads_before = set(heads_before)
    if not heads_before:
        raise ConfigurationError("no heads in the previous window")
    return len(heads_before & set(heads_after)) / len(heads_before)


@dataclass
class RetentionSeries:
    """Accumulates per-window retention across a mobility run."""

    values: list

    def __init__(self):
        self.values = []

    def observe(self, heads_before, heads_after):
        self.values.append(head_retention(heads_before, heads_after))

    @property
    def mean(self):
        if not self.values:
            raise ConfigurationError("no retention windows observed")
        return sum(self.values) / len(self.values)

    @property
    def percent(self):
        """Mean retention as the percentage the paper quotes."""
        return 100.0 * self.mean

    def __len__(self):
        return len(self.values)


def retention_over_clusterings(clusterings):
    """Retention series over an ordered sequence of clusterings."""
    series = RetentionSeries()
    previous = None
    for clustering in clusterings:
        if previous is not None:
            series.observe(previous.heads, clustering.heads)
        previous = clustering
    return series
