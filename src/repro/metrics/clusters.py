"""Cluster-structure metrics: the rows of Tables 4 and 5."""

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ClusterStats:
    """The three per-topology statistics the paper reports.

    ``cluster_count`` is per surface unit when ``area`` is supplied to
    :func:`cluster_stats` (the paper's unit square makes the two coincide).
    """

    cluster_count: float
    mean_head_eccentricity: float
    mean_tree_length: float

    def row(self):
        """The (count, eccentricity, tree length) triple, Table 4/5 order."""
        return (self.cluster_count, self.mean_head_eccentricity,
                self.mean_tree_length)


def cluster_stats(clustering, area=1.0):
    """Compute the Table 4/5 statistics for one clustering."""
    if area <= 0:
        raise ConfigurationError(f"area must be positive, got {area}")
    return ClusterStats(
        cluster_count=clustering.cluster_count / area,
        mean_head_eccentricity=clustering.average_head_eccentricity(),
        mean_tree_length=clustering.average_tree_length(),
    )


def mean_stats(stats_list):
    """Average a list of :class:`ClusterStats` (one per simulation run)."""
    if not stats_list:
        raise ConfigurationError("cannot average zero runs")
    count = len(stats_list)
    return ClusterStats(
        cluster_count=sum(s.cluster_count for s in stats_list) / count,
        mean_head_eccentricity=sum(s.mean_head_eccentricity
                                   for s in stats_list) / count,
        mean_tree_length=sum(s.mean_tree_length for s in stats_list) / count,
    )
