"""Shared fixtures: canonical small topologies and deterministic RNGs."""

import numpy as np
import pytest

from repro.graph.generators import (
    complete_topology,
    figure1_topology,
    grid_topology,
    line_topology,
    ring_topology,
    star_topology,
    uniform_topology,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fig1():
    return figure1_topology()


@pytest.fixture
def line7():
    return line_topology(7)


@pytest.fixture
def ring6():
    return ring_topology(6)


@pytest.fixture
def star5():
    return star_topology(5)


@pytest.fixture
def k4():
    return complete_topology(4)


@pytest.fixture
def small_grid():
    # 5x5 grid with 8-neighborhood (radius 1.6 cells).
    return grid_topology(5, 5, 1.6 * 0.25)


@pytest.fixture
def random50():
    return uniform_topology(50, 0.22, rng=7)
