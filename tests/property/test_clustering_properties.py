"""Property tests: structural invariants of the clustering fixpoint."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.oracle import compute_clustering
from repro.graph.paths import bfs_distances

from tests.property.strategies import connected_graphs, graphs


@settings(max_examples=60, deadline=None)
@given(graph=graphs())
def test_parents_form_valid_forest(graph):
    clustering = compute_clustering(graph)
    for node in graph:
        parent = clustering.parent(node)
        assert parent == node or graph.has_edge(node, parent)


@settings(max_examples=60, deadline=None)
@given(graph=graphs())
def test_heads_are_exactly_self_parents(graph):
    clustering = compute_clustering(graph)
    for node in graph:
        assert clustering.is_head(node) == (clustering.parent(node) == node)


@settings(max_examples=60, deadline=None)
@given(graph=graphs())
def test_no_two_adjacent_heads(graph):
    clustering = compute_clustering(graph)
    for u, v in graph.edges:
        assert not (clustering.is_head(u) and clustering.is_head(v))


@settings(max_examples=60, deadline=None)
@given(graph=graphs())
def test_clusters_are_connected(graph):
    clustering = compute_clustering(graph)
    for head, members in clustering.clusters.items():
        subgraph = graph.induced_subgraph(members)
        assert set(bfs_distances(subgraph, head)) == set(members)


@settings(max_examples=60, deadline=None)
@given(graph=graphs())
def test_every_node_reaches_a_head(graph):
    clustering = compute_clustering(graph)
    for node in graph:
        head = clustering.head(node)
        assert clustering.is_head(head)


@settings(max_examples=50, deadline=None)
@given(graph=graphs())
def test_parent_never_precedes_child(graph):
    # F(p) strictly succeeds p under the order unless p is a head; this is
    # the acyclicity argument of the stabilization proof.
    from repro.clustering.density import all_densities
    densities = all_densities(graph, exact=True)
    clustering = compute_clustering(graph)
    for node in graph:
        parent = clustering.parent(node)
        if parent != node:
            assert (densities[parent], -parent) > (densities[node], -node)


@settings(max_examples=40, deadline=None)
@given(graph=connected_graphs())
def test_fusion_heads_three_hops_apart(graph):
    clustering = compute_clustering(graph, fusion=True)
    clustering.check_fusion_separation()
    for head, members in clustering.clusters.items():
        subgraph = graph.induced_subgraph(members)
        assert set(bfs_distances(subgraph, head)) == set(members)


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), shift=st.integers(0, 3))
def test_dag_ids_preserve_invariants(graph, shift):
    # Arbitrary (even conflicting) DAG names may change who wins, but never
    # break the forest or the non-adjacent-heads invariants.
    dag_ids = {node: (node + shift) % 4 for node in graph}
    clustering = compute_clustering(graph, dag_ids=dag_ids)
    for u, v in graph.edges:
        assert not (clustering.is_head(u) and clustering.is_head(v))
    for head, members in clustering.clusters.items():
        subgraph = graph.induced_subgraph(members)
        assert set(bfs_distances(subgraph, head)) == set(members)


@settings(max_examples=40, deadline=None)
@given(graph=graphs())
def test_incumbent_stationarity(graph):
    # Re-solving with the previous solution's heads as incumbents must
    # reproduce the same head set (hysteresis fixpoint).
    first = compute_clustering(graph, order="incumbent")
    second = compute_clustering(graph, order="incumbent", previous=first)
    assert second.heads == first.heads
