"""CSR vs dict-backend equivalence on random and geometric graphs.

The CSR fast path must be observationally identical to the dict backend:
same edge sets, same degrees, and bit-identical densities on both the
float and the exact ``Fraction`` path.  Geometric cases (UDG and
quasi-UDG at several radii) exercise the bulk ``from_pair_array``
construction; hypothesis cases exercise snapshots of incrementally built
graphs, including isolated nodes and the 1-node collapse.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.clustering.density import all_densities, all_densities_reference
from repro.graph.generators import uniform_topology
from repro.graph.graph import Graph
from repro.graph.quasi_udg import quasi_uniform_topology

from tests.property.strategies import graphs


def assert_csr_matches_dict(graph):
    csr = graph.to_csr()
    # Node universe and ordering.
    assert list(csr.ids) == graph.nodes
    assert len(csr) == len(graph)
    assert csr.edge_count() == graph.edge_count()
    # Degrees.
    degrees = csr.degrees()
    for node, index in csr.index_of.items():
        assert degrees[index] == graph.degree(node)
    # Edge sets (identifier space vs index space).
    eu, ev = csr.edge_arrays()
    csr_edges = {frozenset((csr.ids[int(u)], csr.ids[int(v)]))
                 for u, v in zip(eu, ev)}
    assert csr_edges == {frozenset(edge) for edge in graph.edges}
    # Rows sorted ascending, mirror symmetry via has_edge.
    for index in range(len(csr)):
        row = csr.neighbors_of(index)
        assert list(row) == sorted(row)
        for j in row:
            assert csr.has_edge(int(j), index)
    # Densities: float and exact, bit-identical to the reference.
    assert all_densities(graph) == all_densities_reference(graph)
    assert (all_densities(graph, exact=True)
            == all_densities_reference(graph, exact=True))


@settings(max_examples=60)
@given(graph=graphs())
def test_csr_matches_dict_backend_on_random_graphs(graph):
    assert_csr_matches_dict(graph)


@pytest.mark.parametrize("seed,count,radius", [
    (1, 60, 0.15), (2, 120, 0.1), (3, 200, 0.25), (4, 80, 0.02),
])
def test_csr_matches_dict_backend_on_udg(seed, count, radius):
    topo = uniform_topology(count, radius, rng=seed)
    assert_csr_matches_dict(topo.graph)


@pytest.mark.parametrize("seed,count,r_min,r_max", [
    (5, 60, 0.1, 0.2), (6, 120, 0.05, 0.1), (7, 90, 0.15, 0.15),
])
def test_csr_matches_dict_backend_on_quasi_udg(seed, count, r_min, r_max):
    topo = quasi_uniform_topology(count, r_min, r_max, rng=seed)
    assert_csr_matches_dict(topo.graph)


def test_csr_handles_isolated_nodes():
    graph = Graph(nodes=["lonely", 7], edges=[(1, 2), (2, 3)])
    assert_csr_matches_dict(graph)
    csr = graph.to_csr()
    assert csr.degrees()[csr.index_of["lonely"]] == 0
    assert all_densities(graph)["lonely"] == 0.0


def test_csr_one_node_collapse():
    graph = Graph(nodes=[42])
    assert_csr_matches_dict(graph)
    csr = graph.to_csr()
    assert len(csr) == 1
    assert csr.edge_count() == 0
    assert list(csr.triangle_counts()) == [0]


def test_csr_empty_graph():
    assert_csr_matches_dict(Graph())


def test_bulk_equals_incremental_udg_construction():
    """from_pair_array must yield the same adjacency (and the same set
    iteration order, hence the same ``edges`` list) as an add_edge loop
    over the sorted pair array."""
    from repro.graph.geometry import pairs_within_range

    rng = np.random.default_rng(99)
    positions = rng.uniform(0.0, 1.0, size=(300, 2))
    pairs = pairs_within_range(positions, 0.1)
    incremental = Graph(nodes=range(300))
    for i, j in pairs.tolist():
        incremental.add_edge(i, j)
    bulk = Graph.from_pair_array(pairs, 300)
    assert incremental._adj == bulk._adj
    assert incremental.edges == bulk.edges


@settings(max_examples=40)
@given(graph=graphs(min_nodes=1, max_nodes=12))
def test_snapshot_survives_roundtrip_through_pairs(graph):
    """Rebuilding via from_pair_array preserves the structure exactly."""
    index_of = {node: i for i, node in enumerate(graph.nodes)}
    pairs = np.array([[index_of[u], index_of[v]] for u, v in graph.edges],
                     dtype=np.int64).reshape(-1, 2)
    rebuilt = Graph.from_pair_array(pairs, graph.nodes)
    assert set(rebuilt.nodes) == set(graph.nodes)
    assert ({frozenset(e) for e in rebuilt.edges}
            == {frozenset(e) for e in graph.edges})
    assert (all_densities(rebuilt, exact=True)
            == all_densities(graph, exact=True))
