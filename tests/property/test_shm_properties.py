"""Property tests: shared-memory CSR round-trips and float densities."""

import numpy as np
from hypothesis import given, settings

from repro.clustering.density import all_densities
from repro.graph.graph import Graph
from repro.graph.shm import SharedCSR

from tests.property.strategies import graphs


@settings(max_examples=25, deadline=None)
@given(graph=graphs())
def test_shared_csr_roundtrip_is_exact(graph):
    csr = graph.to_csr()
    csr.triangle_counts()  # memoize, so attach must carry them over
    handle = SharedCSR.publish(csr)
    try:
        attached = handle.attach()
        assert np.array_equal(attached.indptr, csr.indptr)
        assert np.array_equal(attached.indices, csr.indices)
        assert list(attached.ids) == list(csr.ids)
        assert attached.index_of == csr.index_of
        assert np.array_equal(attached.triangle_counts(),
                              csr.triangle_counts())
        assert attached.edge_count() == csr.edge_count()
    finally:
        handle.unlink()


@settings(max_examples=25, deadline=None)
@given(graph=graphs())
def test_shared_csr_roundtrip_with_relabeled_ids(graph):
    relabeled = Graph(nodes=[f"v{node}" for node in graph])
    relabeled.add_edges_from((f"v{u}", f"v{v}") for u, v in graph.edges)
    csr = relabeled.to_csr()
    handle = SharedCSR.publish(csr)
    try:
        attached = handle.attach()
        assert list(attached.ids) == list(csr.ids)
        assert np.array_equal(attached.indices, csr.indices)
    finally:
        handle.unlink()


@settings(max_examples=60)
@given(graph=graphs())
def test_float_density_is_the_rounded_exact_fraction(graph):
    exact = all_densities(graph, exact=True)
    fast = all_densities(graph, exact=False)
    for node in graph:
        assert fast[node] == float(exact[node])


@settings(max_examples=60)
@given(graph=graphs())
def test_float_order_agrees_with_exact_order_up_to_ties(graph):
    exact = all_densities(graph, exact=True)
    fast = all_densities(graph, exact=False)
    nodes = list(graph)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if fast[u] != fast[v]:
                # Distinct floats: monotone rounding preserves the order.
                assert (fast[u] < fast[v]) == (exact[u] < exact[v])
            else:
                # A float tie can only hide an exact tie at these sizes
                # (the FLOAT_EXACT_LIMIT injectivity bound).
                assert exact[u] == exact[v]
