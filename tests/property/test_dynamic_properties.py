"""Incremental-vs-scratch equivalence under randomized dynamics.

The delta subsystem must be observationally identical to the rebuild
pipeline after *any* sequence of moves, joins, and leaves: same edge
sets, bit-identical exact densities (same Fractions from the same
machine integers), same cluster-heads under every order/fusion
configuration, and the same DAG-repair decisions (the repair inputs the
mobility loop feeds the renamer).  Hypothesis drives small adversarial
sequences -- including the all-nodes-moved and empty-delta edge cases --
and seeded medium-size walks cover the drift-triggered grid re-joins.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.density import all_densities
from repro.clustering.incremental import IncrementalElection
from repro.clustering.oracle import compute_clustering
from repro.graph.dynamic import DynamicTopology, DynamicUnitDisk
from repro.graph.geometry import pairs_within_range
from repro.mobility.trace import topology_at
from repro.naming.renaming import conflicting_edges, is_locally_unique

CONFIGS = [("basic", False), ("basic", True),
           ("incumbent", False), ("incumbent", True)]


@st.composite
def move_sequences(draw):
    """A deployment plus a short sequence of per-window actions."""
    n = draw(st.integers(2, 14))
    radius = draw(st.sampled_from([0.15, 0.3, 0.6]))
    coord = st.floats(0, 1, allow_nan=False, width=32)
    positions = [(draw(coord), draw(coord)) for _ in range(n)]
    actions = draw(st.lists(st.sampled_from(
        ["move-all", "move-one", "move-none", "jitter"]), min_size=1,
        max_size=5))
    return n, radius, positions, actions


def apply_action(rng, action, positions):
    positions = positions.copy()
    if action == "move-all":
        positions = rng.uniform(0, 1, size=positions.shape)
    elif action == "move-one" and len(positions):
        positions[int(rng.integers(len(positions)))] = rng.uniform(0, 1,
                                                                   size=2)
    elif action == "jitter":
        positions = np.clip(
            positions + rng.uniform(-0.02, 0.02, size=positions.shape), 0, 1)
    return positions  # "move-none" falls through unchanged


def assert_state_matches_scratch(dynamic, positions):
    scratch = topology_at(positions, dynamic.radius,
                          ids=dynamic.graph.nodes)
    assert {frozenset(e) for e in dynamic.graph.edges} == \
        {frozenset(e) for e in scratch.graph.edges}
    assert dynamic.graph.nodes == scratch.graph.nodes
    expected = all_densities(scratch.graph, exact=True)
    assert dynamic.densities == expected
    assert all(isinstance(v, Fraction) for v in dynamic.densities.values())
    # The adopted CSR snapshot equals the scratch-built one.
    ours, theirs = dynamic.graph.to_csr(), scratch.graph.to_csr()
    assert ours.ids == theirs.ids
    assert np.array_equal(ours.indptr, theirs.indptr)
    assert np.array_equal(ours.indices, theirs.indices)


@settings(max_examples=40, deadline=None)
@given(case=move_sequences())
def test_moves_keep_topology_and_densities_bit_identical(case):
    n, radius, start, actions = case
    rng = np.random.default_rng(12345)
    positions = np.asarray(start, dtype=float)
    dynamic = DynamicTopology(positions, radius)
    assert_state_matches_scratch(dynamic, positions)
    for action in actions:
        positions = apply_action(rng, action, positions)
        update = dynamic.move(positions)
        if action == "move-none":
            assert not update.delta
        assert_state_matches_scratch(dynamic, positions)


@settings(max_examples=25, deadline=None)
@given(case=move_sequences(),
       churns=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                       min_size=1, max_size=4))
def test_churn_sequences_keep_state_bit_identical(case, churns):
    n, radius, start, actions = case
    rng = np.random.default_rng(54321)
    positions = np.asarray(start, dtype=float)
    dynamic = DynamicTopology(positions, radius)
    next_id = n
    for (leavers, joiners), action in zip(churns, actions * 4):
        nodes = dynamic.graph.nodes
        departed = [int(x) for x in
                    rng.choice(nodes, size=min(leavers, len(nodes) - 1),
                               replace=False)] if len(nodes) > 1 else []
        arrivals = []
        for _ in range(joiners):
            arrivals.append((next_id, tuple(rng.uniform(0, 1, size=2))))
            next_id += 1
        dynamic.apply_churn(departed, arrivals)
        survivors = dynamic.graph.nodes
        positions = np.array([dynamic.topology.positions[node]
                              for node in survivors]).reshape(-1, 2)
        assert_state_matches_scratch(dynamic, positions)
        # Interleave a move window between churn epochs.
        positions = apply_action(rng, action, positions)
        dynamic.move(positions)
        assert_state_matches_scratch(dynamic, positions)


@settings(max_examples=20, deadline=None)
@given(case=move_sequences())
def test_elections_match_oracle_under_dynamics(case):
    n, radius, start, actions = case
    rng = np.random.default_rng(999)
    positions = np.asarray(start, dtype=float)
    dynamic = DynamicTopology(positions, radius)
    tie_ids = dynamic.topology.ids
    dag_ids = {node: int(rng.integers(100)) for node in dynamic.graph}
    engines = {cfg: IncrementalElection(order=cfg[0], fusion=cfg[1])
               for cfg in CONFIGS}
    previous = {cfg: (None, None) for cfg in CONFIGS}
    density_changed = None
    graph_changed = True
    for action in actions + ["move-none"]:
        for cfg, engine in engines.items():
            prev_fast, prev_oracle = previous[cfg]
            fast = engine.update(dynamic.graph, dynamic.densities,
                                 tie_ids=tie_ids, dag_ids=dag_ids,
                                 previous=prev_fast,
                                 density_changed=density_changed,
                                 graph_changed=graph_changed,
                                 dag_changed=False)
            oracle = compute_clustering(dynamic.graph, tie_ids=tie_ids,
                                        dag_ids=dag_ids, order=cfg[0],
                                        fusion=cfg[1], previous=prev_oracle,
                                        densities=dynamic.densities)
            assert fast.heads == oracle.heads
            assert fast.parents == oracle.parents
            assert fast.densities == oracle.densities
            previous[cfg] = (fast, oracle)
        positions = apply_action(rng, action, positions)
        update = dynamic.move(positions)
        density_changed = update.density_changed
        graph_changed = bool(update.delta)


@settings(max_examples=30, deadline=None)
@given(case=move_sequences(), namespace=st.integers(2, 6))
def test_dag_repair_inputs_match_scratch_legitimacy(case, namespace):
    """The delta loop's conflict trigger == the scratch legitimacy check.

    The mobility driver re-runs the renamer iff an added edge collides
    two persisted names; the scratch path re-runs it iff
    ``is_locally_unique`` fails.  With names locally unique at the
    previous window, the two predicates must agree after any move.
    A tiny namespace makes collisions likely.
    """
    n, radius, start, actions = case
    rng = np.random.default_rng(777)
    positions = np.asarray(start, dtype=float)
    dynamic = DynamicTopology(positions, radius)
    for action in actions:
        # Draw names locally unique for the *current* window, mimicking a
        # repaired state (skip shapes the tiny namespace cannot color).
        names = {}
        for node in dynamic.graph:
            used = {names[q] for q in dynamic.graph.neighbors(node)
                    if q in names}
            free = [c for c in range(namespace) if c not in used]
            if not free:
                return
            names[node] = free[int(rng.integers(len(free)))]
        assert is_locally_unique(dynamic.graph, names)
        positions = apply_action(rng, action, positions)
        update = dynamic.move(positions)
        trigger = any(names[u] == names[v]
                      for u, v in update.delta.added.tolist())
        assert trigger == (not is_locally_unique(dynamic.graph, names))


@pytest.mark.parametrize("seed,count,radius,step", [
    (1, 150, 0.1, 0.004),   # pedestrian-like: tiny steps, no re-join
    (2, 150, 0.1, 0.05),    # fast: drift bound trips, grid re-joins
    (3, 200, 0.05, 0.02),
    (4, 80, 0.3, 0.1),
])
def test_seeded_walks_stay_exact(seed, count, radius, step):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 1, size=(count, 2))
    disk = DynamicUnitDisk(positions, radius)
    for _ in range(10):
        positions = np.clip(
            positions + rng.uniform(-step, step, size=positions.shape), 0, 1)
        disk.move(positions)
        expected = {frozenset(p) for p in
                    pairs_within_range(positions, radius).tolist()}
        got = {frozenset(p) for p in disk.edge_index_pairs().tolist()}
        assert got == expected


def test_vectorized_legitimacy_check_matches_reference():
    rng = np.random.default_rng(5)
    for _ in range(20):
        topo = topology_at(rng.uniform(0, 1, size=(40, 2)), 0.2)
        names = {node: int(rng.integers(6)) for node in topo.graph}
        assert is_locally_unique(topo.graph, names) == \
            (not conflicting_edges(topo.graph, names))


def test_legitimacy_check_falls_back_for_exotic_names():
    topo = topology_at([(0.0, 0.0), (0.05, 0.0)], 0.2)
    # Distinct floats that int64 truncation would collide.
    floats = {0: 1.5, 1: 1.25}
    assert is_locally_unique(topo.graph, floats)
    # Over-int64 names must not overflow the vectorized path.
    huge = {0: 2 ** 80, 1: 2 ** 80}
    assert not is_locally_unique(topo.graph, huge)
    assert is_locally_unique(topo.graph, {0: 2 ** 80, 1: 2 ** 80 + 1})
