"""Hypothesis strategies for random graphs and node views."""

from fractions import Fraction

from hypothesis import strategies as st

from repro.clustering.order import NodeView
from repro.graph.graph import Graph


@st.composite
def graphs(draw, min_nodes=1, max_nodes=16, edge_bias=0.35):
    """A random undirected graph over integer nodes ``0..n-1``."""
    n = draw(st.integers(min_nodes, max_nodes))
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()) and draw(
                    st.floats(0, 1, allow_nan=False)) < edge_bias:
                graph.add_edge(u, v)
    return graph


@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=14):
    """A random connected graph: a random spanning tree plus extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    graph = Graph(nodes=range(n))
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        graph.add_edge(u, v)
    extras = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=n))
    for u, v in extras:
        if u != v:
            graph.add_edge(u, v)
    return graph


@st.composite
def node_views(draw, node=0):
    """A NodeView with small rational densities and bounded identifiers."""
    density = Fraction(draw(st.integers(0, 12)), draw(st.integers(1, 6)))
    return NodeView(
        node=node,
        density=density,
        tie_id=draw(st.integers(0, 50)),
        dag_id=draw(st.one_of(st.none(), st.integers(0, 10))),
        is_head=draw(st.booleans()),
    )
