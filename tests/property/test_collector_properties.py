"""Property tests: collector merge is associative and order-independent,
and the streaming quantile summary honors its documented error bound.

These are the invariants the chunked serving pipeline rests on: any
chunking of a request stream, merged in any order, must reduce to the
same results -- that is what makes ``repro workload`` byte-identical
across serial, pool, and distributed backends.
"""

import copy
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectors import (
    CollectorProxy,
    HeadLoadCollector,
    LatencyCollector,
    LinkLoadCollector,
    StreamingQuantile,
    StretchCollector,
)
from repro.workload.generators import READ, WRITE, Request
from repro.workload.serve import ServedRequest

HEADS = ("a", "b", "c", "d")


@st.composite
def served_events(draw, max_events=24):
    """A list of synthetic routing outcomes, unroutable ones included."""
    events = []
    for _ in range(draw(st.integers(0, max_events))):
        op = draw(st.sampled_from([READ, WRITE]))
        if draw(st.integers(0, 9)) == 0:
            request = Request(time=0.0, source=0, destination=1, op=op)
            events.append(ServedRequest(request=request, route=None,
                                        head_path=None, hops=None))
            continue
        route = draw(st.lists(st.integers(0, 9), min_size=1, max_size=6))
        head_path = tuple(draw(st.lists(st.sampled_from(HEADS),
                                        min_size=1, max_size=3)))
        flat = draw(st.one_of(st.none(), st.integers(0, 8)))
        request = Request(time=0.0, source=route[0], destination=route[-1],
                          op=op)
        events.append(ServedRequest(request=request, route=route,
                                    head_path=head_path,
                                    hops=len(route) - 1, flat_hops=flat))
    return events


def make_proxy():
    return CollectorProxy([LatencyCollector(), LinkLoadCollector(),
                           HeadLoadCollector(HEADS), StretchCollector()])


def absorb(events):
    proxy = make_proxy()
    for event in events:
        proxy.process(event)
    return proxy


@given(served_events(), served_events(), served_events())
@settings(max_examples=60, deadline=None)
def test_merge_is_associative(first, second, third):
    a, b, c = absorb(first), absorb(second), absorb(third)
    left = copy.deepcopy(a).merge(copy.deepcopy(b)).merge(copy.deepcopy(c))
    right = copy.deepcopy(a).merge(
        copy.deepcopy(b).merge(copy.deepcopy(c)))
    assert left.results() == right.results()


@given(served_events(), served_events())
@settings(max_examples=60, deadline=None)
def test_merge_is_commutative(first, second):
    a, b = absorb(first), absorb(second)
    ab = copy.deepcopy(a).merge(copy.deepcopy(b))
    ba = copy.deepcopy(b).merge(copy.deepcopy(a))
    assert ab.results() == ba.results()


@given(served_events(max_events=40), st.integers(1, 6), st.randoms())
@settings(max_examples=60, deadline=None)
def test_any_chunking_in_any_order_reduces_identically(events, chunks,
                                                       random):
    """Split a stream into chunks, merge them in a shuffled order: the
    results must equal the single-pass state over the whole stream."""
    whole = absorb(events).results()
    bounds = sorted(random.randrange(len(events) + 1)
                    for _ in range(chunks - 1))
    pieces = []
    start = 0
    for bound in bounds + [len(events)]:
        pieces.append(absorb(events[start:bound]))
        start = bound
    random.shuffle(pieces)
    merged = pieces[0]
    for piece in pieces[1:]:
        merged = merged.merge(piece)
    assert merged.results() == whole


@given(st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1,
                max_size=200),
       st.integers(0, 100), st.integers(1, 16))
@settings(max_examples=80, deadline=None)
def test_quantile_error_bound(values, q, exact_cap):
    """Percentiles stay within one bin width of the exact nearest-rank
    answer -- exact (zero error) while the summary is in its exact
    regime."""
    summary = StreamingQuantile(lo=0.0, hi=100.0, bins=256,
                                exact_cap=exact_cap)
    for value in values:
        summary.observe(value)
    rank = max(1, math.ceil(q / 100.0 * len(values)))
    exact = sorted(values)[rank - 1]
    if summary.binned:
        assert abs(summary.percentile(q) - exact) <= summary.width
    else:
        assert summary.percentile(q) == exact
    assert summary.min == min(values)
    assert summary.max == max(values)


@given(st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=0,
                max_size=60),
       st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=0,
                max_size=60))
@settings(max_examples=60, deadline=None)
def test_quantile_merge_equals_single_stream(left_values, right_values):
    """Merging two partial summaries equals one summary over the
    concatenated stream, in either merge order."""

    def summarize(values):
        summary = StreamingQuantile(lo=0.0, hi=50.0, bins=64, exact_cap=8)
        for value in values:
            summary.observe(value)
        return summary

    whole = summarize(left_values + right_values)
    ab = summarize(left_values).merge(summarize(right_values))
    ba = summarize(right_values).merge(summarize(left_values))
    for merged in (ab, ba):
        assert merged.count == whole.count
        assert merged.binned == whole.binned
        assert merged.counts == whole.counts


def test_quantile_matches_batch_percentiles_at_scale():
    """10^4 samples: the documented bound against exact batch
    percentiles, in both the exact and the collapsed regime."""
    rng = np.random.default_rng(2024)
    values = rng.gamma(shape=2.0, scale=8.0, size=10_000).clip(0.0, 100.0)
    exact_regime = StreamingQuantile(lo=0.0, hi=100.0, bins=512,
                                     exact_cap=20_000)
    binned_regime = StreamingQuantile(lo=0.0, hi=100.0, bins=512,
                                      exact_cap=64)
    for value in values:
        exact_regime.observe(value)
        binned_regime.observe(value)
    assert not exact_regime.binned
    assert binned_regime.binned
    ordered = np.sort(values)
    for q in (1, 25, 50, 75, 90, 99, 100):
        rank = max(1, math.ceil(q / 100.0 * values.size))
        batch = ordered[rank - 1]
        assert exact_regime.percentile(q) == batch
        assert abs(binned_regime.percentile(q) - batch) <= \
            binned_regime.width
    assert exact_regime.mean == pytest.approx(float(values.mean()))
