"""Property tests: the precedence orders are strict total orders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.order import BasicOrder, IncumbentOrder

from tests.property.strategies import node_views

ORDERS = st.sampled_from([BasicOrder(), IncumbentOrder()])


@given(order=ORDERS, p=node_views(node=1), q=node_views(node=2))
def test_antisymmetry(order, p, q):
    if order.key(p) == order.key(q):
        return  # indistinguishable views; precedes() raises by design
    assert order.precedes(p, q) != order.precedes(q, p)


@given(order=ORDERS, p=node_views(node=1))
def test_irreflexivity(order, p):
    assert not order.key(p) < order.key(p)


@settings(max_examples=200)
@given(order=ORDERS, p=node_views(node=1), q=node_views(node=2),
       r=node_views(node=3))
def test_transitivity(order, p, q, r):
    if order.key(p) < order.key(q) and order.key(q) < order.key(r):
        assert order.key(p) < order.key(r)


@given(order=ORDERS, p=node_views(node=1), q=node_views(node=2))
def test_density_dominates_everything(order, p, q):
    if p.density < q.density:
        assert order.key(p) < order.key(q)


@given(p=node_views(node=1), q=node_views(node=2))
def test_incumbent_only_matters_on_density_ties(p, q):
    basic, incumbent = BasicOrder(), IncumbentOrder()
    if p.density != q.density:
        assert (basic.key(p) < basic.key(q)) == \
            (incumbent.key(p) < incumbent.key(q))


@given(p=node_views(node=1), q=node_views(node=2))
def test_distinct_tie_ids_guarantee_distinct_keys(p, q):
    # With no DAG names, distinct tie ids must never produce equal keys.
    if p.dag_id is None and q.dag_id is None and p.tie_id != q.tie_id:
        assert BasicOrder().key(p) != BasicOrder().key(q)
