"""Property tests: renaming invariants on arbitrary graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.naming.dag import dag_height, theorem1_height_bound
from repro.naming.namespace import NameSpace, recommended_size
from repro.naming.renaming import (
    PoliteRenaming,
    RandomizedRenaming,
    is_locally_unique,
)

from tests.property.strategies import graphs


def namespace_for(graph):
    return NameSpace(recommended_size(graph.max_degree()))


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), seed=st.integers(0, 1000))
def test_randomized_renaming_reaches_local_uniqueness(graph, seed):
    result = RandomizedRenaming(namespace=namespace_for(graph)).run(
        graph, rng=np.random.default_rng(seed))
    assert is_locally_unique(graph, result.ids)


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), seed=st.integers(0, 1000))
def test_polite_renaming_reaches_local_uniqueness(graph, seed):
    result = PoliteRenaming(namespace=namespace_for(graph)).run(
        graph, rng=np.random.default_rng(seed))
    assert is_locally_unique(graph, result.ids)


@settings(max_examples=30, deadline=None)
@given(graph=graphs(), seed=st.integers(0, 1000))
def test_renaming_from_adversarial_all_zero_start(graph, seed):
    initial = {node: 0 for node in graph}
    result = RandomizedRenaming(namespace=namespace_for(graph)).run(
        graph, rng=np.random.default_rng(seed), initial_ids=initial)
    assert is_locally_unique(graph, result.ids)


@settings(max_examples=30, deadline=None)
@given(graph=graphs(min_nodes=2), seed=st.integers(0, 1000))
def test_height_bound_holds(graph, seed):
    namespace = namespace_for(graph)
    result = PoliteRenaming(namespace=namespace).run(
        graph, rng=np.random.default_rng(seed))
    if graph.edge_count() == 0:
        return
    assert dag_height(graph, result.ids) <= \
        theorem1_height_bound(len(namespace))


@settings(max_examples=30, deadline=None)
@given(graph=graphs(), seed=st.integers(0, 1000))
def test_stable_names_are_never_redrawn(graph, seed):
    rng = np.random.default_rng(seed)
    namespace = namespace_for(graph)
    first = PoliteRenaming(namespace=namespace).run(graph, rng=rng)
    second = PoliteRenaming(namespace=namespace).run(
        graph, rng=rng, initial_ids=first.ids)
    assert second.ids == first.ids
    assert second.redraw_rounds == 0
