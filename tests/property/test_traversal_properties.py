"""Kernel vs dict-backend traversal equivalence.

The CSR traversal kernel must be observationally identical to the
original per-node implementations on every graph shape the workloads
produce: random (often disconnected) hypothesis graphs with isolated
nodes, geometric UDG / quasi-UDG deployments, and clusterings with
single-node clusters.  Distances, components, joining-forest depths and
head eccentricities are all tie-break-free, so equality is exact.
"""

import pytest
from hypothesis import given, settings

from repro.clustering.baselines.lowest_id import lowest_id_clustering
from repro.clustering.baselines.maxmin import maxmin_clustering
from repro.graph.generators import uniform_topology
from repro.graph.paths import (
    bfs_distances,
    bfs_distances_reference,
    connected_components,
    connected_components_reference,
)
from repro.graph.quasi_udg import quasi_uniform_topology

from tests.property.strategies import graphs


def assert_traversals_match(graph):
    components = connected_components(graph)
    reference = connected_components_reference(graph)
    assert sorted(map(sorted, components)) == sorted(map(sorted, reference))
    for source in graph.nodes:
        assert bfs_distances(graph, source) == \
            bfs_distances_reference(graph, source)


def assert_clustering_metrics_match(clustering):
    for node in clustering.parents:
        assert clustering.depth(node) == clustering.depth_reference(node)
    for head in clustering.heads:
        assert clustering.tree_length(head) == \
            clustering.tree_length_reference(head)
        assert clustering.head_eccentricity(head) == \
            clustering.head_eccentricity_reference(head)


@settings(max_examples=60)
@given(graph=graphs())
def test_bfs_and_components_match_on_random_graphs(graph):
    """Includes disconnected graphs and isolated nodes by construction."""
    assert_traversals_match(graph)


@pytest.mark.parametrize("seed,count,radius", [
    (11, 60, 0.15), (12, 120, 0.1), (13, 80, 0.02),
])
def test_bfs_and_components_match_on_udg(seed, count, radius):
    topo = uniform_topology(count, radius, rng=seed)
    assert_traversals_match(topo.graph)


@pytest.mark.parametrize("seed,count,r_min,r_max", [
    (14, 60, 0.1, 0.2), (15, 90, 0.05, 0.1),
])
def test_bfs_and_components_match_on_quasi_udg(seed, count, r_min, r_max):
    topo = quasi_uniform_topology(count, r_min, r_max, rng=seed)
    assert_traversals_match(topo.graph)


@settings(max_examples=40, deadline=None)
@given(graph=graphs(min_nodes=1, max_nodes=14))
def test_clustering_metrics_match_on_random_graphs(graph):
    """Sparse random graphs produce plenty of single-node clusters, so the
    pointer-doubling depths and the batched eccentricity sweep both see
    degenerate trees alongside real ones."""
    clustering = lowest_id_clustering(graph)
    assert_clustering_metrics_match(clustering)


@settings(max_examples=25, deadline=None)
@given(graph=graphs(min_nodes=2, max_nodes=12))
def test_maxmin_metrics_match_on_random_graphs(graph):
    """max-min exercises the label-constrained sweep end to end: its
    joining forest is itself built from the batched BFS."""
    clustering = maxmin_clustering(graph, d=2)
    assert_clustering_metrics_match(clustering)


@pytest.mark.parametrize("seed,count,radius", [
    (21, 80, 0.12), (22, 150, 0.1),
])
def test_clustering_metrics_match_on_udg(seed, count, radius):
    topo = uniform_topology(count, radius, rng=seed)
    clustering = maxmin_clustering(topo.graph, d=2, tie_ids=topo.ids)
    assert_clustering_metrics_match(clustering)


def test_all_singleton_clusters():
    """Edgeless graph: every node is its own head with eccentricity 0."""
    from repro.clustering.result import Clustering
    from repro.graph.graph import Graph

    graph = Graph(nodes=range(5))
    clustering = Clustering(graph, {n: n for n in range(5)})
    assert_clustering_metrics_match(clustering)
    assert clustering.average_tree_length() == 0.0
    assert clustering.average_head_eccentricity() == 0.0
