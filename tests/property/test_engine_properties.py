"""Engine-vs-oracle equivalence under randomized dynamics.

Every registered :class:`~repro.clustering.engine.ClusteringEngine` must
be observationally identical to its scratch oracle after *any* sequence
of moves, joins, and leaves: same head sets, same parents, same cluster
counts, window for window.  Hypothesis drives small adversarial traces
-- including the all-nodes-moved and empty-delta windows -- through the
:class:`~repro.graph.dynamic.WindowUpdate` protocol, and seeded walks
cover churn re-seeds and the max-min disconnected-member singleton
fallback.  The oracles are the original per-node reference
implementations, not the vectorized scratch paths, so this suite also
re-validates those end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.baselines.common import (
    greedy_dominating_clustering_reference,
)
from repro.clustering.baselines.maxmin import maxmin_clustering_reference
from repro.clustering.engine import engine_for, registered_engines
from repro.clustering.oracle import compute_clustering
from repro.graph.dynamic import DynamicTopology, WindowUpdate
from repro.graph.generators import uniform_topology
from repro.util.errors import ConfigurationError


def _lowest_id_oracle(topology):
    priority = {node: -topology.ids[node] for node in topology.graph}
    return greedy_dominating_clustering_reference(topology.graph, priority)


def _degree_oracle(topology):
    graph = topology.graph
    priority = {node: (graph.degree(node), -topology.ids[node])
                for node in graph}
    return greedy_dominating_clustering_reference(graph, priority)


def _maxmin_oracle(d):
    return lambda topology: maxmin_clustering_reference(
        topology.graph, d=d, tie_ids=topology.ids)


def _density_oracle(topology):
    return compute_clustering(topology.graph, tie_ids=topology.ids)


#: metric name -> (engine factory, per-window scratch oracle)
ENGINE_CASES = {
    "lowest-id": (lambda: engine_for("lowest-id"), _lowest_id_oracle),
    "degree": (lambda: engine_for("degree"), _degree_oracle),
    "max-min d=1": (lambda: engine_for("max-min", d=1), _maxmin_oracle(1)),
    "max-min d=2": (lambda: engine_for("max-min", d=2), _maxmin_oracle(2)),
    "max-min d=3": (lambda: engine_for("max-min", d=3), _maxmin_oracle(3)),
    "density": (lambda: engine_for("density"), _density_oracle),
}


def make_engines():
    return {name: factory() for name, (factory, _) in ENGINE_CASES.items()}


def seed_update(dynamic):
    """The stream-head update an engine re-seeds from (delta=None)."""
    return WindowUpdate(topology=dynamic.topology, delta=None,
                        density_changed=None, densities=dynamic.densities)


def assert_engines_match(engines, update, reference_topology=None):
    topology = (update.topology if reference_topology is None
                else reference_topology)
    for name, engine in engines.items():
        _factory, oracle = ENGINE_CASES[name]
        got = engine.apply_delta(update)
        want = oracle(topology)
        assert got.heads == want.heads, name
        assert got.parents == want.parents, name
        assert got.cluster_count == want.cluster_count, name
        assert engine.result() is got, name


@st.composite
def move_sequences(draw):
    """A deployment plus a short sequence of per-window actions."""
    n = draw(st.integers(2, 14))
    radius = draw(st.sampled_from([0.15, 0.3, 0.6]))
    coord = st.floats(0, 1, allow_nan=False, width=32)
    positions = [(draw(coord), draw(coord)) for _ in range(n)]
    actions = draw(st.lists(st.sampled_from(
        ["move-all", "move-one", "move-none", "jitter"]), min_size=1,
        max_size=5))
    return n, radius, positions, actions


def apply_action(rng, action, positions):
    positions = positions.copy()
    if action == "move-all":
        positions = rng.uniform(0, 1, size=positions.shape)
    elif action == "move-one" and len(positions):
        positions[int(rng.integers(len(positions)))] = rng.uniform(0, 1,
                                                                   size=2)
    elif action == "jitter":
        positions = np.clip(
            positions + rng.uniform(-0.02, 0.02, size=positions.shape), 0, 1)
    return positions  # "move-none" falls through unchanged


@settings(max_examples=30, deadline=None)
@given(case=move_sequences())
def test_engines_match_oracles_under_moves(case):
    n, radius, start, actions = case
    rng = np.random.default_rng(4242)
    positions = np.asarray(start, dtype=float)
    dynamic = DynamicTopology(positions, radius)
    engines = make_engines()
    assert_engines_match(engines, seed_update(dynamic))
    for action in actions + ["move-none"]:
        positions = apply_action(rng, action, positions)
        update = dynamic.move(positions)
        if action == "move-none":
            assert not update.delta
        assert_engines_match(engines, update)


@settings(max_examples=15, deadline=None)
@given(case=move_sequences(),
       churns=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                       min_size=1, max_size=3))
def test_engines_reseed_through_churn(case, churns):
    """Join/leave epochs change the node set; every engine re-seeds and
    stays exact through the interleaved move windows."""
    n, radius, start, actions = case
    rng = np.random.default_rng(2424)
    positions = np.asarray(start, dtype=float)
    dynamic = DynamicTopology(positions, radius)
    engines = make_engines()
    assert_engines_match(engines, seed_update(dynamic))
    next_id = n
    for (leavers, joiners), action in zip(churns, actions * 3):
        nodes = dynamic.graph.nodes
        departed = [int(x) for x in
                    rng.choice(nodes, size=min(leavers, len(nodes) - 1),
                               replace=False)] if len(nodes) > 1 else []
        arrivals = []
        for _ in range(joiners):
            arrivals.append((next_id, tuple(rng.uniform(0, 1, size=2))))
            next_id += 1
        update = dynamic.apply_churn(departed, arrivals)
        assert_engines_match(engines, update)
        survivors = dynamic.graph.nodes
        positions = np.array([dynamic.topology.positions[node]
                              for node in survivors]).reshape(-1, 2)
        positions = apply_action(rng, action, positions)
        update = dynamic.move(positions)
        assert_engines_match(engines, update)


def test_maxmin_singleton_fallback_survives_deltas():
    """A member disconnected from its selected head falls back to a
    singleton (the documented max-min artifact); the engine reproduces
    the reference bit for bit on such a topology and across deltas.

    ``uniform_topology(30, 0.12, rng=57)`` triggers the fallback at
    d=2 (node 7 self-parents without having selected itself).
    """
    topo = uniform_topology(30, 0.12, rng=57)
    reference = maxmin_clustering_reference(topo.graph, d=2, tie_ids=topo.ids)
    fallback = [node for node in topo.graph
                if reference.parents[node] == node
                and node not in _selected_heads(topo)]
    assert fallback, "the seed no longer triggers the fallback"
    positions = np.array([topo.positions[node]
                          for node in sorted(topo.graph.nodes)])
    dynamic = DynamicTopology(positions, 0.12)
    engine = engine_for("max-min", d=2)
    oracle = _maxmin_oracle(2)
    got = engine.apply_delta(seed_update(dynamic))
    assert got.parents == oracle(dynamic.topology).parents
    rng = np.random.default_rng(8)
    for _ in range(6):
        positions = np.clip(
            positions + rng.uniform(-0.01, 0.01, size=positions.shape), 0, 1)
        update = dynamic.move(positions)
        got = engine.apply_delta(update)
        want = oracle(update.topology)
        assert got.heads == want.heads
        assert got.parents == want.parents


def _selected_heads(topo):
    """Heads by rule 1-3 selection alone (before the fallback)."""
    from repro.clustering.baselines.maxmin import _flood, _select_head_id
    g = topo.graph
    tie = topo.ids
    max_log = _flood(g, rounds=2, combine=max,
                     start={v: tie[v] for v in g})
    final_max = {v: max_log[v][-1] for v in g}
    min_log = _flood(g, rounds=2, combine=min, start=final_max)
    id_to_node = {tie[v]: v for v in g}
    chosen = {v: id_to_node[_select_head_id(tie[v], max_log[v], min_log[v])]
              for v in g}
    return {chosen[v] for v in g} | {v for v in g if chosen[v] == v}


def test_empty_and_single_node_streams():
    for count in (0, 1):
        positions = np.zeros((count, 2))
        dynamic = DynamicTopology(positions, 0.2)
        engines = make_engines()
        assert_engines_match(engines, seed_update(dynamic))
        update = dynamic.move(positions)
        assert_engines_match(engines, update)


def test_result_before_init_raises():
    for name in registered_engines():
        with pytest.raises(ConfigurationError):
            engine_for(name).result()


def test_unknown_metric_raises():
    with pytest.raises(ConfigurationError):
        engine_for("no-such-metric")
