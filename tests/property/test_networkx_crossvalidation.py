"""Cross-validation of graph algorithms against networkx.

networkx is available in the test environment only (it is not a library
dependency); these tests use it as an independent oracle for the
substrate's BFS, components, triangle counting and density values.
"""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.clustering.density import all_densities
from repro.graph.paths import bfs_distances, connected_components, diameter

from tests.property.strategies import graphs


def to_networkx(graph):
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.nodes)
    nxg.add_edges_from(graph.edges)
    return nxg


@settings(max_examples=50)
@given(graph=graphs())
def test_bfs_distances_match(graph):
    nxg = to_networkx(graph)
    source = next(iter(graph))
    assert bfs_distances(graph, source) == \
        nx.single_source_shortest_path_length(nxg, source)


@settings(max_examples=50)
@given(graph=graphs())
def test_components_match(graph):
    nxg = to_networkx(graph)
    ours = sorted(map(sorted, connected_components(graph)))
    theirs = sorted(map(sorted, nx.connected_components(nxg)))
    assert ours == theirs


@settings(max_examples=50)
@given(graph=graphs())
def test_densities_match_triangle_oracle(graph):
    nxg = to_networkx(graph)
    triangles = nx.triangles(nxg)
    densities = all_densities(graph)
    for node in graph:
        degree = graph.degree(node)
        if degree == 0:
            assert densities[node] == 0.0
        else:
            expected = (degree + triangles[node]) / degree
            assert densities[node] == pytest.approx(expected)


@settings(max_examples=30)
@given(graph=graphs(min_nodes=2))
def test_diameter_matches(graph):
    nxg = to_networkx(graph)
    if nx.is_connected(nxg):
        assert diameter(graph) == nx.diameter(nxg)
    else:
        assert diameter(graph) == float("inf")
