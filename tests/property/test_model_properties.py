"""Property tests: invariants of the topology generator suite.

Every generator must emit the canonical lexicographic pair-array format
(the CSR contract), be a pure function of its seed, and stream in
bounded chunks without changing a single edge.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph
from repro.graph.models import (
    distance_rule_topology,
    erdos_renyi_topology,
    fixed_degree_topology,
    gaussian_degree_topology,
    nw_small_world_topology,
    scale_free_topology,
)

GENERATORS = {
    "distance_rule": distance_rule_topology,
    "erdos_renyi": erdos_renyi_topology,
    "fixed_degree": fixed_degree_topology,
    "gaussian_degree": gaussian_degree_topology,
    "nw_small_world": nw_small_world_topology,
    "scale_free": scale_free_topology,
}

generator_names = st.sampled_from(sorted(GENERATORS))


def build(name, count, degree, seed, max_pairs=None):
    return GENERATORS[name](count, degree=degree, rng=seed,
                            max_pairs=max_pairs)


@st.composite
def generator_cases(draw):
    name = draw(generator_names)
    # Small-world needs k >= 1 feasible: count >= 2k + 1.
    count = draw(st.integers(8, 60))
    degree = draw(st.integers(1, min(6, count - 2)))
    seed = draw(st.integers(0, 2**32 - 1))
    return name, count, degree, seed


@settings(max_examples=60, deadline=None)
@given(case=generator_cases())
def test_fixed_seed_is_deterministic(case):
    name, count, degree, seed = case
    a = build(name, count, degree, seed).graph.to_csr()
    b = build(name, count, degree, seed).graph.to_csr()
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.ids, b.ids)


@settings(max_examples=60, deadline=None)
@given(case=generator_cases(), max_pairs=st.integers(1, 64))
def test_forced_streaming_is_bit_identical(case, max_pairs):
    name, count, degree, seed = case
    one_shot = build(name, count, degree, seed).graph.to_csr()
    streamed = build(name, count, degree, seed,
                     max_pairs=max_pairs).graph.to_csr()
    np.testing.assert_array_equal(one_shot.indptr, streamed.indptr)
    np.testing.assert_array_equal(one_shot.indices, streamed.indices)


@settings(max_examples=60, deadline=None)
@given(case=generator_cases())
def test_csr_matches_dict_adjacency(case):
    name, count, degree, seed = case
    topology = build(name, count, degree, seed)
    graph = topology.graph
    rebuilt = Graph(nodes=graph.nodes, edges=graph.edges)
    for node in graph:
        assert graph.neighbors(node) == rebuilt.neighbors(node)
    assert graph.edge_count() == rebuilt.edge_count()


@settings(max_examples=60, deadline=None)
@given(case=generator_cases())
def test_degree_sanity(case):
    name, count, degree, seed = case
    graph = build(name, count, degree, seed).graph
    assert len(graph) == count
    graph.check_symmetry()
    degrees = [graph.degree(node) for node in graph]
    assert all(0 <= d < count for d in degrees)
    assert sum(degrees) == 2 * graph.edge_count()
    # No generator can exceed the complete graph.
    assert graph.edge_count() <= count * (count - 1) // 2


@settings(max_examples=60, deadline=None)
@given(case=generator_cases())
def test_pair_rows_are_lexicographic(case):
    name, count, degree, seed = case
    csr = build(name, count, degree, seed).graph.to_csr()
    row_idx, col_idx = csr.edge_arrays()
    assert np.all(row_idx < col_idx)
    order = np.lexsort((col_idx, row_idx))
    np.testing.assert_array_equal(order, np.arange(len(row_idx)))


def test_different_seeds_differ_at_scale():
    # Deterministic spot check (hypothesis could hunt down the rare
    # colliding seed pair on tiny graphs): at 200 nodes every random
    # family must produce distinct edge sets for distinct seeds.
    for name in GENERATORS:
        a = build(name, 200, 4, 1).graph
        b = build(name, 200, 4, 2).graph
        assert set(a.edges) != set(b.edges), name
