"""Property tests: graph structure invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.paths import bfs_distances, connected_components

from tests.property.strategies import graphs


@settings(max_examples=60)
@given(graph=graphs())
def test_symmetry_always_holds(graph):
    graph.check_symmetry()


@settings(max_examples=60)
@given(graph=graphs())
def test_degree_sum_equals_twice_edges(graph):
    assert sum(graph.degree(n) for n in graph) == 2 * graph.edge_count()


@settings(max_examples=60)
@given(graph=graphs(min_nodes=1))
def test_k_neighborhoods_are_monotone(graph):
    node = next(iter(graph))
    previous = set()
    for k in range(1, 5):
        current = graph.k_neighborhood(node, k)
        assert previous <= current
        previous = current


@settings(max_examples=60)
@given(graph=graphs(min_nodes=1))
def test_k_neighborhood_matches_bfs(graph):
    node = next(iter(graph))
    distances = bfs_distances(graph, node)
    for k in (1, 2, 3):
        expected = {q for q, d in distances.items() if 1 <= d <= k}
        assert graph.k_neighborhood(node, k) == expected


@settings(max_examples=60)
@given(graph=graphs())
def test_components_partition_nodes(graph):
    components = connected_components(graph)
    union = set()
    total = 0
    for component in components:
        assert not (component & union)
        union |= component
        total += len(component)
    assert union == set(graph.nodes)
    assert total == len(graph)


@settings(max_examples=40)
@given(graph=graphs(min_nodes=2), data=st.data())
def test_remove_edge_inverts_add_edge(graph, data):
    u = data.draw(st.sampled_from(sorted(graph.nodes)))
    v = data.draw(st.sampled_from(sorted(set(graph.nodes) - {u})))
    had = graph.has_edge(u, v)
    if not had:
        graph.add_edge(u, v)
        graph.remove_edge(u, v)
        assert not graph.has_edge(u, v)
        graph.check_symmetry()
