"""Property tests: density bounds and equivalences on arbitrary graphs."""

from fractions import Fraction

from hypothesis import given, settings

from repro.clustering.density import all_densities, density, density_bounds

from tests.property.strategies import graphs


@settings(max_examples=60)
@given(graph=graphs())
def test_density_within_bounds(graph):
    for node, value in all_densities(graph).items():
        low, high = density_bounds(graph.degree(node))
        assert low <= value <= high


@settings(max_examples=60)
@given(graph=graphs())
def test_bulk_equals_per_node(graph):
    bulk = all_densities(graph, exact=True)
    for node in graph:
        assert bulk[node] == density(graph, node, exact=True)


@settings(max_examples=60)
@given(graph=graphs())
def test_density_is_at_least_one_for_connected_nodes(graph):
    for node, value in all_densities(graph, exact=True).items():
        if graph.degree(node) > 0:
            assert value >= 1
        else:
            assert value == Fraction(0)


@settings(max_examples=40)
@given(graph=graphs(min_nodes=2))
def test_adding_an_edge_between_neighbors_of_p_raises_density(graph):
    # Find a node with two non-adjacent neighbors; closing the wedge must
    # strictly increase its density and leave its degree unchanged.
    for node in graph:
        neighbors = sorted(graph.neighbors(node))
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1:]:
                if not graph.has_edge(u, v):
                    before = density(graph, node, exact=True)
                    graph.add_edge(u, v)
                    after = density(graph, node, exact=True)
                    assert after > before
                    return


@settings(max_examples=60)
@given(graph=graphs())
def test_density_depends_only_on_two_hop_ball(graph):
    # Removing an edge entirely outside N^2_p leaves d_p unchanged.
    for node in graph:
        ball = graph.k_neighborhood(node, 2) | {node}
        for u, v in graph.edges:
            if u not in ball and v not in ball:
                before = density(graph, node, exact=True)
                graph.remove_edge(u, v)
                assert density(graph, node, exact=True) == before
                return
