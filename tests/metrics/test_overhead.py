"""Tests for traffic accounting."""

from fractions import Fraction

from repro.clustering.result import Clustering
from repro.graph.generators import line_topology
from repro.metrics.overhead import (
    TrafficStats,
    frame_bytes,
    payload_bytes,
    reaffiliations,
)
from repro.runtime.frames import Frame


class TestPayloadBytes:
    def test_scalars(self):
        assert payload_bytes(None) == 1
        assert payload_bytes(True) == 1
        assert payload_bytes(7) == 4
        assert payload_bytes(1.5) == 4
        assert payload_bytes(Fraction(5, 4)) == 8

    def test_strings_by_encoded_length(self):
        assert payload_bytes("abc") == 3
        assert payload_bytes("") == 0

    def test_containers_recurse(self):
        assert payload_bytes([1, 2]) == 1 + 4 + 4
        assert payload_bytes(frozenset({1})) == 1 + 4
        assert payload_bytes({"k": 1}) == 1 + 1 + 4

    def test_nested_summary_payload(self):
        summary = {5: {"density": Fraction(3, 2), "head": 5}}
        size = payload_bytes(summary)
        assert size > payload_bytes({})

    def test_frame_bytes_adds_sender(self):
        frame = Frame(sender=1, payload={"x": 1})
        assert frame_bytes(frame) == 4 + payload_bytes({"x": 1})


class TestTrafficStats:
    def test_accumulates_per_step(self):
        stats = TrafficStats()
        frames = {0: Frame(sender=0, payload={"x": 1}),
                  1: Frame(sender=1, payload={"x": 2})}
        inboxes = {0: [frames[1]], 1: [frames[0]]}
        stats.record_step(frames, inboxes)
        assert stats.frames_sent == 2
        assert stats.frames_delivered == 2
        assert stats.bytes_sent == 2 * frame_bytes(frames[0])
        assert stats.mean_bytes_per_step() == stats.bytes_sent

    def test_empty_stats(self):
        assert TrafficStats().mean_bytes_per_step() == 0.0

    def test_simulator_integration(self):
        from repro.protocols.stack import standard_stack
        from repro.runtime.simulator import StepSimulator
        topo = line_topology(4)
        sim = StepSimulator(topo, standard_stack(use_dag=False), rng=0)
        sim.run(3)
        assert sim.traffic.frames_sent == 12  # 4 nodes x 3 steps
        assert sim.traffic.bytes_sent > 0
        assert len(sim.traffic.per_step_bytes) == 3

    def test_lossy_channel_reduces_deliveries_not_sends(self):
        from repro.protocols.stack import standard_stack
        from repro.runtime.channel import BernoulliLossChannel
        from repro.runtime.simulator import StepSimulator
        topo = line_topology(6)
        ideal = StepSimulator(topo, standard_stack(use_dag=False), rng=1)
        lossy = StepSimulator(topo, standard_stack(use_dag=False),
                              channel=BernoulliLossChannel(0.5), rng=1)
        ideal.run(10)
        lossy.run(10)
        assert lossy.traffic.frames_sent == ideal.traffic.frames_sent
        assert lossy.traffic.frames_delivered < ideal.traffic.frames_delivered


class TestReaffiliations:
    def test_counts_head_changes(self):
        graph = line_topology(4).graph
        before = Clustering(graph, {0: 0, 1: 0, 2: 3, 3: 3})
        after = Clustering(graph, {0: 0, 1: 0, 2: 1, 3: 2})
        # Nodes 2 and 3 now resolve to head 0.
        assert reaffiliations(before, after) == 2

    def test_identical_clusterings(self):
        graph = line_topology(3).graph
        clustering = Clustering(graph, {0: 0, 1: 0, 2: 1})
        assert reaffiliations(clustering, clustering) == 0

    def test_only_common_nodes_counted(self):
        before = Clustering(line_topology(3).graph, {0: 0, 1: 0, 2: 1})
        after = Clustering(line_topology(2).graph, {0: 1, 1: 1})
        assert reaffiliations(before, after) == 2  # nodes 0 and 1 changed
