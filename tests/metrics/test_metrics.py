"""Tests for cluster statistics, stability series and table rendering."""

import pytest

from repro.clustering.result import Clustering
from repro.graph.generators import line_topology
from repro.metrics.clusters import ClusterStats, cluster_stats, mean_stats
from repro.metrics.stability import (
    RetentionSeries,
    head_retention,
    retention_over_clusterings,
)
from repro.metrics.tables import Table
from repro.util.errors import ConfigurationError


def two_cluster_line():
    graph = line_topology(4).graph
    return Clustering(graph, {0: 0, 1: 0, 2: 3, 3: 3})


class TestClusterStats:
    def test_values(self):
        stats = cluster_stats(two_cluster_line())
        assert stats.cluster_count == 2
        assert stats.mean_head_eccentricity == 1.0
        assert stats.mean_tree_length == 1.0

    def test_area_normalization(self):
        stats = cluster_stats(two_cluster_line(), area=2.0)
        assert stats.cluster_count == 1.0

    def test_rejects_bad_area(self):
        with pytest.raises(ConfigurationError):
            cluster_stats(two_cluster_line(), area=0.0)

    def test_row_shape(self):
        stats = cluster_stats(two_cluster_line())
        assert stats.row() == (2, 1.0, 1.0)

    def test_mean_stats(self):
        a = ClusterStats(2, 1.0, 1.0)
        b = ClusterStats(4, 3.0, 2.0)
        mean = mean_stats([a, b])
        assert mean == ClusterStats(3.0, 2.0, 1.5)

    def test_mean_of_nothing_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_stats([])


class TestRetention:
    def test_head_retention_values(self):
        assert head_retention({1, 2}, {1, 3}) == 0.5
        assert head_retention({1}, {1}) == 1.0
        assert head_retention({1, 2}, set()) == 0.0

    def test_empty_previous_rejected(self):
        with pytest.raises(ConfigurationError):
            head_retention(set(), {1})

    def test_series_accumulates(self):
        series = RetentionSeries()
        series.observe({1, 2}, {1})
        series.observe({1}, {1})
        assert len(series) == 2
        assert series.mean == 0.75
        assert series.percent == 75.0

    def test_empty_series_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            RetentionSeries().mean

    def test_retention_over_clusterings(self):
        graph = line_topology(4).graph
        first = Clustering(graph, {0: 0, 1: 0, 2: 3, 3: 3})
        second = Clustering(graph, {0: 0, 1: 0, 2: 1, 3: 2})
        series = retention_over_clusterings([first, second])
        assert len(series) == 1
        assert series.mean == 0.5  # head 0 kept, head 3 lost


class TestTable:
    def test_row_length_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row([1])

    def test_formatting_aligns_and_rounds(self):
        table = Table("Title", ["name", "value"])
        table.add_row(["x", 1.23456])
        text = table.formatted(precision=2)
        assert "Title" in text
        assert "1.23" in text
        assert "1.2345" not in text

    def test_column_access(self):
        table = Table("t", ["a", "b"], rows=[[1, 2], [3, 4]])
        assert table.column("b") == [2, 4]

    def test_unknown_column_rejected(self):
        table = Table("t", ["a"])
        with pytest.raises(ConfigurationError):
            table.column("zz")

    def test_str_matches_formatted(self):
        table = Table("t", ["a"], rows=[[1]])
        assert str(table) == table.formatted()

    def test_to_csv(self):
        table = Table("t", ["name", "value"], rows=[["x", 1.5]])
        assert table.to_csv() == "name,value\nx,1.5"

    def test_to_csv_escapes_special_cells(self):
        table = Table("t", ["a"], rows=[['he said "hi", twice']])
        assert table.to_csv().splitlines()[1] == \
            '"he said ""hi"", twice"'
