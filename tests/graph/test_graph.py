"""Unit tests for the core Graph structure."""

import pytest

from repro.graph.graph import Graph
from repro.util.errors import TopologyError


def make_path(n):
    return Graph(nodes=range(n), edges=[(i, i + 1) for i in range(n - 1)])


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert len(graph) == 0
        assert graph.nodes == []
        assert graph.edges == []
        assert graph.max_degree() == 0

    def test_nodes_only(self):
        graph = Graph(nodes=[1, 2, 3])
        assert len(graph) == 3
        assert graph.edge_count() == 0

    def test_edges_create_endpoints(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        assert set(graph.nodes) == {1, 2, 3}
        assert graph.edge_count() == 2

    def test_duplicate_node_add_is_idempotent(self):
        graph = Graph(nodes=[1])
        graph.add_node(1)
        assert len(graph) == 1

    def test_duplicate_edge_add_is_idempotent(self):
        graph = Graph(edges=[(1, 2)])
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.edge_count() == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(TopologyError):
            graph.add_edge(5, 5)

    def test_string_nodes(self):
        graph = Graph(edges=[("a", "b")])
        assert graph.has_edge("a", "b")


class TestMutation:
    def test_remove_edge(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)
        assert 1 in graph

    def test_remove_missing_edge_raises(self):
        graph = Graph(nodes=[1, 2])
        with pytest.raises(TopologyError):
            graph.remove_edge(1, 2)

    def test_remove_node_removes_incident_edges(self):
        graph = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        graph.remove_node(2)
        assert 2 not in graph
        assert graph.neighbors(1) == {3}
        graph.check_symmetry()

    def test_remove_missing_node_raises(self):
        with pytest.raises(TopologyError):
            Graph().remove_node(9)

    def test_copy_is_independent(self):
        graph = Graph(edges=[(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert 3 not in graph
        assert clone.has_edge(2, 3)


class TestNeighborhoods:
    def test_neighbors_excludes_self(self):
        graph = Graph(edges=[(1, 2), (1, 3)])
        assert graph.neighbors(1) == {2, 3}

    def test_neighbors_of_missing_node_raises(self):
        with pytest.raises(TopologyError):
            Graph().neighbors(1)

    def test_neighbors_returns_a_copy(self):
        graph = Graph(edges=[(1, 2)])
        view = graph.neighbors(1)
        view.add(99)
        assert graph.neighbors(1) == {2}

    def test_closed_neighbors(self):
        graph = Graph(edges=[(1, 2), (1, 3)])
        assert graph.closed_neighbors(1) == {1, 2, 3}

    def test_degree_and_max_degree(self):
        graph = Graph(edges=[(1, 2), (1, 3), (1, 4), (2, 3)])
        assert graph.degree(1) == 3
        assert graph.degree(4) == 1
        assert graph.max_degree() == 3

    def test_k_neighborhood_on_path(self):
        graph = make_path(7)
        assert graph.k_neighborhood(3, 1) == {2, 4}
        assert graph.k_neighborhood(3, 2) == {1, 2, 4, 5}
        assert graph.k_neighborhood(3, 3) == {0, 1, 2, 4, 5, 6}
        assert graph.k_neighborhood(3, 10) == {0, 1, 2, 4, 5, 6}

    def test_k_neighborhood_excludes_self_even_in_cycles(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        assert 0 not in graph.k_neighborhood(0, 5)
        assert graph.k_neighborhood(0, 2) == {1, 2}

    def test_k_neighborhood_requires_positive_k(self):
        graph = make_path(3)
        with pytest.raises(TopologyError):
            graph.k_neighborhood(1, 0)

    def test_k_neighborhood_matches_paper_definition(self):
        # N^i = N^{i-1} union neighbors of N^{i-1}, minus p itself.
        graph = make_path(6)
        n1 = graph.k_neighborhood(2, 1)
        expanded = set(n1)
        for q in n1:
            expanded |= graph.neighbors(q)
        expanded.discard(2)
        assert graph.k_neighborhood(2, 2) == expanded


class TestQueries:
    def test_edges_lists_each_edge_once(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        edges = graph.edges
        assert len(edges) == 3
        assert len({frozenset(e) for e in edges}) == 3

    def test_edge_count(self):
        graph = make_path(5)
        assert graph.edge_count() == 4

    def test_contains_and_iter(self):
        graph = Graph(nodes=[1, 2])
        assert 1 in graph
        assert 9 not in graph
        assert sorted(graph) == [1, 2]

    def test_induced_subgraph(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = graph.induced_subgraph({1, 2, 3})
        assert set(sub.nodes) == {1, 2, 3}
        assert sub.has_edge(1, 2)
        assert sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)
        assert sub.edge_count() == 2

    def test_induced_subgraph_unknown_node_raises(self):
        graph = make_path(3)
        with pytest.raises(TopologyError):
            graph.induced_subgraph({0, 99})

    def test_induced_subgraph_is_independent(self):
        graph = make_path(3)
        sub = graph.induced_subgraph({0, 1})
        sub.add_edge(0, 99)
        assert 99 not in graph

    def test_check_symmetry_detects_corruption(self):
        graph = make_path(3)
        graph._adj[0].add(2)  # corrupt internal state on purpose
        with pytest.raises(TopologyError):
            graph.check_symmetry()

    def test_repr_mentions_size(self):
        assert "n=3" in repr(make_path(3))
