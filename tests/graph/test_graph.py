"""Unit tests for the core Graph structure."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.util.errors import TopologyError


def make_path(n):
    return Graph(nodes=range(n), edges=[(i, i + 1) for i in range(n - 1)])


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert len(graph) == 0
        assert graph.nodes == []
        assert graph.edges == []
        assert graph.max_degree() == 0

    def test_nodes_only(self):
        graph = Graph(nodes=[1, 2, 3])
        assert len(graph) == 3
        assert graph.edge_count() == 0

    def test_edges_create_endpoints(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        assert set(graph.nodes) == {1, 2, 3}
        assert graph.edge_count() == 2

    def test_duplicate_node_add_is_idempotent(self):
        graph = Graph(nodes=[1])
        graph.add_node(1)
        assert len(graph) == 1

    def test_duplicate_edge_add_is_idempotent(self):
        graph = Graph(edges=[(1, 2)])
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.edge_count() == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(TopologyError):
            graph.add_edge(5, 5)

    def test_string_nodes(self):
        graph = Graph(edges=[("a", "b")])
        assert graph.has_edge("a", "b")


class TestMutation:
    def test_remove_edge(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)
        assert 1 in graph

    def test_remove_missing_edge_raises(self):
        graph = Graph(nodes=[1, 2])
        with pytest.raises(TopologyError):
            graph.remove_edge(1, 2)

    def test_remove_node_removes_incident_edges(self):
        graph = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        graph.remove_node(2)
        assert 2 not in graph
        assert graph.neighbors(1) == {3}
        graph.check_symmetry()

    def test_remove_missing_node_raises(self):
        with pytest.raises(TopologyError):
            Graph().remove_node(9)

    def test_copy_is_independent(self):
        graph = Graph(edges=[(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert 3 not in graph
        assert clone.has_edge(2, 3)


class TestNeighborhoods:
    def test_neighbors_excludes_self(self):
        graph = Graph(edges=[(1, 2), (1, 3)])
        assert graph.neighbors(1) == {2, 3}

    def test_neighbors_of_missing_node_raises(self):
        with pytest.raises(TopologyError):
            Graph().neighbors(1)

    def test_neighbors_returns_a_copy(self):
        graph = Graph(edges=[(1, 2)])
        view = graph.neighbors(1)
        view.add(99)
        assert graph.neighbors(1) == {2}

    def test_closed_neighbors(self):
        graph = Graph(edges=[(1, 2), (1, 3)])
        assert graph.closed_neighbors(1) == {1, 2, 3}

    def test_degree_and_max_degree(self):
        graph = Graph(edges=[(1, 2), (1, 3), (1, 4), (2, 3)])
        assert graph.degree(1) == 3
        assert graph.degree(4) == 1
        assert graph.max_degree() == 3

    def test_k_neighborhood_on_path(self):
        graph = make_path(7)
        assert graph.k_neighborhood(3, 1) == {2, 4}
        assert graph.k_neighborhood(3, 2) == {1, 2, 4, 5}
        assert graph.k_neighborhood(3, 3) == {0, 1, 2, 4, 5, 6}
        assert graph.k_neighborhood(3, 10) == {0, 1, 2, 4, 5, 6}

    def test_k_neighborhood_excludes_self_even_in_cycles(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        assert 0 not in graph.k_neighborhood(0, 5)
        assert graph.k_neighborhood(0, 2) == {1, 2}

    def test_k_neighborhood_requires_positive_k(self):
        graph = make_path(3)
        with pytest.raises(TopologyError):
            graph.k_neighborhood(1, 0)

    def test_k_neighborhood_matches_paper_definition(self):
        # N^i = N^{i-1} union neighbors of N^{i-1}, minus p itself.
        graph = make_path(6)
        n1 = graph.k_neighborhood(2, 1)
        expanded = set(n1)
        for q in n1:
            expanded |= graph.neighbors(q)
        expanded.discard(2)
        assert graph.k_neighborhood(2, 2) == expanded


class TestQueries:
    def test_edges_lists_each_edge_once(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        edges = graph.edges
        assert len(edges) == 3
        assert len({frozenset(e) for e in edges}) == 3

    def test_edge_count(self):
        graph = make_path(5)
        assert graph.edge_count() == 4

    def test_contains_and_iter(self):
        graph = Graph(nodes=[1, 2])
        assert 1 in graph
        assert 9 not in graph
        assert sorted(graph) == [1, 2]

    def test_induced_subgraph(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = graph.induced_subgraph({1, 2, 3})
        assert set(sub.nodes) == {1, 2, 3}
        assert sub.has_edge(1, 2)
        assert sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)
        assert sub.edge_count() == 2

    def test_induced_subgraph_unknown_node_raises(self):
        graph = make_path(3)
        with pytest.raises(TopologyError):
            graph.induced_subgraph({0, 99})

    def test_induced_subgraph_is_independent(self):
        graph = make_path(3)
        sub = graph.induced_subgraph({0, 1})
        sub.add_edge(0, 99)
        assert 99 not in graph

    def test_check_symmetry_detects_corruption(self):
        graph = make_path(3)
        graph._adj[0].add(2)  # corrupt internal state on purpose
        with pytest.raises(TopologyError):
            graph.check_symmetry()

    def test_repr_mentions_size(self):
        assert "n=3" in repr(make_path(3))


class TestBulkConstruction:
    def test_add_edges_from_iterable(self):
        graph = Graph()
        graph.add_edges_from([(1, 2), (2, 3)])
        assert graph.edge_count() == 2
        graph.check_symmetry()

    def test_add_edges_from_array(self):
        graph = Graph()
        graph.add_edges_from(np.array([[1, 2], [2, 3], [3, 1]]))
        assert graph.edge_count() == 3
        assert graph.has_edge(1, 2) and graph.has_edge(3, 1)
        graph.check_symmetry()

    def test_add_edges_from_array_merges_into_existing(self):
        graph = Graph(edges=[(0, 1)])
        graph.add_edges_from(np.array([[1, 2], [0, 1]]))
        assert graph.edge_count() == 2

    def test_add_edges_from_array_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Graph().add_edges_from(np.array([[1, 2], [3, 3]]))

    def test_add_edges_from_array_duplicates_idempotent(self):
        graph = Graph()
        graph.add_edges_from(np.array([[1, 2], [2, 1], [1, 2]]))
        assert graph.edge_count() == 1

    def test_add_edges_from_bad_shape_raises(self):
        with pytest.raises(TopologyError):
            Graph().add_edges_from(np.array([1, 2, 3]))

    def test_from_pair_array_with_count(self):
        graph = Graph.from_pair_array(np.array([[0, 1], [1, 2]]), 5)
        assert graph.nodes == [0, 1, 2, 3, 4]
        assert graph.edge_count() == 2
        assert graph.degree(4) == 0  # isolated nodes preserved
        graph.check_symmetry()

    def test_from_pair_array_with_identifiers(self):
        graph = Graph.from_pair_array(np.array([[0, 2]]), ["a", "b", "c"])
        assert graph.has_edge("a", "c")
        assert graph.degree("b") == 0

    def test_from_pair_array_empty(self):
        graph = Graph.from_pair_array(np.empty((0, 2), dtype=np.int64), 3)
        assert len(graph) == 3
        assert graph.edge_count() == 0

    def test_from_pair_array_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Graph.from_pair_array(np.array([[1, 1]]), 3)

    def test_from_pair_array_rejects_out_of_range(self):
        with pytest.raises(TopologyError):
            Graph.from_pair_array(np.array([[0, 5]]), 3)

    def test_from_pair_array_rejects_duplicate_ids(self):
        with pytest.raises(TopologyError):
            Graph.from_pair_array(np.array([[0, 1]]), ["a", "a"])

    def test_from_pair_array_matches_add_edge_loop(self):
        pairs = np.array([[0, 1], [0, 3], [1, 2], [2, 3]])
        loop = Graph(nodes=range(4))
        for i, j in pairs.tolist():
            loop.add_edge(i, j)
        bulk = Graph.from_pair_array(pairs, 4)
        assert loop._adj == bulk._adj
        assert loop.edges == bulk.edges


class TestCSRSnapshot:
    def test_to_csr_is_cached(self):
        graph = make_path(4)
        assert graph.to_csr() is graph.to_csr()

    def test_mutations_invalidate_snapshot(self):
        graph = make_path(4)
        before = graph.to_csr()
        graph.add_edge(0, 3)
        after = graph.to_csr()
        assert after is not before
        assert after.edge_count() == before.edge_count() + 1
        graph.remove_edge(0, 3)
        assert graph.to_csr() is not after
        graph.add_node(99)
        assert len(graph.to_csr()) == 5
        graph.remove_node(99)
        assert len(graph.to_csr()) == 4

    def test_from_pair_array_prebuilds_snapshot(self):
        graph = Graph.from_pair_array(np.array([[0, 1]]), 2)
        assert graph._csr is not None

    def test_copy_shares_snapshot_until_mutation(self):
        graph = make_path(4)
        snapshot = graph.to_csr()
        clone = graph.copy()
        assert clone.to_csr() is snapshot
        clone.add_edge(0, 3)
        assert clone.to_csr() is not snapshot
        assert graph.to_csr() is snapshot  # original untouched

    def test_pickle_drops_snapshot(self):
        import pickle

        graph = make_path(4)
        graph.to_csr()
        restored = pickle.loads(pickle.dumps(graph))
        assert restored._csr is None
        assert restored._adj == graph._adj
        assert restored.to_csr().edge_count() == 3

    def test_snapshot_reflects_structure(self):
        graph = Graph(edges=[("b", "a"), ("a", "c")])
        csr = graph.to_csr()
        assert list(csr.ids) == ["b", "a", "c"]  # insertion order
        index = csr.index_of
        assert csr.has_edge(index["a"], index["b"])
        assert not csr.has_edge(index["b"], index["c"])
        assert csr.edge_count() == 2
