"""Kernel backend parity: numpy vs numba, bit for bit.

The ``repro.graph.kernels`` seam promises that switching backends
(``REPRO_KERNELS=numpy|numba``) never changes a single output array --
distances, parents, component labels, forest roots/depths, unwound
paths.  This suite pins that contract property-wise on random
(frequently disconnected) graphs, single-node graphs, and graphs with
isolated nodes, plus seeded UDG deployments.  When numba is not
installed the cross-backend half skips cleanly (the dedicated CI job
installs numba and runs this file under ``REPRO_KERNELS=numba``); the
numpy-internal half (small-graph fast path vs vectorized path) always
runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import kernels
from repro.graph.generators import uniform_topology
from repro.graph.kernels import numpy_backend
from repro.util.errors import ConfigurationError

from tests.property.strategies import graphs


def _numba_or_skip():
    try:
        return kernels.get_backend("numba")
    except ImportError:
        pytest.skip("numba backend not installed")


def _arrays(graph):
    csr = graph.to_csr()
    return csr.indptr, csr.indices


def _random_labels(n, seed):
    if n == 0:
        return np.empty(0, dtype=np.int64)
    return np.random.default_rng(seed).integers(0, 3, size=n)


def assert_backends_match(indptr, indices, other):
    """Every kernel, numpy vs ``other``, on one CSR array pair."""
    n = len(indptr) - 1
    labels = _random_labels(n, seed=n * 31 + len(indices))
    for source in range(n):
        sources = np.array([source], dtype=np.int64)
        for lab in (None, labels):
            np.testing.assert_array_equal(
                numpy_backend.multi_source_distances(
                    indptr, indices, sources, labels=lab),
                other.multi_source_distances(
                    indptr, indices, sources, labels=lab))
            ours_p, ours_d = numpy_backend.bfs_parents(
                indptr, indices, source, labels=lab)
            theirs_p, theirs_d = other.bfs_parents(
                indptr, indices, source, labels=lab)
            np.testing.assert_array_equal(ours_p, theirs_p)
            np.testing.assert_array_equal(ours_d, theirs_d)
            for target in range(n):
                np.testing.assert_array_equal(
                    numpy_backend.unwind_path(ours_p, source, target),
                    other.unwind_path(theirs_p, source, target))
    if n:
        many = np.arange(0, n, 2, dtype=np.int64)
        if many.size:
            np.testing.assert_array_equal(
                numpy_backend.multi_source_distances(indptr, indices, many),
                other.multi_source_distances(indptr, indices, many))
    np.testing.assert_array_equal(
        numpy_backend.component_labels(indptr, indices),
        other.component_labels(indptr, indices))


class TestNumbaParity:
    """numpy vs numba bit-identity (skips when numba is absent)."""

    @settings(max_examples=40, deadline=None)
    @given(graph=graphs())
    def test_random_graphs(self, graph):
        """Random graphs: disconnected shapes and isolated nodes included."""
        numba = _numba_or_skip()
        assert_backends_match(*_arrays(graph), numba)

    @pytest.mark.parametrize("seed,count,radius", [
        (21, 40, 0.2), (22, 80, 0.08), (23, 50, 0.02),
    ])
    def test_udg_deployments(self, seed, count, radius):
        numba = _numba_or_skip()
        topo = uniform_topology(count, radius, rng=seed)
        assert_backends_match(*_arrays(topo.graph), numba)

    def test_single_node_graph(self):
        numba = _numba_or_skip()
        indptr = np.array([0, 0], dtype=np.int32)
        indices = np.empty(0, dtype=np.int32)
        assert_backends_match(indptr, indices, numba)

    def test_isolated_nodes_around_an_edge(self):
        numba = _numba_or_skip()
        # rows 0 and 3 isolated, rows 1-2 connected
        indptr = np.array([0, 0, 1, 2, 2], dtype=np.int32)
        indices = np.array([2, 1], dtype=np.int32)
        assert_backends_match(indptr, indices, numba)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_resolve_forest_parity(self, data):
        numba = _numba_or_skip()
        n = data.draw(st.integers(1, 24))
        # parent[i] <= i guarantees a forest (i == parent marks a root)
        parents = np.array(
            [data.draw(st.integers(0, i)) for i in range(n)],
            dtype=np.int64)
        ours = numpy_backend.resolve_forest(parents)
        theirs = numba.resolve_forest(parents)
        assert ours[2] is True and theirs[2] is True
        np.testing.assert_array_equal(ours[0], theirs[0])
        np.testing.assert_array_equal(ours[1], theirs[1])

    def test_resolve_forest_cycle_flagged_by_both(self):
        numba = _numba_or_skip()
        parents = np.array([1, 2, 0, 3], dtype=np.int64)
        assert numpy_backend.resolve_forest(parents)[2] is False
        assert numba.resolve_forest(parents)[2] is False


class TestNumpySmallPathParity:
    """The numpy backend's small-graph Python BFS equals its vectorized
    path bit for bit (always runnable, no numba needed)."""

    @settings(max_examples=40, deadline=None)
    @given(graph=graphs())
    def test_bfs_parents_paths_agree(self, graph):
        indptr, indices = _arrays(graph)
        n = len(indptr) - 1
        labels = _random_labels(n, seed=n)
        assert n <= numpy_backend.SMALL_GRAPH_ROWS  # small path active
        threshold = numpy_backend.SMALL_GRAPH_ROWS
        for lab in (None, labels):
            small = [numpy_backend.bfs_parents(indptr, indices, s, labels=lab)
                     for s in range(n)]
            try:
                numpy_backend.SMALL_GRAPH_ROWS = 0
                big = [numpy_backend.bfs_parents(indptr, indices, s,
                                                 labels=lab)
                       for s in range(n)]
            finally:
                numpy_backend.SMALL_GRAPH_ROWS = threshold
            for (sp, sd), (bp, bd) in zip(small, big):
                np.testing.assert_array_equal(sp, bp)
                np.testing.assert_array_equal(sd, bd)


class TestBackendSelection:
    """The seam's plumbing: selection report and explicit access."""

    def test_backend_info_shape(self):
        info = kernels.backend_info()
        assert info["requested"] in kernels.CHOICES
        assert info["active"] in ("numpy", "numba")
        assert isinstance(info["numba_available"], bool)
        if not info["numba_available"]:
            assert info["active"] == "numpy"

    def test_get_backend_numpy(self):
        assert kernels.get_backend("numpy") is numpy_backend

    def test_get_backend_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            kernels.get_backend("cython")

    def test_active_backend_exports_all_kernels(self):
        for name in kernels.KERNELS:
            assert callable(getattr(kernels, name))

    def test_warm_up_is_safe(self):
        kernels.warm_up()  # no-op on numpy, compiles on numba
