"""Shared-memory CSR distribution: round-trips, payloads, lifecycle."""

import os
import pickle
import subprocess

import numpy as np
import pytest

from repro.graph import shm
from repro.graph.geometry import chunk_pairs
from repro.graph.graph import Graph
from repro.graph.shm import (
    SharedCSR,
    active_session,
    clean_orphans,
    list_segments,
    share_graphs,
)


def big_graph(seed=3, count=3000, radius=0.05):
    points = np.random.default_rng(seed).uniform(0, 1, size=(count, 2))
    return Graph.from_pair_chunks(chunk_pairs(points, radius), count)


def small_graph():
    graph = Graph(nodes=range(6))
    graph.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    return graph


class TestSharedCSRRoundTrip:
    def test_attach_reproduces_arrays_ids_and_triangles(self):
        graph = big_graph()
        csr = graph.to_csr()
        csr.triangle_counts()  # memoize so the segment carries them
        handle = SharedCSR.publish(csr)
        try:
            attached = handle.attach()
            assert np.array_equal(attached.indptr, csr.indptr)
            assert np.array_equal(attached.indices, csr.indices)
            assert list(attached.ids) == list(csr.ids)
            assert attached.index_of == csr.index_of
            assert attached._triangles is not None
            assert np.array_equal(attached.triangle_counts(),
                                  csr.triangle_counts())
        finally:
            handle.unlink()

    def test_non_identity_ids_ride_the_segment(self):
        graph = Graph(nodes=[f"n{i}" for i in range(5)])
        graph.add_edges_from([("n0", "n1"), ("n1", "n4"), ("n2", "n3")])
        handle = SharedCSR.publish(graph.to_csr())
        try:
            attached = handle.attach()
            assert list(attached.ids) == [f"n{i}" for i in range(5)]
            assert attached.has_edge(attached.index_of["n1"],
                                     attached.index_of["n4"])
        finally:
            handle.unlink()

    def test_handle_pickles_to_a_few_hundred_bytes(self):
        handle = SharedCSR.publish(big_graph().to_csr())
        try:
            payload = pickle.dumps(handle)
            assert len(payload) < 300
            clone = pickle.loads(payload)
            assert clone.name == handle.name
            assert clone.nnz == handle.nnz
        finally:
            handle.unlink()


class TestShareSession:
    def test_big_graph_pickles_as_handle(self):
        graph = big_graph()
        plain = pickle.dumps(graph)
        with share_graphs(min_bytes=1024):
            shared = pickle.dumps(graph)
            # The per-task payload carries no CSR arrays, only the handle.
            assert len(shared) < 1024
            assert len(shared) < len(plain) // 100
            clone = pickle.loads(shared)
            assert clone.nodes == graph.nodes
            assert clone.edge_count() == graph.edge_count()
            assert clone.neighbors(7) == graph.neighbors(7)

    def test_graph_published_once_per_session(self):
        graph = big_graph()
        with share_graphs(min_bytes=1024) as session:
            first = session.handle_for(graph)
            second = session.handle_for(graph)
            assert first is second

    def test_small_graph_stays_plain(self):
        graph = small_graph()
        before = list_segments()
        with share_graphs(min_bytes=1 << 20):
            clone = pickle.loads(pickle.dumps(graph))
            assert list_segments() == before
        assert clone.edges == graph.edges

    def test_session_unlinks_segments_on_exit(self):
        graph = big_graph()
        before = set(list_segments())
        with share_graphs(min_bytes=1024):
            pickle.dumps(graph)
            during = set(list_segments()) - before
            assert during  # something was published...
        assert set(list_segments()) - before == set()  # ...and unlinked

    def test_disable_env_keeps_plain_pickling(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        graph = big_graph()
        before = list_segments()
        with share_graphs(min_bytes=1024) as session:
            assert session is None
            assert active_session() is None
            assert len(pickle.dumps(graph)) > 10_000
        assert list_segments() == before

    def test_nested_sessions_reuse_the_outer(self):
        with share_graphs(min_bytes=1024) as outer:
            with share_graphs(min_bytes=999_999) as inner:
                assert inner is outer


class TestLifecycle:
    def test_clean_orphans_removes_dead_publishers_only(self):
        live = SharedCSR.publish(small_graph().to_csr())
        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        dead_pid = proc.pid  # reaped, so this pid is dead by construction
        orphan = f"repro-csr-{dead_pid}-deadbeef"
        path = os.path.join("/dev/shm", orphan)
        try:
            with open(path, "wb") as fh:
                fh.write(b"\0" * 64)
            removed = clean_orphans()
            assert orphan in removed
            assert orphan not in list_segments()
            assert live.name in list_segments()  # live publisher untouched
        finally:
            live.unlink()
            if os.path.exists(path):
                os.unlink(path)

    def test_unlink_is_idempotent(self):
        handle = SharedCSR.publish(small_graph().to_csr())
        handle.unlink()
        handle.unlink()
        assert handle.name not in list_segments()


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="no POSIX shared memory on this host")
class TestWorkerAttach:
    def test_forked_pool_tasks_see_the_shared_graph(self):
        from repro.experiments.engine import PoolExecutor

        graph = big_graph(seed=9, count=2500)
        executor = PoolExecutor(jobs=2)
        with share_graphs(min_bytes=1024):
            degrees = executor.submit_all(
                [(graph, node) for node in (0, 100, 2000)], _degree_of)
        assert degrees == [graph.degree(0), graph.degree(100),
                           graph.degree(2000)]


def _degree_of(task):
    graph, node = task
    return graph.degree(node)
