"""Unit tests for the delta-based dynamic topology subsystem."""

from fractions import Fraction

import numpy as np
import pytest

from repro.clustering.density import all_densities
from repro.graph.dynamic import (
    DynamicTopology,
    DynamicUnitDisk,
    TriangleCounter,
)
from repro.graph.geometry import pairs_within_range
from repro.graph.graph import Graph
from repro.util.errors import ConfigurationError, TopologyError


def edge_set(graph):
    return {frozenset(edge) for edge in graph.edges}


def scratch_edges(positions, radius):
    return {frozenset(pair)
            for pair in pairs_within_range(np.asarray(positions, float),
                                           radius).tolist()}


def disk_edges(disk):
    return {frozenset(pair) for pair in disk.edge_index_pairs().tolist()}


def walk(rng, positions, scale):
    step = rng.uniform(-scale, scale, size=positions.shape)
    return np.clip(positions + step, 0.0, 1.0)


class TestDynamicUnitDisk:
    def test_initial_edges_match_scratch(self):
        rng = np.random.default_rng(1)
        positions = rng.uniform(0, 1, size=(80, 2))
        disk = DynamicUnitDisk(positions, 0.2)
        assert disk_edges(disk) == scratch_edges(positions, 0.2)

    @pytest.mark.parametrize("scale", [0.005, 0.05, 0.4])
    def test_moves_track_scratch_at_any_step_size(self, scale):
        # Small steps exercise the in-place candidate re-evaluation, large
        # ones the drift-triggered grid re-join; both must stay exact.
        rng = np.random.default_rng(2)
        positions = rng.uniform(0, 1, size=(60, 2))
        disk = DynamicUnitDisk(positions, 0.15)
        for _ in range(12):
            positions = walk(rng, positions, scale)
            disk.move(positions)
            assert disk_edges(disk) == scratch_edges(positions, 0.15)

    def test_move_returns_exact_delta(self):
        rng = np.random.default_rng(3)
        positions = rng.uniform(0, 1, size=(50, 2))
        disk = DynamicUnitDisk(positions, 0.2)
        before = disk_edges(disk)
        moved = walk(rng, positions, 0.02)
        delta = disk.move(moved)
        after = disk_edges(disk)
        assert {frozenset(p) for p in delta.added.tolist()} == after - before
        assert {frozenset(p) for p in delta.removed.tolist()} == before - after

    def test_empty_move_is_empty_delta(self):
        rng = np.random.default_rng(4)
        positions = rng.uniform(0, 1, size=(30, 2))
        disk = DynamicUnitDisk(positions, 0.2)
        delta = disk.move(positions.copy())
        assert not delta
        assert delta.size == 0

    def test_partial_movers_only_touch_their_pairs(self):
        rng = np.random.default_rng(5)
        positions = rng.uniform(0, 1, size=(100, 2))
        disk = DynamicUnitDisk(positions, 0.12)
        moved = positions.copy()
        moved[3] = (0.5, 0.5)
        delta = disk.move(moved)
        touched = set(delta.added.flatten().tolist()
                      + delta.removed.flatten().tolist())
        assert touched <= {3} | touched  # delta rows involve node 3
        for pair in np.concatenate((delta.added, delta.removed)).tolist():
            assert 3 in pair
        assert disk_edges(disk) == scratch_edges(moved, 0.12)

    def test_churn_tracks_scratch(self):
        rng = np.random.default_rng(6)
        positions = rng.uniform(0, 1, size=(40, 2))
        disk = DynamicUnitDisk(positions, 0.25)
        delta = disk.apply_churn(departed=[0, 7],
                                 arrivals=[(40, (0.5, 0.5)),
                                           (41, (0.51, 0.5))])
        kept = [i for i in range(40) if i not in (0, 7)]
        expect_pos = np.concatenate((positions[kept],
                                     [[0.5, 0.5], [0.51, 0.5]]))
        expect_ids = kept + [40, 41]
        expected = {frozenset((expect_ids[i], expect_ids[j]))
                    for i, j in pairs_within_range(expect_pos, 0.25).tolist()}
        got = {frozenset((disk.ids[i], disk.ids[j]))
               for i, j in disk.edge_index_pairs().tolist()}
        assert got == expected
        assert frozenset((40, 41)) in {frozenset(p)
                                       for p in delta.added.tolist()}
        assert disk.ids == expect_ids

    def test_churn_validation(self):
        disk = DynamicUnitDisk([(0.1, 0.1), (0.2, 0.2)], 0.3)
        with pytest.raises(ConfigurationError):
            disk.apply_churn(departed=[9])
        with pytest.raises(ConfigurationError):
            disk.apply_churn(arrivals=[(1, (0.5, 0.5))])

    def test_move_rejects_changed_population(self):
        disk = DynamicUnitDisk([(0.1, 0.1), (0.2, 0.2)], 0.3)
        with pytest.raises(ConfigurationError):
            disk.move(np.zeros((3, 2)))

    def test_identifier_validation(self):
        with pytest.raises(ConfigurationError):
            DynamicUnitDisk([(0, 0), (1, 1)], 0.1, ids=[1, 1])
        with pytest.raises(ConfigurationError):
            DynamicUnitDisk([(0, 0), (1, 1)], 0.1, ids=[-1, 2])
        with pytest.raises(ConfigurationError):
            DynamicUnitDisk([(0, 0)], 0.0)

    def test_tiny_populations(self):
        assert DynamicUnitDisk(np.empty((0, 2)), 0.1).edge_count() == 0
        one = DynamicUnitDisk([(0.5, 0.5)], 0.1)
        assert one.edge_count() == 0
        assert not one.move(np.array([[0.6, 0.6]]))


class TestGraphEdgeDelta:
    def build(self):
        return Graph(nodes=range(5), edges=[(0, 1), (1, 2), (2, 3)])

    def test_apply_edge_delta(self):
        graph = self.build()
        graph.apply_edge_delta(added=[(3, 4), (0, 2)], removed=[(1, 2)])
        assert edge_set(graph) == {frozenset(e) for e in
                                   [(0, 1), (2, 3), (3, 4), (0, 2)]}
        graph.check_symmetry()

    def test_array_delta(self):
        graph = self.build()
        graph.apply_edge_delta(added=np.array([[3, 4]]),
                               removed=np.array([[0, 1]]))
        assert graph.has_edge(3, 4) and not graph.has_edge(0, 1)

    def test_removing_missing_edge_fails(self):
        with pytest.raises(TopologyError):
            self.build().apply_edge_delta(removed=[(0, 3)])

    def test_adding_existing_edge_fails(self):
        with pytest.raises(TopologyError):
            self.build().apply_edge_delta(added=[(0, 1)])

    def test_adding_self_loop_or_unknown_node_fails(self):
        with pytest.raises(TopologyError):
            self.build().apply_edge_delta(added=[(2, 2)])
        with pytest.raises(TopologyError):
            self.build().apply_edge_delta(added=[(0, 9)])

    def test_observer_sequencing(self):
        events = []

        class Observer:
            def edge_removed(self, graph, u, v):
                events.append(("removed", u, v, graph.has_edge(u, v)))

            def edge_added(self, graph, u, v):
                events.append(("added", u, v, graph.has_edge(u, v)))

        graph = self.build()
        graph.apply_edge_delta(added=[(0, 3)], removed=[(0, 1)],
                               observer=Observer())
        # Removal observed while present, addition once in place.
        assert events == [("removed", 0, 1, True), ("added", 0, 3, True)]

    def test_common_neighbors(self):
        graph = Graph(nodes=range(4), edges=[(0, 1), (0, 2), (1, 2), (1, 3)])
        assert graph.common_neighbors(0, 1) == {2}
        assert graph.common_neighbors(2, 3) == {1}
        with pytest.raises(TopologyError):
            graph.common_neighbors(0, 9)

    def test_adopt_csr_shape_guard(self):
        graph = self.build()
        other = Graph(nodes=range(3), edges=[(0, 1)])
        with pytest.raises(TopologyError):
            graph.adopt_csr(other.to_csr())
        graph.adopt_csr(self.build().to_csr())


class TestTriangleCounter:
    def kernel_counts(self, graph):
        csr = Graph(nodes=graph.nodes, edges=graph.edges).to_csr()
        return dict(zip(csr.ids, csr.triangle_counts().tolist()))

    def test_tracks_kernel_under_deltas(self):
        rng = np.random.default_rng(7)
        graph = Graph(nodes=range(12))
        counter = TriangleCounter(graph)
        present = set()
        universe = [(u, v) for u in range(12) for v in range(u + 1, 12)]
        for _ in range(200):
            u, v = universe[int(rng.integers(len(universe)))]
            if frozenset((u, v)) in present:
                graph.apply_edge_delta(removed=[(u, v)], observer=counter)
                present.discard(frozenset((u, v)))
            else:
                graph.apply_edge_delta(added=[(u, v)], observer=counter)
                present.add(frozenset((u, v)))
            assert counter.counts == self.kernel_counts(graph)

    def test_dirty_set_covers_changed_counts(self):
        graph = Graph(nodes=range(4), edges=[(0, 1), (1, 2), (0, 2)])
        counter = TriangleCounter(graph)
        counter.pop_dirty()
        graph.apply_edge_delta(added=[(2, 3)], observer=counter)
        assert counter.pop_dirty() == set()  # no triangle closed
        graph.apply_edge_delta(added=[(1, 3)], observer=counter)
        assert counter.pop_dirty() == {1, 2, 3}

    def test_recount_marks_changes(self):
        graph = Graph(nodes=range(4), edges=[(0, 1), (1, 2), (0, 2)])
        counter = TriangleCounter(graph)
        graph.apply_edge_delta(added=[(1, 3), (2, 3)])  # no observer
        counter.recount(graph)
        assert counter.counts == self.kernel_counts(graph)
        assert counter.pop_dirty() == {1, 2, 3}

    def test_node_lifecycle(self):
        graph = Graph(nodes=range(3), edges=[(0, 1)])
        counter = TriangleCounter(graph)
        counter.node_added(3)
        assert counter.counts[3] == 0
        with pytest.raises(TopologyError):
            counter.node_added(0)
        counter.node_removed(3)
        assert 3 not in counter.counts


class TestDynamicTopology:
    def assert_matches_scratch(self, dynamic):
        positions = np.array([dynamic.topology.positions[node]
                              for node in dynamic.graph.nodes])
        scratch = scratch_edges(positions, dynamic.radius)
        ids = dynamic.graph.nodes
        got = {frozenset((ids[i], ids[j])) for i, j in
               dynamic._disk.edge_index_pairs().tolist()}
        assert edge_set(dynamic.graph) == got
        assert dynamic.densities == all_densities(dynamic.graph, exact=True)
        assert all(isinstance(value, Fraction)
                   for value in dynamic.densities.values())

    def test_moves_maintain_graph_and_densities(self):
        rng = np.random.default_rng(8)
        positions = rng.uniform(0, 1, size=(70, 2))
        dynamic = DynamicTopology(positions, 0.15)
        for _ in range(8):
            positions = walk(rng, positions, 0.02)
            update = dynamic.move(positions)
            assert update.topology.graph is dynamic.graph
            self.assert_matches_scratch(dynamic)

    def test_bulk_delta_recount_path(self):
        rng = np.random.default_rng(9)
        positions = rng.uniform(0, 1, size=(50, 2))
        # recount_fraction so aggressive every non-empty delta recounts.
        dynamic = DynamicTopology(positions, 0.2, recount_fraction=10 ** 6)
        positions = rng.uniform(0, 1, size=(50, 2))  # teleport all nodes
        dynamic.move(positions)
        self.assert_matches_scratch(dynamic)

    def test_density_changed_is_conservative_superset(self):
        rng = np.random.default_rng(10)
        positions = rng.uniform(0, 1, size=(60, 2))
        dynamic = DynamicTopology(positions, 0.18)
        before = dict(dynamic.densities)
        update = dynamic.move(walk(rng, positions, 0.01))
        changed = {node for node in dynamic.graph
                   if dynamic.densities[node] != before[node]}
        assert changed <= update.density_changed

    def test_heavy_churn_recount_path(self):
        # Replacing most of the population trips the bulk-recount branch;
        # the state must stay exact either way.
        rng = np.random.default_rng(12)
        positions = rng.uniform(0, 1, size=(20, 2))
        dynamic = DynamicTopology(positions, 0.3, recount_fraction=10 ** 6)
        dynamic.apply_churn(
            departed=list(range(15)),
            arrivals=[(20 + i, tuple(rng.uniform(0, 1, size=2)))
                      for i in range(12)])
        self.assert_matches_scratch(dynamic)
        assert dynamic.triangles.counts.keys() == set(dynamic.graph.nodes)

    def test_churn_maintains_everything(self):
        rng = np.random.default_rng(11)
        positions = rng.uniform(0, 1, size=(30, 2))
        dynamic = DynamicTopology(positions, 0.25)
        update = dynamic.apply_churn(
            departed=[2, 17], arrivals=[(30, (0.4, 0.4)), (31, (0.9, 0.1))])
        assert 2 not in dynamic.graph and 30 in dynamic.graph
        assert set(update.topology.graph.nodes) == set(dynamic.densities)
        self.assert_matches_scratch(dynamic)
        # Node order stays ascending (the simulators' determinism rides it).
        assert dynamic.graph.nodes == sorted(dynamic.graph.nodes)
