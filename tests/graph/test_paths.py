"""Tests for BFS distances, eccentricity, diameter, components."""

import pytest

from repro.graph.graph import Graph
from repro.graph.paths import (
    INFINITY,
    bfs_distances,
    connected_components,
    diameter,
    eccentricity,
    hop_distance,
    is_connected,
)
from repro.util.errors import TopologyError


@pytest.fixture
def path5():
    return Graph(nodes=range(5), edges=[(i, i + 1) for i in range(4)])


@pytest.fixture
def two_triangles():
    return Graph(edges=[(0, 1), (1, 2), (2, 0), (10, 11), (11, 12), (12, 10)])


class TestBfs:
    def test_distances_on_path(self, path5):
        assert bfs_distances(path5, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_from_middle(self, path5):
        assert bfs_distances(path5, 2) == {0: 2, 1: 1, 2: 0, 3: 1, 4: 2}

    def test_unreachable_nodes_absent(self, two_triangles):
        distances = bfs_distances(two_triangles, 0)
        assert set(distances) == {0, 1, 2}

    def test_missing_source_raises(self, path5):
        with pytest.raises(TopologyError):
            bfs_distances(path5, 99)

    def test_hop_distance(self, path5):
        assert hop_distance(path5, 0, 4) == 4
        assert hop_distance(path5, 2, 2) == 0

    def test_hop_distance_disconnected_is_infinite(self, two_triangles):
        assert hop_distance(two_triangles, 0, 10) == INFINITY

    def test_hop_distance_missing_target_raises(self, path5):
        with pytest.raises(TopologyError):
            hop_distance(path5, 0, 99)


class TestEccentricity:
    def test_on_path(self, path5):
        assert eccentricity(path5, 0) == 4
        assert eccentricity(path5, 2) == 2

    def test_restricted_targets(self, path5):
        assert eccentricity(path5, 0, within={0, 1, 2}) == 2

    def test_unreachable_target_gives_infinity(self, two_triangles):
        assert eccentricity(two_triangles, 0) == INFINITY

    def test_empty_target_set_raises(self, path5):
        with pytest.raises(TopologyError):
            eccentricity(path5, 0, within=set())

    def test_unknown_target_raises(self, path5):
        with pytest.raises(TopologyError):
            eccentricity(path5, 0, within={99})


class TestDiameterAndComponents:
    def test_diameter_of_path(self, path5):
        assert diameter(path5) == 4

    def test_diameter_of_empty_graph(self):
        assert diameter(Graph()) == 0

    def test_diameter_of_disconnected_graph(self, two_triangles):
        assert diameter(two_triangles) == INFINITY

    def test_components(self, two_triangles):
        components = connected_components(two_triangles)
        assert sorted(map(sorted, components)) == [[0, 1, 2], [10, 11, 12]]

    def test_components_with_isolated_nodes(self):
        graph = Graph(nodes=[1, 2], edges=[(3, 4)])
        assert len(connected_components(graph)) == 3

    def test_is_connected(self, path5, two_triangles):
        assert is_connected(path5)
        assert not is_connected(two_triangles)
        assert is_connected(Graph())
