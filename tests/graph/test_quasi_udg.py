"""Tests for the quasi unit-disk model."""

import numpy as np
import pytest

from repro.graph.geometry import unit_disk_graph
from repro.graph.quasi_udg import quasi_uniform_topology, \
    quasi_unit_disk_graph
from repro.util.errors import ConfigurationError


class TestQuasiUnitDiskGraph:
    def test_sandwiched_between_inner_and_outer_udg(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 1, size=(120, 2))
        quasi, _ = quasi_unit_disk_graph(points, 0.08, 0.16, rng=rng)
        inner, _ = unit_disk_graph(points, 0.08)
        outer, _ = unit_disk_graph(points, 0.16)
        inner_edges = {frozenset(e) for e in inner.edges}
        outer_edges = {frozenset(e) for e in outer.edges}
        quasi_edges = {frozenset(e) for e in quasi.edges}
        assert inner_edges <= quasi_edges <= outer_edges

    def test_same_seed_same_graph(self):
        # Gray-zone draws consume the RNG in pair order, so determinism
        # relies on pairwise_within_range's ordering contract
        # (lexicographic since the vectorized rewrite).
        points = np.random.default_rng(3).uniform(0, 1, size=(100, 2))
        first, _ = quasi_unit_disk_graph(points, 0.08, 0.16,
                                         rng=np.random.default_rng(11))
        second, _ = quasi_unit_disk_graph(points, 0.08, 0.16,
                                          rng=np.random.default_rng(11))
        assert {frozenset(e) for e in first.edges} == \
            {frozenset(e) for e in second.edges}

    def test_degenerate_gray_zone_is_plain_udg(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 1, size=(60, 2))
        quasi, _ = quasi_unit_disk_graph(points, 0.1, 0.1, rng=rng)
        plain, _ = unit_disk_graph(points, 0.1)
        assert {frozenset(e) for e in quasi.edges} == \
            {frozenset(e) for e in plain.edges}

    def test_gray_zone_probability_decays(self):
        # A pair near r_min should link far more often than near r_max.
        near = [(0.0, 0.0), (0.105, 0.0)]
        far = [(0.0, 0.0), (0.195, 0.0)]
        rng = np.random.default_rng(3)
        near_hits = sum(
            quasi_unit_disk_graph(near, 0.1, 0.2, rng=rng)[0].edge_count()
            for _ in range(200))
        far_hits = sum(
            quasi_unit_disk_graph(far, 0.1, 0.2, rng=rng)[0].edge_count()
            for _ in range(200))
        assert near_hits > 150
        assert far_hits < 50

    def test_symmetry_preserved(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 1, size=(80, 2))
        graph, _ = quasi_unit_disk_graph(points, 0.05, 0.15, rng=rng)
        graph.check_symmetry()

    def test_rejects_bad_radii(self):
        with pytest.raises(ConfigurationError):
            quasi_unit_disk_graph([(0, 0)], 0.2, 0.1)
        with pytest.raises(ConfigurationError):
            quasi_unit_disk_graph([(0, 0)], 0.0, 0.1)


class TestQuasiTopology:
    def test_builds_valid_topology(self):
        topo = quasi_uniform_topology(80, 0.08, 0.16, rng=5)
        assert len(topo.graph) == 80
        assert topo.radius == 0.16

    def test_clustering_stack_works_on_quasi_udg(self):
        # The paper's algorithm never uses geometry, only the graph; it
        # must work unchanged off the idealized disk model.
        from repro.clustering.oracle import compute_clustering
        topo = quasi_uniform_topology(100, 0.1, 0.18, rng=6)
        clustering = compute_clustering(topo.graph, tie_ids=topo.ids)
        clustering.check_invariants()

    def test_protocol_converges_on_quasi_udg(self):
        from repro.protocols.stack import standard_stack
        from repro.runtime.simulator import StepSimulator
        from repro.stabilization.monitor import steps_to_legitimacy
        from repro.stabilization.predicates import make_stack_predicate
        topo = quasi_uniform_topology(40, 0.12, 0.2, rng=7)
        sim = StepSimulator(topo, standard_stack(topology=topo), rng=8)
        report = steps_to_legitimacy(sim, make_stack_predicate(), 300)
        assert report.converged
