"""Unit tests for the frozen CSRAdjacency snapshot."""

import numpy as np
import pytest

from repro.graph.csr import CSRAdjacency
from repro.graph.generators import complete_topology, star_topology
from repro.graph.graph import Graph
from repro.util.errors import TopologyError


def path_csr(n):
    return Graph(nodes=range(n),
                 edges=[(i, i + 1) for i in range(n - 1)]).to_csr()


class TestFrozenInvariants:
    def test_arrays_are_not_writeable(self):
        csr = path_csr(4)
        with pytest.raises(ValueError):
            csr.indices[0] = 0
        with pytest.raises(ValueError):
            csr.indptr[0] = 1

    def test_attributes_cannot_be_rebound(self):
        csr = path_csr(4)
        with pytest.raises(AttributeError):
            csr.indices = np.array([], dtype=np.int32)

    def test_dtypes_are_int32(self):
        csr = path_csr(4)
        assert csr.indptr.dtype == np.int32
        assert csr.indices.dtype == np.int32

    def test_rows_sorted_ascending(self):
        csr = complete_topology(6).graph.to_csr()
        for i in range(len(csr)):
            row = csr.neighbors_of(i)
            assert list(row) == sorted(row)

    def test_mismatched_indptr_raises(self):
        with pytest.raises(TopologyError):
            CSRAdjacency(np.array([0, 0]), np.array([], dtype=np.int32),
                         ["a", "b"])


class TestQueries:
    def test_id_index_roundtrip(self):
        csr = Graph(edges=[("x", "y"), ("y", "z")]).to_csr()
        for index, node in enumerate(csr.ids):
            assert csr.index_of[node] == index

    def test_degrees_and_edge_count(self):
        csr = star_topology(5).graph.to_csr()
        degrees = csr.degrees()
        assert degrees[csr.index_of[0]] == 5
        assert csr.edge_count() == 5

    def test_edge_arrays_cover_each_edge_once(self):
        graph = complete_topology(5).graph
        eu, ev = graph.to_csr().edge_arrays()
        assert len(eu) == graph.edge_count()
        assert (eu < ev).all()

    def test_has_edge_missing(self):
        csr = path_csr(3)
        assert csr.has_edge(0, 1)
        assert not csr.has_edge(0, 2)


class TestTriangleCounts:
    def test_triangle_graph(self):
        csr = Graph(edges=[(0, 1), (1, 2), (2, 0)]).to_csr()
        assert list(csr.triangle_counts()) == [1, 1, 1]

    def test_complete_graph(self):
        n = 7
        csr = complete_topology(n).graph.to_csr()
        expected = (n - 1) * (n - 2) // 2
        assert all(csr.triangle_counts() == expected)

    def test_triangle_free_graph(self):
        csr = star_topology(6).graph.to_csr()
        assert not csr.triangle_counts().any()

    def test_counts_are_memoized(self):
        csr = complete_topology(5).graph.to_csr()
        assert csr.triangle_counts() is csr.triangle_counts()

    def test_chunked_path_matches_unchunked(self, monkeypatch):
        import repro.graph.csr as csrmod

        graph = complete_topology(12).graph
        baseline = graph.to_csr().triangle_counts()
        monkeypatch.setattr(csrmod, "_TRIANGLE_CHUNK", 7)
        fresh = CSRAdjacency.from_dict(graph._adj)
        assert (fresh.triangle_counts() == baseline).all()

    def test_two_triangles_sharing_an_edge(self):
        # 0-1 shared by triangles {0,1,2} and {0,1,3}.
        csr = Graph(edges=[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)]).to_csr()
        counts = {node: int(csr.triangle_counts()[csr.index_of[node]])
                  for node in (0, 1, 2, 3)}
        assert counts == {0: 2, 1: 2, 2: 1, 3: 1}


class TestConstructors:
    def test_from_dict_matches_from_pairs(self):
        lo = np.array([0, 0, 1], dtype=np.int64)
        hi = np.array([1, 2, 2], dtype=np.int64)
        via_pairs = CSRAdjacency.from_pairs(lo, hi, ["a", "b", "c"])
        via_dict = Graph(nodes=["a", "b", "c"],
                         edges=[("a", "b"), ("a", "c"), ("b", "c")]).to_csr()
        assert (via_pairs.indptr == via_dict.indptr).all()
        assert (via_pairs.indices == via_dict.indices).all()
        assert via_pairs.ids == via_dict.ids

    def test_empty(self):
        csr = CSRAdjacency.from_pairs(np.empty(0, dtype=np.int64),
                                      np.empty(0, dtype=np.int64), [])
        assert len(csr) == 0
        assert csr.edge_count() == 0
        assert list(csr.triangle_counts()) == []
